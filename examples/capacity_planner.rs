//! Capacity planner: the §VII "which architecture do I need?" workflow.
//!
//! Given a dataset size and a response-time SLA, use the analytical model
//! to answer the questions a designer faces before building anything:
//! how many nodes, how many partitions, will a single master keep up, and
//! does a replica-selection master make sense?
//!
//! Run with: `cargo run --release --example capacity_planner -- [elements] [sla_ms]`

use kvscale::model::limits::{master_crossover, master_limit_sweep, replica_selection_node_limit};
use kvscale::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let elements: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000.0);
    let sla_ms: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(300.0);

    println!("== capacity planner ==");
    println!("dataset: {elements:.0} elements; SLA: {sla_ms} ms per full scan+aggregate\n");
    let model = SystemModel::paper_optimized();

    // 1. Smallest cluster meeting the SLA, with the optimal partitioning.
    let mut chosen = None;
    println!(
        "{:>6} {:>14} {:>12} {:>10}  binding",
        "nodes", "optimal parts", "predicted", "meets SLA"
    );
    for nodes in [1u64, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128] {
        let opt = optimize_partitions(&model, elements, nodes);
        let ok = opt.total_ms() <= sla_ms;
        println!(
            "{:>6} {:>14} {:>10.0}ms {:>10}  {}",
            nodes,
            opt.partitions,
            opt.total_ms(),
            if ok { "yes" } else { "no" },
            opt.prediction.dominant(),
        );
        if ok && chosen.is_none() {
            chosen = Some(opt);
        }
    }
    match &chosen {
        Some(opt) => {
            println!(
                "\n→ recommendation: {} nodes, {} partitions of ≈{:.0} cells ({}-bound, predicted {:.0} ms)",
                opt.nodes,
                opt.partitions,
                opt.cells_per_partition,
                opt.prediction.dominant(),
                opt.total_ms()
            );
        }
        None => {
            println!("\n→ no cluster size in the sweep meets the SLA: the master saturates first.");
        }
    }

    // 2. Where does the single master stop scaling at all?
    let sweep_nodes: Vec<u64> = (0..10).map(|i| 1u64 << i).collect();
    let sweep = master_limit_sweep(&model, elements, &sweep_nodes);
    match master_crossover(&sweep) {
        Some(n) => println!("\nsingle master (fire-and-forget) saturates at ≈{n} nodes;"),
        None => println!("\nsingle master never saturates in the swept range;"),
    }
    let opt_cells = optimize_partitions(&model, elements, 16).cells_per_partition;
    let request_ms = model.db.query_time.query_time_ms(opt_cells);
    let rs_limit = replica_selection_node_limit(request_ms, 16, model.master.tx_us_per_msg);
    println!(
        "a replica-selection master (issuing 16-deep per node, {:.0} ms requests) caps at ≈{rs_limit} nodes.",
        request_ms
    );
    println!("\nPast those sizes the paper's advice applies: shard the master or go peer-to-peer.");

    // 3. Sensitivity: how much SLA headroom does the codec buy?
    println!("\nmaster codec sensitivity at 16 nodes:");
    for (label, master) in [
        ("slow (Java-like, 150 µs/msg)", MasterModel::paper_slow()),
        (
            "optimized (Kryo-like, 19 µs/msg)",
            MasterModel::paper_optimized(),
        ),
    ] {
        let m = SystemModel {
            master,
            ..SystemModel::paper_optimized()
        };
        let opt = optimize_partitions(&m, elements, 16);
        println!(
            "  {label:<34} → {:>8.0} ms with {:>6} partitions ({}-bound)",
            opt.total_ms(),
            opt.partitions,
            opt.prediction.dominant()
        );
    }
}
