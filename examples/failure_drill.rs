//! Failure drill: what a node death does to a running query, and how much
//! replication + fast detection buy back.
//!
//! Uses the failure-injection hooks (`ClusterConfig::failures`) and the
//! stage-report renderers to walk through the §VIII replication trade-off
//! on a virtual 8-node cluster — then repeats the drill over real TCP
//! sockets: a loopback `kvs-net` cluster with a chaos proxy blackholing
//! one node, so the simulated failover story can be checked against the
//! wire.
//!
//! Run with: `cargo run --release --example failure_drill`

use kvscale::cluster::data::uniform_partitions;
use kvscale::cluster::{run_query, ClusterConfig, ClusterData, NodeFailure, ReplicaPolicy};
use kvscale::net::{
    spawn_local_cluster, wrap_cluster, ChaosSchedule, NetConfig, NetMaster, NetServerConfig,
};
use kvscale::prelude::*;
use kvscale::stages::report::{render_node_table, render_summary};
use std::time::Duration;

fn main() {
    let nodes = 8u32;
    let parts = uniform_partitions(240, 800, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
    println!("== failure drill: 240 partitions × 800 cells on {nodes} nodes, rf=2 ==\n");

    // Healthy baseline.
    let mut cfg = ClusterConfig::paper_optimized_master(nodes);
    cfg.replication_factor = 2;
    let mut data = ClusterData::load(nodes, 2, TableOptions::default(), parts.clone());
    let healthy = run_query(&cfg, &mut data, &keys);
    println!("healthy: {}\n", render_summary(&healthy.report));

    // Node A dies before the query starts; sweep the detection timeout.
    println!("node A dead from the start, rf=2:");
    for timeout_ms in [100u64, 500, 2_000] {
        let mut cfg = cfg.clone();
        cfg.failures = vec![NodeFailure {
            node: 0,
            at: SimDuration::ZERO,
        }];
        cfg.failure_timeout = SimDuration::from_millis(timeout_ms);
        let mut data = ClusterData::load(nodes, 2, TableOptions::default(), parts.clone());
        let result = run_query(&cfg, &mut data, &keys);
        assert_eq!(result.counts_by_kind, healthy.counts_by_kind);
        println!(
            "  timeout {timeout_ms:>5} ms → {} failovers, makespan {} ({:+.0}% vs healthy)",
            result.failovers,
            result.makespan,
            (result.makespan.as_millis_f64() / healthy.makespan.as_millis_f64() - 1.0) * 100.0,
        );
    }

    // Where did the dead node's load go?
    let mut cfg2 = cfg.clone();
    cfg2.failures = vec![NodeFailure {
        node: 0,
        at: SimDuration::ZERO,
    }];
    cfg2.failure_timeout = SimDuration::from_millis(100);
    let mut data = ClusterData::load(nodes, 2, TableOptions::default(), parts);
    let result = run_query(&cfg2, &mut data, &keys);
    println!("\nper-node load after failover (node 0 dead):");
    println!("{}", render_node_table(&result.report));
    println!(
        "every partition answered: {} cells (baseline {})",
        result.total_cells, healthy.total_cells
    );
    println!("\nTakeaway: rf=2 turns a node death into pure latency — and the latency");
    println!("is the detection timeout times the dead node's share of the keys, so");
    println!("the §VII SLA math must include failure detection, not just throughput.");

    // ---- the same drill over real sockets -------------------------------
    // A 3-node rf=2 loopback cluster, each slave behind a chaos proxy;
    // node 0's proxy swallows every byte from t = 0. The master's 100 ms
    // timeout × (1 + 1) attempts gives the same 200 ms detection window
    // the simulator models as `failure_timeout`.
    println!("\n== the same drill over TCP: blackholed slave on a loopback cluster ==\n");
    let net_parts = uniform_partitions(48, 64, 4);
    let net_keys = 48 * 64u64;
    let net_data = ClusterData::load(3, 2, TableOptions::default(), net_parts);
    let (cluster, routes) =
        spawn_local_cluster(net_data, NetServerConfig::default()).expect("cluster boots");
    let mut schedules = vec![ChaosSchedule::blackhole_at(0xD211, Duration::ZERO)];
    schedules.extend([ChaosSchedule::passthrough(1), ChaosSchedule::passthrough(2)]);
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let net_cfg = NetConfig {
        timeout: Duration::from_millis(100),
        max_retries: 1,
        replica_policy: ReplicaPolicy::Primary,
        ..NetConfig::default()
    };
    let mut master = NetMaster::connect(&addrs, net_cfg).expect("master connects");
    let report = master
        .run_query(&routes)
        .expect("rf=2 survives one dead node");
    master.shutdown();
    for p in proxies {
        p.shutdown();
    }
    cluster.shutdown();
    assert_eq!(report.result.total_cells, net_keys);
    println!(
        "measured: makespan {}  failovers {}  suspected dead {:?}  retry wait {:.0} ms",
        report.result.makespan, report.failovers, report.suspected_dead, report.retry_wait_ms
    );
    println!("every partition answered over the wire: {} cells", net_keys);
    println!("\nThe measured makespan is dominated by the same detection window the");
    println!("simulator charges — `cargo run --bin chaos_drill` quantifies the match.");
}
