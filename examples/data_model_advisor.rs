//! Data-model advisor: the §II phone-book example, end to end.
//!
//! You are indexing every phone number in the world on a DHT store and
//! must choose the partition key: country, city, or subscriber. This
//! example quantifies each choice's imbalance (Formula 1 + Monte Carlo,
//! including the weighted-city trap), then lets the performance model say
//! which query each layout serves well.
//!
//! Run with: `cargo run --release --example data_model_advisor`

use kvscale::balance::formula::{imbalance_ratio, keys_for_imbalance};
use kvscale::balance::simulation::{max_load_density, Placement};
use kvscale::balance::weighted::{keys_carrying_fraction, weighted_imbalance, zipf_weights};
use kvscale::prelude::*;

fn main() {
    println!("== data-model advisor: the phone-book example ==\n");
    let nodes = 10u64;

    println!("choice of partition key on {nodes} servers (Formula 1):");
    for (label, keys) in [
        ("country prefix (~200 keys)", 200u64),
        ("city (~1M keys)", 1_000_000),
        ("subscriber (~1B keys)", 1_000_000_000),
    ] {
        let p = imbalance_ratio(keys, nodes);
        println!(
            "  {label:<28} most loaded node ≈ {:>7.3}% above average",
            p * 100.0
        );
    }

    println!("\nbut city *sizes* are Zipf-distributed:");
    let weights = zipf_weights(1_000_000, 1.0);
    let hot = keys_carrying_fraction(&weights, 0.5);
    println!("  {hot} cities carry half of all subscribers;");
    println!("  a query over popular cities behaves like {hot} keys, not 1M:");
    for n in [10u64, 20] {
        println!(
            "    {n:>2} servers → {:>5.1}% imbalance (Formula 1 on the hot keys)",
            imbalance_ratio(hot as u64, n) * 100.0
        );
    }
    let hub = RngHub::new(42);
    let mut rng = hub.stream("advisor");
    let sampled: Vec<f64> = weights.iter().take(50_000).copied().collect();
    let sim = weighted_imbalance(&sampled, 10, 500, &mut rng);
    println!(
        "  Monte-Carlo on the weighted keys confirms: mean excess {:.1}%, worst {:.1}%",
        sim.mean_relative_excess * 100.0,
        sim.worst_relative_excess * 100.0
    );

    // How many keys do you need for a target imbalance?
    println!("\ndesign rule: keys needed to stay under a target imbalance:");
    for target in [0.10, 0.05, 0.01] {
        for n in [10u64, 100] {
            let m = keys_for_imbalance(target, n).expect("positive target");
            println!(
                "  ≤{:>4.0}% imbalance on {n:>3} nodes → ≥ {m} keys",
                target * 100.0
            );
        }
    }

    // Empirical check of the tail: country keys on 10 nodes.
    let density = max_load_density(200, 10, Placement::SingleChoice, 20_000, &mut rng);
    println!(
        "\nbrute force, 200 country keys on 10 nodes: mean max load {:.1} (uniform share 20); P(max ≥ 27) = {:.0}%",
        density.mean(),
        density.prob_worse_than(26) * 100.0
    );

    // What does each layout mean for query performance? Model it.
    println!("\nquery-time consequences (1M records scanned, model):");
    let model = SystemModel::paper_optimized();
    for (label, keys) in [
        ("by country (200 partitions)", 200.0),
        ("by city (5k hot partitions)", 5_000.0),
        ("by subscriber (point reads)", 1_000_000.0),
    ] {
        let p = model.predict_for_total(1_000_000.0, keys, 10);
        println!(
            "  {label:<30} → {:>9.0} ms, {}-bound (key_max {:.0})",
            p.total_ms(),
            p.dominant(),
            p.keymax
        );
    }
    println!("\nAdvice: country grouping murders balance; subscriber-level keys murder");
    println!("the master; a mid-granularity layout (the optimizer's choice) wins — and");
    println!("the right answer changes with cluster size, as the paper's §VII shows.");
}
