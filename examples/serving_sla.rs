//! Serving SLA: size a cluster for an online (open-loop) workload.
//!
//! The paper's introduction frames DHT stores as the substrate for
//! interactive analysis — "being able to analyse massive quantities of
//! data in a short time". This example answers the operations question
//! that follows: given a request mix and a p99 target, how many nodes?
//!
//! Run with: `cargo run --release --example serving_sla -- [p99_ms] [offered_rps]`

use kvscale::cluster::data::uniform_partitions;
use kvscale::cluster::{run_open_loop, ClusterConfig, ClusterData};
use kvscale::prelude::*;

const CELLS: u64 = 250;
const PARTITIONS: u64 = 2_000;

fn main() {
    let mut args = std::env::args().skip(1);
    let p99_target: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60.0);
    let offered_rps: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_500.0);
    println!(
        "== serving SLA: p99 ≤ {p99_target} ms at {offered_rps} rps ({CELLS}-cell reads) ==\n"
    );

    // The model's first guess: nodes ≥ offered / per-node throughput.
    let model = SystemModel::paper_optimized();
    let per_node = model.db.node_throughput_rps(CELLS as f64);
    let guess = (offered_rps / per_node).ceil() as u32;
    println!(
        "Formula 8: one node sustains ≈ {per_node:.0} rps at this row size → start at {guess} nodes\n"
    );

    let parts = uniform_partitions(PARTITIONS, CELLS, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
    println!(
        "{:>6} {:>13} {:>9} {:>9} {:>9}  verdict",
        "nodes", "achieved rps", "p50", "p90", "p99"
    );
    let mut chosen = None;
    for nodes in guess..guess + 8 {
        let mut data = ClusterData::load(nodes, 1, TableOptions::default(), parts.clone());
        let mut cfg = ClusterConfig::paper_optimized_master(nodes);
        cfg.db.parallelism = 32;
        let result = run_open_loop(
            &cfg,
            &mut data,
            &keys,
            offered_rps,
            SimDuration::from_secs(3),
            &format!("sla-{nodes}"),
        );
        let s = result.latency_ms.as_ref().expect("completions");
        let ok = s.p99 <= p99_target && result.achieved_rps >= offered_rps * 0.98;
        println!(
            "{:>6} {:>13.0} {:>8.1} {:>8.1} {:>8.1}  {}",
            nodes,
            result.achieved_rps,
            s.p50,
            s.p90,
            s.p99,
            if ok { "meets SLA" } else { "violates" }
        );
        if ok && chosen.is_none() {
            chosen = Some(nodes);
        }
    }
    match chosen {
        Some(n) => println!(
            "\n→ provision {n} nodes: the smallest size meeting p99 ≤ {p99_target} ms at {offered_rps} rps."
        ),
        None => println!(
            "\n→ no size in the sweep met the SLA — raise the budget or shrink the rows\n  (smaller rows parallelize better; see Figure 7)."
        ),
    }
}
