//! Live cluster: the methodology on real threads instead of the simulator.
//!
//! Spawns one worker pool per "node" (real OS threads owning real store
//! tables), runs the same master/slave aggregation with real wall-clock
//! stage timestamps, and lets the stage analyzer classify the bottleneck
//! of *this machine* — demonstrating that the paper's methodology is
//! portable: "it would simply require to run the same tests on the
//! different hardware/software stack and create a new regression".
//!
//! Run with: `cargo run --release --example live_cluster`

use kvscale::cluster::live::{run_query_live, LiveConfig};
use kvscale::cluster::{ClusterData, Codec};
use kvscale::prelude::*;
use kvscale::workloads::DataModel;

fn main() {
    let elements = 200_000;
    let nodes = 4u32;
    println!("== live cluster ({nodes} worker pools on this machine) ==\n");

    for model in DataModel::ALL {
        let partitions = model.build_partitions(elements, 4);
        let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
        let data = ClusterData::load(nodes, 1, TableOptions::default(), partitions);
        let result = run_query_live(
            data,
            &keys,
            LiveConfig {
                codec: Codec::compact(),
                workers_per_node: 4,
                ..LiveConfig::default()
            },
        );
        println!(
            "{:<16} {:>6} keys  wall {:>10}  issue span {:>10}  bottleneck {:?}",
            model.label(),
            keys.len(),
            result.makespan,
            result.issue_span,
            result.report.bottleneck,
        );
        for stage in Stage::ALL {
            if let Some(stats) = result.report.per_stage_ms.get(&stage) {
                println!(
                    "    {:>18}: mean {:>9.3} ms   max {:>9.3} ms",
                    stage.name(),
                    stats.mean(),
                    stats.max()
                );
            }
        }
        assert_eq!(result.total_cells as usize, elements as usize);
    }

    // Codec comparison on real hardware: the §V-B experiment in miniature.
    println!(
        "\nserialization on this machine (fine-grained, {} keys):",
        2_000
    );
    let partitions = DataModel::Fine.build_partitions(elements, 4);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    for codec in [Codec::verbose(), Codec::compact()] {
        let data = ClusterData::load(nodes, 1, TableOptions::default(), partitions.clone());
        let result = run_query_live(
            data,
            &keys,
            LiveConfig {
                codec,
                workers_per_node: 4,
                ..LiveConfig::default()
            },
        );
        println!(
            "  {:?}: wall {:>10}, {:>9} B to slaves, {:>9} B back",
            codec.kind, result.makespan, result.bytes_to_slaves, result.bytes_to_master
        );
    }
    println!("\n(Absolute times are this machine's, not the paper's 2010 cluster — the");
    println!("point is that the same stage decomposition and analysis run unchanged.)");
}
