//! Network cluster: the aggregation query over real TCP sockets.
//!
//! Boots four slave servers on loopback ports (each owning a quarter of a
//! D8tree-style dataset), connects a master over TCP, runs the query with
//! both codecs, and prints the four-stage breakdown, the slave queue
//! counters, and the measured per-message master cost — the socket-path
//! analogue of the `live_cluster` example.
//!
//! Run with: `cargo run --release --example net_cluster`

use kvscale::cluster::data::uniform_partitions;
use kvscale::cluster::{ClusterData, Codec};
use kvscale::net::{calibrate_t_msg, spawn_local_cluster, NetConfig, NetMaster, NetServerConfig};
use kvscale::prelude::*;

fn main() {
    let nodes = 4u32;
    let partitions = 2_000u64;
    let cells = 32u64;
    println!("== net cluster ({nodes} TCP slave servers on loopback) ==\n");

    for codec in [Codec::verbose(), Codec::compact()] {
        let data = ClusterData::load(
            nodes,
            1,
            TableOptions::default(),
            uniform_partitions(partitions, cells, 4),
        );
        let (cluster, routes) =
            spawn_local_cluster(data, NetServerConfig::default()).expect("cluster boots");
        let mut master = NetMaster::connect(
            &cluster.addrs(),
            NetConfig {
                codec,
                ..NetConfig::default()
            },
        )
        .expect("master connects");
        let report = master.run_query(&routes).expect("query succeeds");
        assert_eq!(report.result.total_cells, partitions * cells);

        println!(
            "{:?} codec: {} keys  wall {}  {} B out / {} B in  tx {:.1} µs/msg  rx {:.1} µs/msg",
            codec.kind,
            report.result.messages,
            report.result.makespan,
            report.result.bytes_to_slaves,
            report.result.bytes_to_master,
            report.tx_us_per_msg(),
            report.rx_us_per_msg(),
        );
        for stage in Stage::ALL {
            if let Some(stats) = report.result.report.per_stage_ms.get(&stage) {
                println!(
                    "    {:>18}: mean {:>9.3} ms   max {:>9.3} ms",
                    stage.name(),
                    stats.mean(),
                    stats.max()
                );
            }
        }
        master.shutdown();
        let queue = cluster.shutdown();
        println!(
            "    queue: {} pushed, {} busy-rejected, max depth {}\n",
            queue.pushed, queue.busy_rejections, queue.max_depth
        );
    }

    // The §V-B measurement on this machine's socket path.
    println!("t_msg calibration (1 slave, 2000 messages):");
    for codec in [Codec::verbose(), Codec::compact()] {
        let cal = calibrate_t_msg(codec, 2_000).expect("calibration runs");
        println!(
            "    {:?}: t_msg {:>7.2} µs  (tx {:.2} + rx {:.2})",
            cal.codec,
            cal.t_msg_us(),
            cal.tx_us_per_msg,
            cal.rx_us_per_msg
        );
    }
}
