//! D8tree explorer: the paper's §III case study, reproduced.
//!
//! Generates an Alya-like particle cloud (inhalation into a bronchial
//! tree), indexes it with the denormalized D8tree octree, and shows the
//! trade-off the whole paper revolves around: the *same* spatial query can
//! be answered at any level — few big cubes or many small ones — with very
//! different distributed performance.
//!
//! Run with: `cargo run --release --example d8tree_explorer`

use kvscale::cluster::{run_query, ClusterConfig, ClusterData};
use kvscale::prelude::*;
use kvscale::workloads::alya::{generate, AlyaConfig};
use kvscale::workloads::D8Tree;

fn main() {
    let particles_n = 200_000;
    println!("== D8tree explorer ==");
    println!("generating {particles_n} particles in a synthetic bronchial tree…");
    let hub = RngHub::new(0xD8);
    let mut rng = hub.stream("alya");
    let particles = generate(
        &AlyaConfig {
            particles: particles_n,
            ..Default::default()
        },
        &mut rng,
    );

    let max_level = 6;
    let tree = D8Tree::build(&particles, max_level);
    println!(
        "\nD8tree level statistics (denormalized: every level indexes all {particles_n} elements):"
    );
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>8}",
        "level", "cubes", "min", "mean", "max"
    );
    for (level, cubes, min, mean, max) in tree.level_stats() {
        println!("{level:>6} {cubes:>8} {min:>8} {mean:>10.1} {max:>8}");
    }

    // The paper's pre-query phase: pick cubes whose sizes match a workload.
    for (label, lo, hi) in [
        ("coarse-ish (5k-50k cells)", 5_000usize, 50_000usize),
        ("medium-ish (500-5k cells)", 500, 5_000),
        ("fine-ish (50-500 cells)", 50, 500),
    ] {
        let cubes = tree.cubes_with_size(lo, hi);
        println!(
            "\n{label}: {} cubes available across all levels",
            cubes.len()
        );
    }

    // One concrete spatial query, answered at two granularities.
    let (lo, hi) = ([0.35, 0.35, 0.3], [0.65, 0.65, 0.7]);
    println!("\nspatial query over the central region {lo:?}..{hi:?}:");
    let cfg = ClusterConfig::paper_optimized_master(8);
    for level in [2u8, max_level] {
        let cube_ids = tree.query_region(level, lo, hi);
        if cube_ids.is_empty() {
            println!("  level {level}: no cubes intersect");
            continue;
        }
        let partitions = tree.level_partitions(level, &particles);
        let keys: Vec<PartitionKey> = cube_ids.iter().map(|c| c.partition_key()).collect();
        let mut data = ClusterData::load(8, 1, TableOptions::default(), partitions);
        let result = run_query(&cfg, &mut data, &keys);
        println!(
            "  level {level}: {:>5} cubes → {:>8} cells read in {:>9}, bottleneck {:?}, load excess {:.0}%",
            keys.len(),
            result.total_cells,
            result.makespan,
            result.report.bottleneck,
            result.load_excess() * 100.0,
        );
    }
    println!("\nReading: deeper levels mean more, smaller keys — better balance, more");
    println!("messages. The right level depends on the cluster, which is exactly what");
    println!("the paper's model (see `capacity_planner`) chooses for you.");
}
