//! Quickstart: the whole methodology in one sitting, laptop-sized.
//!
//! Builds a virtual 8-node cluster, loads 100 000 elements under the
//! paper's "medium-grained" data model, runs the distributed count-by-kind
//! aggregation, prints the stage breakdown and bottleneck, then calibrates
//! the analytical model and asks it for the optimal partition count.
//!
//! Run with: `cargo run --release --example quickstart`

use kvscale::prelude::*;
use kvscale::workloads::DataModel;

fn main() {
    let elements = 100_000;
    println!("== kvscale quickstart ==");
    println!("dataset: {elements} elements, medium-grained (1 000 cells per partition)\n");

    // --- Steps 1-3: run one experiment and look at its stages. ---
    let study = Study::new(elements);
    let result = study.run(DataModel::Medium, 8);

    println!(
        "query answered: {} cells in {}",
        result.total_cells, result.makespan
    );
    println!("counts by kind: {:?}", result.counts_by_kind);
    println!("\nstage means across {} sub-queries:", result.traces.len());
    for stage in Stage::ALL {
        if let Some(stats) = result.report.per_stage_ms.get(&stage) {
            println!("  {:>18}: {:>9.2} ms", stage.name(), stats.mean());
        }
    }
    println!("\nrequests per node: {:?}", result.requests_per_node());
    println!(
        "most loaded node carries {:.0}% more than average",
        result.load_excess() * 100.0
    );
    println!("classified bottleneck: {:?}", result.report.bottleneck);

    // --- Step 4: calibrate the model and plan. ---
    println!("\ncalibrating the analytical model (Figure 6/7 procedure)…");
    let calibrated = study.calibrate();
    println!(
        "  query_time(s) ≈ {:.2} + {:.4}·s ms below {:.0} cells, {:.2} + {:.4}·s above",
        calibrated.system.db.query_time.base_ms,
        calibrated.system.db.query_time.per_cell_ms,
        calibrated.system.db.query_time.threshold_cells,
        calibrated.system.db.query_time.indexed_base_ms,
        calibrated.system.db.query_time.indexed_per_cell_ms,
    );
    println!(
        "  parallel speed-up ≈ {:.2} {:+.2}·ln(s)",
        calibrated.system.db.parallelism.a, calibrated.system.db.parallelism.b
    );

    for nodes in [1u64, 4, 8, 16] {
        let opt = calibrated.optimize(nodes);
        println!(
            "  {nodes:>2} nodes → optimal {:>5} partitions ({:>5.0} cells each), predicted {:.0} ms, {} bound",
            opt.partitions,
            opt.cells_per_partition,
            opt.total_ms(),
            opt.prediction.dominant(),
        );
    }

    // --- What-if: the paper's headline trade-off. ---
    println!("\nwhat-if via the model (1M elements, 16 nodes):");
    let model = SystemModel::paper_optimized();
    for (label, keys) in [
        ("coarse 100", 100.0),
        ("medium 1k", 1_000.0),
        ("fine 10k", 10_000.0),
    ] {
        let p = model.predict_for_total(1_000_000.0, keys, 16);
        println!(
            "  {label:<11} → {:>8.0} ms (master {:.0} ms, slaves {:.0} ms, key_max {:.1})",
            p.total_ms(),
            p.master_ms,
            p.slave_ms,
            p.keymax
        );
    }
}
