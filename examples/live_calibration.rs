//! Live calibration: fit this machine's Formula 6.
//!
//! §VI: "While the specific regression models may be realistic only for
//! some hardware/software settings, the overall model and methodology can
//! be applied to any system: it would simply require to run the same tests
//! on the different hardware/software stack and create a new regression."
//!
//! This example does exactly that — against the real store on the machine
//! you are running on: stratified row sizes, repeated timed reads, a
//! piecewise fit with confidence intervals. The numbers will look nothing
//! like a 2010 Cassandra cluster (everything is in memory here); the point
//! is that the *method* — and the column-index mechanism — carry over.
//!
//! Run with: `cargo run --release --example live_calibration`

use kvscale::model::regression::{fit_linear, fit_piecewise};
use kvscale::prelude::*;
use kvscale::workloads::sampling::{partitions_with_sizes, stratified_sizes};
use std::time::Instant;

fn main() {
    println!("== live calibration of this machine's query_time(s) ==\n");
    let hub = RngHub::new(0x11FE);
    let mut rng = hub.stream("live-cal");
    // Stratified sizes across the 64 KiB column-index threshold (1425
    // cells), plus a dense band around it.
    let mut sizes = stratified_sizes(16, 20_000, 24, 5, &mut rng);
    sizes.extend(stratified_sizes(1_000, 2_000, 8, 3, &mut rng));
    let parts = partitions_with_sizes(&sizes, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
    let mut table = Table::new(TableOptions::default());
    for (pk, cells) in parts {
        for cell in cells {
            table.put(pk.clone(), cell);
        }
    }
    table.flush();
    println!(
        "loaded {} rows of 16..20000 cells; timing reads…",
        keys.len()
    );

    // Warm up, then take the median of repeated reads per row.
    const REPS: usize = 7;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for pk in &keys {
        let _ = table.get(pk); // warm-up
        let mut times_us = Vec::with_capacity(REPS);
        let mut cells = 0u64;
        for _ in 0..REPS {
            let start = Instant::now();
            let (out, _) = table.get(pk);
            times_us.push(start.elapsed().as_secs_f64() * 1e6);
            cells = out.len() as u64;
        }
        times_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs.push(cells as f64);
        ys.push(times_us[REPS / 2]);
    }

    let linear = fit_linear(&xs, &ys).expect("fit");
    println!(
        "\nsingle-line fit   : {:.2} + {:.4}·s µs  (R² = {:.3})",
        linear.intercept, linear.slope, linear.r2
    );
    let (lo, hi) = linear.slope_ci95();
    println!(
        "per-cell cost     : {:.4} µs/cell, 95% CI [{lo:.4}, {hi:.4}]",
        linear.slope
    );
    println!(
        "slope significant : {}",
        if linear.slope_is_significant() {
            "yes"
        } else {
            "no — rerun on a quieter machine"
        }
    );

    match fit_piecewise(&xs, &ys) {
        Some(fit) => {
            println!("\npiecewise fit (this machine):");
            println!(
                "  breakpoint : {:.0} cells (the store's index threshold is 1425)",
                fit.breakpoint
            );
            println!(
                "  below      : {:.2} + {:.4}·s µs  (R² {:.3})",
                fit.below.intercept, fit.below.slope, fit.below.r2
            );
            println!(
                "  above      : {:.2} + {:.4}·s µs  (R² {:.3})",
                fit.above.intercept, fit.above.slope, fit.above.r2
            );
            println!("  jump       : {:+.2} µs", fit.jump());
            println!("\n(An in-memory store may show only a faint kink — the mechanism exists");
            println!("but block decoding is cheap in RAM; on the paper's SATA-backed");
            println!("Cassandra the same threshold cost 7 ms. The method is identical.)");
        }
        None => println!("\nnot enough samples for a piecewise fit"),
    }

    // What would the paper's model machinery do with this machine?
    // (Use a measured point, not the extrapolated intercept, for the small
    // row — the OLS intercept is dominated by the large-row samples.)
    println!("\nplugging the live fit into the planner:");
    let t250_us = xs
        .iter()
        .zip(&ys)
        .min_by(|a, b| {
            (a.0 - 250.0)
                .abs()
                .partial_cmp(&(b.0 - 250.0).abs())
                .expect("finite")
        })
        .map(|(_, &t)| t)
        .expect("non-empty samples")
        .max(0.1);
    let per_node_rps = 1e6 / t250_us;
    println!("  a single such node serves ≈ {per_node_rps:.0} serial ~250-cell reads/second;");
    println!("  the DHT imbalance math (Formulas 1/5) is hardware-independent and");
    println!("  applies unchanged — only the DB regression needed re-measuring.");
}
