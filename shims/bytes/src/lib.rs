//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small API subset it actually uses: [`Bytes`] (cheaply cloneable,
//! sliceable view over shared immutable storage), [`BytesMut`] (growable
//! builder), and the [`Buf`]/[`BufMut`] cursor traits with big-endian
//! integer accessors — semantics matching the real crate for this subset.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable chunk of immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view; panics when out of range (as the real crate).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

/// A growable byte builder.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the `Buf` impl (the real crate consumes from the
    /// front; we track an offset instead of shifting the vec).
    read: usize,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all content.
    pub fn clear(&mut self) {
        self.data.clear();
        self.read = 0;
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        let mut v = self.data;
        if self.read > 0 {
            v.drain(..self.read);
        }
        Bytes::from(v)
    }

    /// Splits off and returns the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of range");
        let head = self.data[self.read..self.read + at].to_vec();
        self.read += at;
        BytesMut {
            data: head,
            read: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Read cursor over a byte source. Accessors are big-endian and panic when
/// fewer bytes remain than requested — match the real crate by checking
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        self.get_u16().swap_bytes()
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        self.get_u32().swap_bytes()
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        self.get_u64().swap_bytes()
    }

    /// Copies the next `len` bytes out as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Copies bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.read += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor; integers are written big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(2);
        b.put_u32(3);
        b.put_u64(4);
        b.put_slice(b"xy");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 2);
        assert_eq!(r.get_u32(), 3);
        assert_eq!(r.get_u64(), 4);
        assert_eq!(&r[..], b"xy");
    }

    #[test]
    fn slicing_and_split() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        assert_eq!(&b.slice(1..3)[..], &[3, 4]);
        assert_eq!(b.slice(..0).len(), 0);
    }

    #[test]
    fn clone_is_shallow_view() {
        let a = Bytes::from(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 1024);
    }
}
