//! The glob-import surface test files use: `use proptest::prelude::*;`.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
    ProptestConfig, Strategy,
};
