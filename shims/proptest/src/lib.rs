//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range and `any::<T>()` strategies, tuple strategies, and
//! [`collection::vec`]/[`collection::btree_map`]. Cases are sampled from a
//! generator seeded by the test's name, so every run explores the same
//! inputs (upstream randomizes and shrinks; the shim trades shrinking for
//! reproducibility — on failure it prints the offending inputs instead).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod prelude;

/// How many cases a [`proptest!`] block runs per test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Seeds the deterministic case generator for a named test.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Asserts a property-test condition (the shim panics; upstream returns an
/// error so the case can shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..cfg.cases {
                    let mut rendered = String::new();
                    $(
                        let __value = $crate::Strategy::generate(&($strat), &mut rng);
                        rendered.push_str(&format!(
                            concat!(stringify!($arg), " = {:?}; "),
                            &__value,
                        ));
                        let $arg = __value;
                    )*
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "[proptest shim] {} failed at case {}/{} with inputs: {}",
                            stringify!($name), case + 1, cfg.cases, rendered,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(x in strategy, ..) { body }` runs
/// `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..20, f in -1.0f64..1.0) {
            prop_assert!((3..20).contains(&a));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u32..5, any::<u8>()),
                           v in proptest::collection::vec(0u64..100, 2..10)) {
            prop_assert!(pair.0 < 5);
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn fixed_len_vec(v in proptest::collection::vec(any::<u8>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn btree_maps(m in proptest::collection::btree_map(any::<u8>(), 1u64..9, 0..6)) {
            prop_assert!(m.len() < 6);
            prop_assert!(m.values().all(|&v| (1..9).contains(&v)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let sa = crate::Strategy::generate(&(0u64..1_000_000), &mut a);
        let sb = crate::Strategy::generate(&(0u64..1_000_000), &mut b);
        assert_eq!(sa, sb);
    }
}
