//! Collection strategies: vectors and maps of generated values.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Sizes a collection strategy accepts: a fixed length or a half-open
/// range of lengths.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn pick_len(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn pick_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn pick_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<S::Value>` (see [`vec`]).
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// A vector whose elements come from `element` and whose length comes from
/// `len` (a fixed `usize` or a range).
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.len.pick_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` (see [`btree_map`]).
pub struct BTreeMapStrategy<K, V, L> {
    key: K,
    value: V,
    len: L,
}

/// A map with up to `len` entries (duplicate generated keys collapse, as
/// in upstream proptest).
pub fn btree_map<K: Strategy, V: Strategy, L: IntoSizeRange>(
    key: K,
    value: V,
    len: L,
) -> BTreeMapStrategy<K, V, L>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, len }
}

impl<K: Strategy, V: Strategy, L: IntoSizeRange> Strategy for BTreeMapStrategy<K, V, L>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.len.pick_len(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
