//! The [`Distribution`] trait, the [`Standard`] distribution and the
//! sampling iterator.

use crate::{unit_f64, RngCore};
use std::marker::PhantomData;

/// A distribution over values of `T`, sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" uniform distribution of a type: full-range integers,
/// `[0, 1)` floats, fair-coin bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Infinite iterator of samples (see [`crate::Rng::sample_iter`]).
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _phantom: PhantomData<T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _phantom: PhantomData,
        }
    }
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn standard_types_sample() {
        let mut r = StdRng::seed_from_u64(11);
        let _: u8 = self::Distribution::sample(&Standard, &mut r);
        let f: f64 = Distribution::sample(&Standard, &mut r);
        assert!((0.0..1.0).contains(&f));
        let g: f32 = Distribution::sample(&Standard, &mut r);
        assert!((0.0..1.0).contains(&g));
    }
}
