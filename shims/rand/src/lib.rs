//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the API subset it uses: [`RngCore`]/[`Rng`]/[`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64 — a different
//! generator than upstream's ChaCha12, but deterministic and of good
//! statistical quality for the Monte-Carlo experiments here), the
//! [`distributions::Standard`] distribution, and integer/float range
//! sampling for `gen_range`.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples one value from a distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Consumes the generator into an infinite sampling iterator.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a `f64` in `[0, 1)` (53-bit mantissa method).
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that `gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn unit_interval_mean() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn sample_iter_streams() {
        let v: Vec<u32> = StdRng::seed_from_u64(5)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(v.len(), 4);
    }
}
