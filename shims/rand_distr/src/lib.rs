//! Offline stand-in for `rand_distr`: the exponential, normal and
//! log-normal distributions this workspace samples, over the vendored
//! `rand` shim. Inverse-transform (Exp) and Box-Muller (Normal) sampling —
//! slower than upstream's ziggurat but bit-deterministic and adequate for
//! simulation workloads.

pub use rand::distributions::Distribution;
use rand::distributions::Standard;
use rand::RngCore;

/// Parameter error for the constructors (mirrors upstream's per-type
/// errors; one shared type suffices here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Exponential distribution with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution; `λ` must be positive and
    /// finite.
    pub fn new(lambda: f64) -> Result<Exp, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform; 1 − u ∈ (0, 1] keeps ln() finite.
        let u: f64 = Standard.sample(rng);
        -(1.0 - u).ln() / self.lambda
    }
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be non-negative and
    /// finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, ParamError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamError("Normal std_dev must be ≥ 0 and finite"))
        }
    }
}

/// One standard-normal draw via Box-Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = Standard.sample(rng);
    let u2: f64 = Standard.sample(rng);
    // Guard u1 = 0 (ln(0) = −∞): shift into (0, 1].
    let r = (-2.0 * (1.0 - u1).ln()).sqrt();
    r * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(µ, σ))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with location `µ` and scale `σ`
    /// (parameters of the underlying normal); `σ` must be non-negative and
    /// finite.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, ParamError> {
        if sigma >= 0.0 && sigma.is_finite() && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(ParamError("LogNormal sigma must be ≥ 0 and finite"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Exp::new(0.5).unwrap(); // mean 2
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(10.0, 3.0).unwrap();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(samples[0] > 0.0);
        // Median of LogNormal(µ, σ) is e^µ.
        let median = samples[samples.len() / 2];
        assert!(
            (median - 1.0f64.exp()).abs() < 0.1,
            "median {median} vs {}",
            1.0f64.exp()
        );
    }
}
