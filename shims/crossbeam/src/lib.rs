//! Offline stand-in for `crossbeam`: the [`channel`] module offers MPMC
//! bounded and unbounded channels built on `Mutex<VecDeque>` + `Condvar`.
//! Semantics match the real crate for the subset used here: cloneable
//! senders *and* receivers, blocking/non-blocking/timed receive, bounded
//! sends that block when full and fail when all receivers are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<Shared<T>>,
        /// Signalled when an item is pushed or the channel disconnects.
        readable: Condvar,
        /// Signalled when an item is popped or the channel disconnects.
        writable: Condvar,
        cap: Option<usize>,
    }

    struct Shared<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are dropped.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are dropped.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are dropped.
        Disconnected,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clone freely (MPMC — each message goes to
    /// exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel with capacity `cap` (`0` is rounded up to
    /// `1`: the shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Shared {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().expect("channel lock");
            loop {
                if q.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if q.items.len() >= cap => {
                        q = self.inner.writable.wait(q).expect("channel lock");
                    }
                    _ => break,
                }
            }
            q.items.push_back(value);
            drop(q);
            self.inner.readable.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails with `Full` at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = self.inner.queue.lock().expect("channel lock");
            if q.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.inner.cap {
                if q.items.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.items.push_back(value);
            drop(q);
            self.inner.readable.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel lock").items.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.items.pop_front() {
                    drop(q);
                    self.inner.writable.notify_one();
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.inner.readable.wait(q).expect("channel lock");
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().expect("channel lock");
            if let Some(v) = q.items.pop_front() {
                drop(q);
                self.inner.writable.notify_one();
                return Ok(v);
            }
            if q.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.items.pop_front() {
                    drop(q);
                    self.inner.writable.notify_one();
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .inner
                    .readable
                    .wait_timeout(q, deadline - now)
                    .expect("channel lock");
                q = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel lock").items.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.inner.queue.lock().expect("channel lock");
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.inner.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut q = self.inner.queue.lock().expect("channel lock");
            q.receivers -= 1;
            if q.receivers == 0 {
                drop(q);
                self.inner.writable.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = channel::bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::bounded::<u64>(4);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || rx.iter().sum::<u64>()));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..100).sum::<u64>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(channel::RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
