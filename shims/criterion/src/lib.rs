//! Offline stand-in for `criterion`.
//!
//! Implements the macro/builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`/`bench_with_input`, `iter`/`iter_batched` — with a
//! plain wall-clock measurement loop (warm-up, then timed samples, mean
//! and min/max printed per benchmark). No statistics engine, HTML reports
//! or CLI filtering; `--quick` and other flags are accepted and ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepts (and ignores) command-line arguments, for
    /// `criterion_main!` parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Prints the closing banner (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.0),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.0),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// How `iter_batched` amortizes setup cost (ignored by the shim; each
/// iteration runs its own setup, excluded from timing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size the inner loop so one sample is ≥ ~50 µs.
        let warm_deadline = Instant::now() + self.warm_up;
        let iters_per_sample;
        loop {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            if Instant::now() >= warm_deadline {
                let per_iter_ns = dt.as_nanos().max(1) as u64;
                iters_per_sample = (50_000 / per_iter_ns).max(1);
                break;
            }
        }
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        sample_size,
        warm_up,
        measurement,
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let n = bencher.samples_ns.len() as f64;
    let mean = bencher.samples_ns.iter().sum::<f64>() / n;
    let min = bencher.samples_ns.iter().cloned().fold(f64::MAX, f64::min);
    let max = bencher.samples_ns.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group, in either the simple or the configured
/// form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
