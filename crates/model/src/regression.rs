//! Regression machinery: OLS, two-segment piecewise, log-linear.
//!
//! These are what turn the methodology's raw measurements into the paper's
//! formulas: Figure 6's scatter → the piecewise Formula 6 (including
//! *finding* the ≈ 1425-element breakpoint), Figure 7's speed-ups → the
//! logarithmic Formula 7.

/// An ordinary-least-squares line `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept.
    pub intercept: f64,
    /// Slope.
    pub slope: f64,
    /// Coefficient of determination on the fitted data.
    pub r2: f64,
    /// Number of points fitted.
    pub n: usize,
    /// Standard error of the slope (0 for a perfect fit or n ≤ 2).
    pub slope_se: f64,
    /// Standard error of the intercept.
    pub intercept_se: f64,
}

impl LinearFit {
    /// Evaluates the fitted line.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Approximate 95 % confidence interval for the slope (±1.96 SE —
    /// adequate for the n ≥ 30 samples the calibration procedures use).
    pub fn slope_ci95(&self) -> (f64, f64) {
        (
            self.slope - 1.96 * self.slope_se,
            self.slope + 1.96 * self.slope_se,
        )
    }

    /// Approximate 95 % confidence interval for the intercept.
    pub fn intercept_ci95(&self) -> (f64, f64) {
        (
            self.intercept - 1.96 * self.intercept_se,
            self.intercept + 1.96 * self.intercept_se,
        )
    }

    /// True when zero lies outside the slope's 95 % interval — i.e. the
    /// measured dependence on `x` is statistically real.
    pub fn slope_is_significant(&self) -> bool {
        let (lo, hi) = self.slope_ci95();
        lo > 0.0 || hi < 0.0
    }
}

/// Fits `y = a + b·x` by least squares. Returns `None` for fewer than two
/// points or zero x-variance.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    // Residual variance → coefficient standard errors.
    let (slope_se, intercept_se) = if n > 2 {
        let sse: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = y - (intercept + slope * x);
                e * e
            })
            .sum();
        let sigma2 = sse / (n - 2) as f64;
        let slope_se = (sigma2 / sxx).sqrt();
        let intercept_se = (sigma2 * (1.0 / nf + mean_x * mean_x / sxx)).sqrt();
        (slope_se, intercept_se)
    } else {
        (0.0, 0.0)
    };
    Some(LinearFit {
        intercept,
        slope,
        r2,
        n,
        slope_se,
        intercept_se,
    })
}

/// Residual sum of squares of a linear fit over the given points.
fn sse(fit: &LinearFit, xs: &[f64], ys: &[f64]) -> f64 {
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = y - fit.predict(x);
            e * e
        })
        .sum()
}

/// A two-segment piecewise-linear fit with a free breakpoint — the shape of
/// Formula 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseFit {
    /// Points with `x ≤ breakpoint` follow `below`; the rest follow `above`.
    pub breakpoint: f64,
    /// The left segment.
    pub below: LinearFit,
    /// The right segment.
    pub above: LinearFit,
    /// Total residual sum of squares.
    pub sse: f64,
}

impl PiecewiseFit {
    /// Evaluates the piecewise model.
    pub fn predict(&self, x: f64) -> f64 {
        if x <= self.breakpoint {
            self.below.predict(x)
        } else {
            self.above.predict(x)
        }
    }

    /// The discontinuity jump at the breakpoint (above − below).
    pub fn jump(&self) -> f64 {
        self.above.predict(self.breakpoint) - self.below.predict(self.breakpoint)
    }
}

/// Fits a two-segment piecewise line, scanning every candidate breakpoint
/// between distinct x values and keeping the split with minimum total SSE.
/// Requires at least 3 points on each side of a valid split; returns `None`
/// if no split qualifies.
pub fn fit_piecewise(xs: &[f64], ys: &[f64]) -> Option<PiecewiseFit> {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    if xs.len() < 6 {
        return None;
    }
    // Sort points by x once.
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN x"));
    let sx: Vec<f64> = idx.iter().map(|&i| xs[i]).collect();
    let sy: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();

    let mut best: Option<PiecewiseFit> = None;
    for split in 3..=(sx.len() - 3) {
        // Skip splits inside runs of identical x.
        if sx[split - 1] == sx[split] {
            continue;
        }
        let (lx, rx) = sx.split_at(split);
        let (ly, ry) = sy.split_at(split);
        let (Some(below), Some(above)) = (fit_linear(lx, ly), fit_linear(rx, ry)) else {
            continue;
        };
        let total = sse(&below, lx, ly) + sse(&above, rx, ry);
        if best.as_ref().map(|b| total < b.sse).unwrap_or(true) {
            best = Some(PiecewiseFit {
                breakpoint: 0.5 * (sx[split - 1] + sx[split]),
                below,
                above,
                sse: total,
            });
        }
    }
    best
}

/// A log-linear fit `y = a + b·ln x` — the shape of Formula 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLinearFit {
    /// Intercept `a`.
    pub a: f64,
    /// Log coefficient `b`.
    pub b: f64,
    /// R² in log-x space.
    pub r2: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LogLinearFit {
    /// Evaluates `a + b·ln x` (x clamped to ≥ 1).
    pub fn predict(&self, x: f64) -> f64 {
        self.a + self.b * x.max(1.0).ln()
    }
}

/// Fits `y = a + b·ln x`; points with `x ≤ 0` are rejected by assertion.
pub fn fit_loglinear(xs: &[f64], ys: &[f64]) -> Option<LogLinearFit> {
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "log-linear fit needs positive x"
    );
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    fit_linear(&lx, ys).map(|f| LogLinearFit {
        a: f.intercept,
        b: f.slope,
        r2: f.r2,
        n: f.n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 + 0.75 * x).collect();
        let f = fit_linear(&xs, &ys).unwrap();
        assert!((f.intercept - 2.5).abs() < 1e-9);
        assert!((f.slope - 0.75).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
        assert_eq!(f.n, 50);
    }

    #[test]
    fn linear_fit_handles_noise() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 1.0 + 2.0 * x + ((i * 2_654_435_761) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let f = fit_linear(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 0.01, "{}", f.slope);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn degenerate_linear_inputs() {
        assert!(fit_linear(&[], &[]).is_none());
        assert!(fit_linear(&[1.0], &[2.0]).is_none());
        assert!(fit_linear(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn piecewise_recovers_formula6_shape() {
        // Generate data from the paper's Formula 6 and check the fitter
        // finds the 1425 breakpoint and both segments.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&s| {
                if s > 1425.0 {
                    0.773 + 0.0439 * s
                } else {
                    1.163 + 0.0387 * s
                }
            })
            .collect();
        let f = fit_piecewise(&xs, &ys).unwrap();
        assert!(
            (f.breakpoint - 1425.0).abs() < 150.0,
            "breakpoint {}",
            f.breakpoint
        );
        assert!((f.below.slope - 0.0387).abs() < 0.002, "{:?}", f.below);
        assert!((f.above.slope - 0.0439).abs() < 0.002, "{:?}", f.above);
        assert!((f.below.intercept - 1.163).abs() < 1.0);
        assert!((f.above.intercept - 0.773).abs() < 1.0);
        assert!(f.jump() > 0.0, "index overhead jump missing");
    }

    #[test]
    fn piecewise_needs_enough_points() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(fit_piecewise(&xs, &ys).is_none());
    }

    #[test]
    fn piecewise_predict_uses_correct_segment() {
        let xs: Vec<f64> = (1..=60).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x <= 30.0 { x } else { 100.0 + 2.0 * x })
            .collect();
        let f = fit_piecewise(&xs, &ys).unwrap();
        assert!((f.predict(10.0) - 10.0).abs() < 1e-6);
        assert!((f.predict(50.0) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn standard_errors_shrink_with_sample_size_and_noise() {
        // Deterministic pseudo-noise around a known line.
        let noisy = |n: usize, amp: f64| -> LinearFit {
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let ys: Vec<f64> = xs
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    2.0 + 3.0 * x + amp * ((((i * 2_654_435_761) % 1000) as f64 / 500.0) - 1.0)
                })
                .collect();
            fit_linear(&xs, &ys).unwrap()
        };
        let small_noisy = noisy(20, 5.0);
        let big_noisy = noisy(500, 5.0);
        let big_quiet = noisy(500, 0.5);
        assert!(big_noisy.slope_se < small_noisy.slope_se);
        assert!(big_quiet.slope_se < big_noisy.slope_se);
        // The true slope (3.0) lies inside every 95 % interval here.
        for f in [small_noisy, big_noisy, big_quiet] {
            let (lo, hi) = f.slope_ci95();
            assert!(lo <= 3.0 && 3.0 <= hi, "CI [{lo}, {hi}] misses truth");
            assert!(f.slope_is_significant());
        }
        // A perfect fit has zero standard errors.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + x).collect();
        let exact = fit_linear(&xs, &ys).unwrap();
        assert!(exact.slope_se < 1e-9);
        assert!(exact.intercept_se < 1e-9);
    }

    #[test]
    fn flat_noisy_slope_is_not_significant() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..100)
            .map(|i| 5.0 + ((((i * 2_654_435_761usize) % 1000) as f64 / 500.0) - 1.0) * 10.0)
            .collect();
        let f = fit_linear(&xs, &ys).unwrap();
        assert!(
            !f.slope_is_significant(),
            "noise produced a 'significant' slope: {f:?}"
        );
    }

    #[test]
    fn loglinear_recovers_formula7() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&s| 12.562 - 1.084 * s.ln()).collect();
        let f = fit_loglinear(&xs, &ys).unwrap();
        assert!((f.a - 12.562).abs() < 1e-6);
        assert!((f.b + 1.084).abs() < 1e-6);
        assert!((f.r2 - 1.0).abs() < 1e-9);
        assert!((f.predict(std::f64::consts::E) - (12.562 - 1.084)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn loglinear_rejects_nonpositive() {
        let _ = fit_loglinear(&[0.0, 1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_rejected() {
        let _ = fit_linear(&[1.0, 2.0], &[1.0]);
    }
}
