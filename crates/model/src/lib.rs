#![warn(missing_docs)]

//! # kvs-model
//!
//! The paper's primary contribution: an analytical performance model of
//! distributed queries on key-value data stores, synthesized from the
//! benchmarking methodology's measurements (§VI) and usable to answer the
//! design questions of §VII.
//!
//! The model's skeleton is Formula 2:
//!
//! ```text
//! T = max{ master_speed, slave_slowest, result_fetching }
//! ```
//!
//! with
//!
//! * `master_speed = keys · t_msg`                          — [`master`], Formula 3
//! * `slave_slowest = key_max · DB_model`                   — [`system`], Formula 4
//! * `key_max` from balls-into-bins                         — `kvs_balance`, Formula 5
//! * `DB_model = query_time / parallelism`                  — [`dbmodel`], Formulas 6–8
//!
//! [`regression`] provides the fitting machinery (ordinary least squares,
//! two-segment piecewise, log-linear) that turns raw measurements — ours or
//! anyone's — into model coefficients: "it would simply require to run the
//! same tests on the different hardware/software stack and create a new
//! regression" (§VI). [`gc`] adds the garbage-collector correction of
//! Figure 8, [`optimizer`] finds the optimal partition count (Figures 9 and
//! 10), and [`limits`] reproduces the single-master scalability analysis of
//! Figure 11 and §VII.

pub mod architecture;
pub mod dbmodel;
pub mod gc;
pub mod limits;
pub mod master;
pub mod optimizer;
pub mod regression;
pub mod sensitivity;
pub mod system;
pub mod validation;

pub use architecture::{evaluate as evaluate_architecture, ArchPrediction, Architecture};
pub use dbmodel::DbModel;
pub use gc::GcModel;
pub use master::MasterModel;
pub use optimizer::{optimize_partitions, OptimalChoice};
pub use regression::{LinearFit, LogLinearFit, PiecewiseFit};
pub use sensitivity::{dominant_parameter, sensitivities, Parameter, Sensitivity};
pub use system::{Prediction, SystemModel};
