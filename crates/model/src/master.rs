//! The master model: Formula 3 and the result-fetching term of Formula 2.
//!
//! In the paper's simple case the master "knows all the keys to visit from
//! the beginning", so its send phase is just `keys × t_msg`; the receive
//! phase is symmetric with its own per-message cost.

/// Per-message master costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterModel {
    /// End-to-end CPU cost of issuing one request, µs (the paper measured
    /// 150 µs with default Java serialization, 19 µs after Kryo).
    pub tx_us_per_msg: f64,
    /// CPU cost of receiving/deserializing one response, µs.
    pub rx_us_per_msg: f64,
}

impl MasterModel {
    /// The paper's un-optimized master (§V-B).
    pub fn paper_slow() -> Self {
        MasterModel {
            tx_us_per_msg: 150.0,
            rx_us_per_msg: 30.0,
        }
    }

    /// The paper's optimized master (§V-B).
    pub fn paper_optimized() -> Self {
        MasterModel {
            tx_us_per_msg: 19.0,
            rx_us_per_msg: 6.0,
        }
    }

    /// Formula 3: time for the master to issue `keys` requests, ms.
    pub fn master_speed_ms(&self, keys: f64) -> f64 {
        keys * self.tx_us_per_msg / 1_000.0
    }

    /// Result fetching: time to drain `keys` responses, ms.
    pub fn result_fetching_ms(&self, keys: f64) -> f64 {
        keys * self.rx_us_per_msg / 1_000.0
    }

    /// The sustainable issue rate, requests per second.
    pub fn issue_rate_rps(&self) -> f64 {
        1e6 / self.tx_us_per_msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_send_times() {
        // 10 000 messages: 1.5 s slow, 190 ms optimized (§V-B).
        assert!((MasterModel::paper_slow().master_speed_ms(10_000.0) - 1_500.0).abs() < 1e-9);
        assert!((MasterModel::paper_optimized().master_speed_ms(10_000.0) - 190.0).abs() < 1e-9);
    }

    #[test]
    fn issue_rate() {
        assert!((MasterModel::paper_optimized().issue_rate_rps() - 52_631.58).abs() < 0.1);
        assert!(
            MasterModel::paper_slow().issue_rate_rps()
                < MasterModel::paper_optimized().issue_rate_rps()
        );
    }

    #[test]
    fn fetching_scales_with_keys() {
        let m = MasterModel::paper_optimized();
        assert_eq!(m.result_fetching_ms(0.0), 0.0);
        assert!((m.result_fetching_ms(1_000.0) - 6.0).abs() < 1e-9);
    }
}
