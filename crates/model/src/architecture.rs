//! Architecture comparison: master/slave vs sharded masters vs peer-to-peer.
//!
//! The paper's opening problem (§I): "deciding when to use a master-slave
//! or a peer-to-peer approach: a master with a centralised logic is easier
//! to implement but the capability of a single node might constrain the
//! performance", and its §VIII observation that GFS "evolved to a more
//! complex sharding design with multiple masters". This module extends
//! Formula 2 to those architectures so the model can answer the question
//! quantitatively.

use crate::system::SystemModel;

/// A dispatch architecture for the distributed query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Architecture {
    /// One master issues every request (the paper's prototype).
    SingleMaster,
    /// `shards` coordinating masters split the key space; each issues its
    /// share concurrently (the GFS-evolution design of §VIII).
    ShardedMasters {
        /// Number of coordinating masters.
        shards: u64,
    },
    /// No master: every client issues its own requests directly to the
    /// DHT. Issue cost parallelizes over clients, but each client pays a
    /// per-request coordination overhead (there is no single place that
    /// "knows all the keys", so lookups/routing cost extra).
    PeerToPeer {
        /// Number of concurrent client peers.
        clients: u64,
        /// Extra per-message overhead each peer pays vs the tuned master,
        /// as a multiplier (≥ 1; e.g. 1.5 = 50 % slower per message).
        overhead_factor: f64,
    },
}

/// One architecture's predicted behaviour for a given query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchPrediction {
    /// The architecture evaluated.
    pub architecture: Architecture,
    /// Effective dispatch time, ms (the parallelized Formula 3 term).
    pub dispatch_ms: f64,
    /// Slave term (unchanged by the dispatch architecture), ms.
    pub slave_ms: f64,
    /// Result-collection term, ms.
    pub fetch_ms: f64,
}

impl ArchPrediction {
    /// The Formula 2 total.
    pub fn total_ms(&self) -> f64 {
        self.dispatch_ms.max(self.slave_ms).max(self.fetch_ms)
    }

    /// True when the dispatch tier is a binding constraint (tolerance for
    /// the optimizer's dispatch-vs-data equilibrium, as in
    /// [`crate::limits::MasterLimitPoint::master_bound`]).
    pub fn dispatch_bound(&self) -> bool {
        self.dispatch_ms >= self.slave_ms.max(self.fetch_ms) * 0.995
    }
}

/// Evaluates an architecture for a query of `keys` partitions of
/// `cells_per_key` cells on `nodes` data nodes.
pub fn evaluate(
    model: &SystemModel,
    architecture: Architecture,
    keys: f64,
    cells_per_key: f64,
    nodes: u64,
) -> ArchPrediction {
    let base = model.predict(keys, cells_per_key, nodes);
    let (dispatch_ms, fetch_ms) = match architecture {
        Architecture::SingleMaster => (base.master_ms, base.fetch_ms),
        Architecture::ShardedMasters { shards } => {
            let shards = shards.max(1) as f64;
            // Keys split across masters; the slowest shard carries the
            // balls-into-bins excess of the key split itself.
            let share = kvs_balance::formula::keymax(keys, shards.max(1.0) as u64) / keys;
            (base.master_ms * share, base.fetch_ms * share)
        }
        Architecture::PeerToPeer {
            clients,
            overhead_factor,
        } => {
            let clients = clients.max(1) as f64;
            let factor = overhead_factor.max(1.0);
            let share = kvs_balance::formula::keymax(keys, clients.max(1.0) as u64) / keys;
            (
                base.master_ms * share * factor,
                base.fetch_ms * share * factor,
            )
        }
    };
    ArchPrediction {
        architecture,
        dispatch_ms,
        slave_ms: base.slave_ms,
        fetch_ms,
    }
}

/// The smallest number of dispatch shards (masters or peers) that stops
/// the dispatch tier from binding for this query, or `None` if one
/// dispatcher already suffices.
pub fn shards_to_unbind(
    model: &SystemModel,
    keys: f64,
    cells_per_key: f64,
    nodes: u64,
) -> Option<u64> {
    let single = evaluate(
        model,
        Architecture::SingleMaster,
        keys,
        cells_per_key,
        nodes,
    );
    if !single.dispatch_bound() {
        return None;
    }
    for shards in 2..=4096u64 {
        let p = evaluate(
            model,
            Architecture::ShardedMasters { shards },
            keys,
            cells_per_key,
            nodes,
        );
        if !p.dispatch_bound() {
            return Some(shards);
        }
    }
    Some(4096)
}

/// The partition count minimizing an *architecture-specific* prediction —
/// the key point of the comparison: a sharded or peer-to-peer dispatch tier
/// can afford far finer partitioning (hence better balance) than one
/// master.
pub fn optimize_for_architecture(
    model: &SystemModel,
    architecture: Architecture,
    total_elements: f64,
    nodes: u64,
) -> (u64, ArchPrediction) {
    assert!(total_elements >= 1.0, "empty dataset");
    let max_parts = total_elements as u64;
    let eval = |parts: u64| -> f64 {
        evaluate(
            model,
            architecture,
            parts as f64,
            total_elements / parts as f64,
            nodes,
        )
        .total_ms()
    };
    let mut best = (1u64, eval(1));
    let steps = 200;
    let log_max = (max_parts as f64).ln();
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..=steps {
        let parts = ((log_max * i as f64 / steps as f64).exp().round() as u64).clamp(1, max_parts);
        if seen.insert(parts) {
            let t = eval(parts);
            if t < best.1 {
                best = (parts, t);
            }
        }
    }
    let window = ((best.0 as f64) * 0.05).ceil() as u64 + 2;
    for parts in best.0.saturating_sub(window).max(1)..=(best.0 + window).min(max_parts) {
        let t = eval(parts);
        if t < best.1 {
            best = (parts, t);
        }
    }
    let prediction = evaluate(
        model,
        architecture,
        best.0 as f64,
        total_elements / best.0 as f64,
        nodes,
    );
    (best.0, prediction)
}

/// Compares the three architectures at each cluster size, each at *its own*
/// optimal partition count. Returns `(nodes, single, sharded-by-4, p2p)`.
pub fn architecture_sweep(
    model: &SystemModel,
    total_elements: f64,
    node_counts: &[u64],
    p2p_overhead: f64,
) -> Vec<(u64, ArchPrediction, ArchPrediction, ArchPrediction)> {
    node_counts
        .iter()
        .map(|&nodes| {
            let (_, single) =
                optimize_for_architecture(model, Architecture::SingleMaster, total_elements, nodes);
            let (_, sharded) = optimize_for_architecture(
                model,
                Architecture::ShardedMasters { shards: 4 },
                total_elements,
                nodes,
            );
            let (_, p2p) = optimize_for_architecture(
                model,
                Architecture::PeerToPeer {
                    clients: nodes,
                    overhead_factor: p2p_overhead,
                },
                total_elements,
                nodes,
            );
            (nodes, single, sharded, p2p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SystemModel {
        SystemModel::paper_optimized()
    }

    #[test]
    fn single_master_matches_base_prediction() {
        let m = model();
        let arch = evaluate(&m, Architecture::SingleMaster, 10_000.0, 100.0, 16);
        let base = m.predict(10_000.0, 100.0, 16);
        assert_eq!(arch.dispatch_ms, base.master_ms);
        assert_eq!(arch.slave_ms, base.slave_ms);
        assert_eq!(arch.total_ms(), base.total_ms());
    }

    #[test]
    fn sharding_relieves_a_bound_master() {
        let m = SystemModel::paper_slow();
        // Fine-grained on 16 nodes: master-bound (1.5 s vs ~0.5 s of DB).
        let single = evaluate(&m, Architecture::SingleMaster, 10_000.0, 100.0, 16);
        assert!(single.dispatch_bound());
        let sharded = evaluate(
            &m,
            Architecture::ShardedMasters { shards: 8 },
            10_000.0,
            100.0,
            16,
        );
        assert!(sharded.total_ms() < single.total_ms());
        assert!(!sharded.dispatch_bound());
        // Slave term is architecture-independent.
        assert_eq!(sharded.slave_ms, single.slave_ms);
    }

    #[test]
    fn shard_split_pays_its_own_imbalance() {
        let m = SystemModel::paper_slow();
        let sharded = evaluate(
            &m,
            Architecture::ShardedMasters { shards: 4 },
            10_000.0,
            100.0,
            16,
        );
        let ideal_share =
            evaluate(&m, Architecture::SingleMaster, 10_000.0, 100.0, 16).dispatch_ms / 4.0;
        assert!(
            sharded.dispatch_ms > ideal_share,
            "sharding can't be perfectly linear: {} vs {}",
            sharded.dispatch_ms,
            ideal_share
        );
    }

    #[test]
    fn p2p_scales_dispatch_but_pays_overhead() {
        let m = SystemModel::paper_slow();
        let p2p_cheap = evaluate(
            &m,
            Architecture::PeerToPeer {
                clients: 16,
                overhead_factor: 1.0,
            },
            10_000.0,
            100.0,
            16,
        );
        let p2p_costly = evaluate(
            &m,
            Architecture::PeerToPeer {
                clients: 16,
                overhead_factor: 3.0,
            },
            10_000.0,
            100.0,
            16,
        );
        assert!(p2p_cheap.dispatch_ms < p2p_costly.dispatch_ms);
        assert!((p2p_costly.dispatch_ms / p2p_cheap.dispatch_ms - 3.0).abs() < 1e-9);
    }

    #[test]
    fn shards_to_unbind_finds_the_paper_scale() {
        let m = SystemModel::paper_slow();
        // Fine-grained, slow master: needs a handful of shards.
        let shards = shards_to_unbind(&m, 10_000.0, 100.0, 16).expect("master is bound");
        assert!((2..=16).contains(&shards), "{shards}");
        // Optimized master on a small cluster: nothing to fix.
        let m2 = SystemModel::paper_optimized();
        assert_eq!(shards_to_unbind(&m2, 1_000.0, 1_000.0, 4), None);
    }

    #[test]
    fn sweep_orders_architectures_sanely() {
        let m = SystemModel::paper_slow();
        let rows = architecture_sweep(&m, 1_000_000.0, &[16, 64], 1.5);
        for (nodes, single, sharded, p2p) in rows {
            assert!(
                sharded.total_ms() <= single.total_ms() + 1e-9,
                "{nodes}: sharding made things worse"
            );
            assert!(
                p2p.total_ms() <= single.total_ms() * 1.05,
                "{nodes}: p2p ({}) far worse than single ({})",
                p2p.total_ms(),
                single.total_ms()
            );
        }
    }

    #[test]
    fn sharding_unlocks_finer_partitioning_at_scale() {
        // At 256 nodes the single master caps the partition count; freeing
        // the dispatch tier lets the optimizer pick more partitions and a
        // faster query.
        let m = SystemModel::paper_optimized();
        let (p_single, single) =
            optimize_for_architecture(&m, Architecture::SingleMaster, 1_000_000.0, 256);
        let (p_shard, sharded) = optimize_for_architecture(
            &m,
            Architecture::ShardedMasters { shards: 4 },
            1_000_000.0,
            256,
        );
        assert!(
            p_shard > p_single,
            "sharding should allow more partitions: {p_shard} vs {p_single}"
        );
        assert!(
            sharded.total_ms() < single.total_ms() * 0.95,
            "sharded {} vs single {}",
            sharded.total_ms(),
            single.total_ms()
        );
    }
}
