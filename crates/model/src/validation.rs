//! Model validation: predicted vs observed (Figure 8).
//!
//! "We validated our model by comparing the estimated times with the one we
//! recorded in our previous tests … The precision of the estimation is
//! high, especially considering the high variance we observed in the
//! tests."

use crate::system::SystemModel;

/// One observed experiment to validate against.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// A label for reporting (e.g. "medium-grained / 8 nodes").
    pub label: String,
    /// Keys the query touched.
    pub keys: f64,
    /// Cells per key.
    pub cells_per_key: f64,
    /// Cluster size.
    pub nodes: u64,
    /// The measured query time, ms.
    pub observed_ms: f64,
}

/// One row of the validation table.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// The observation's label.
    pub label: String,
    /// Measured time, ms.
    pub observed_ms: f64,
    /// Base-model prediction, ms.
    pub predicted_ms: f64,
    /// GC-corrected prediction, ms (the `dbModel+GC` line).
    pub predicted_gc_ms: f64,
    /// Relative error of the base model: (pred − obs)/obs.
    pub error: f64,
    /// Relative error of the GC-corrected model.
    pub error_gc: f64,
}

/// Validates a model against a set of observations.
pub fn validate(model: &SystemModel, observations: &[Observation]) -> Vec<ValidationRow> {
    let gc_model = model.with_gc_copy();
    observations
        .iter()
        .map(|o| {
            let predicted_ms = model.predict(o.keys, o.cells_per_key, o.nodes).total_ms();
            let predicted_gc_ms = gc_model
                .predict(o.keys, o.cells_per_key, o.nodes)
                .total_ms();
            ValidationRow {
                label: o.label.clone(),
                observed_ms: o.observed_ms,
                predicted_ms,
                predicted_gc_ms,
                error: rel_error(predicted_ms, o.observed_ms),
                error_gc: rel_error(predicted_gc_ms, o.observed_ms),
            }
        })
        .collect()
}

fn rel_error(predicted: f64, observed: f64) -> f64 {
    if observed == 0.0 {
        0.0
    } else {
        (predicted - observed) / observed
    }
}

/// Mean absolute relative error over a validation table.
pub fn mean_abs_error(rows: &[ValidationRow], gc: bool) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter()
        .map(|r| if gc { r.error_gc.abs() } else { r.error.abs() })
        .sum::<f64>()
        / rows.len() as f64
}

impl SystemModel {
    /// A copy of this model with the GC correction enabled (keeps `self`
    /// untouched — validation reports both lines side by side).
    pub fn with_gc_copy(&self) -> SystemModel {
        let mut copy = *self;
        copy.gc = Some(crate::gc::GcModel::paper());
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(label: &str, keys: f64, cells: f64, nodes: u64, observed: f64) -> Observation {
        Observation {
            label: label.to_string(),
            keys,
            cells_per_key: cells,
            nodes,
            observed_ms: observed,
        }
    }

    #[test]
    fn perfect_observations_validate_perfectly() {
        let m = SystemModel::paper_optimized();
        // Fabricate observations exactly from the model itself.
        let observations: Vec<Observation> = [(1_000.0, 1_000.0, 4u64), (10_000.0, 100.0, 16)]
            .iter()
            .map(|&(k, c, n)| obs("self", k, c, n, m.predict(k, c, n).total_ms()))
            .collect();
        let rows = validate(&m, &observations);
        assert!(mean_abs_error(&rows, false) < 1e-12);
    }

    #[test]
    fn gc_line_corrects_coarse_underprediction() {
        let m = SystemModel::paper_optimized();
        // Simulate the paper's situation: the real system (with a JVM GC)
        // ran coarse-grained 15 % slower than the GC-less model predicts.
        let base = m.predict(100.0, 10_000.0, 16).total_ms();
        let observed = base * 1.14;
        let rows = validate(&m, &[obs("coarse/16", 100.0, 10_000.0, 16, observed)]);
        let row = &rows[0];
        assert!(row.error < -0.05, "base model should under-predict");
        assert!(
            row.error_gc.abs() < row.error.abs(),
            "GC line should be closer: {} vs {}",
            row.error_gc,
            row.error
        );
    }

    #[test]
    fn error_signs_are_meaningful() {
        let m = SystemModel::paper_optimized();
        let p = m.predict(1_000.0, 1_000.0, 8).total_ms();
        let rows = validate(
            &m,
            &[
                obs("slow", 1_000.0, 1_000.0, 8, p * 2.0),
                obs("fast", 1_000.0, 1_000.0, 8, p * 0.5),
            ],
        );
        assert!(rows[0].error < 0.0, "prediction below observation");
        assert!(rows[1].error > 0.0, "prediction above observation");
    }

    #[test]
    fn empty_validation_is_safe() {
        assert_eq!(mean_abs_error(&[], false), 0.0);
        let rows = validate(&SystemModel::paper_optimized(), &[]);
        assert!(rows.is_empty());
    }
}
