//! The partition-count optimizer (Figures 9 and 10, §VII).
//!
//! "we can use an optimizer to find which would be the best number of rows
//! for the query we run … the optimizer increases the number of rows when
//! there are more nodes … we have to mediate between two conflicting
//! aspects: the database efficiency and the workload distribution."

use crate::system::{Prediction, SystemModel};

/// The optimizer's answer for one cluster size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalChoice {
    /// Cluster size this choice is for.
    pub nodes: u64,
    /// The optimal number of partitions (rows).
    pub partitions: u64,
    /// Cells per partition at that choice.
    pub cells_per_partition: f64,
    /// The predicted query time at the optimum.
    pub prediction: Prediction,
}

impl OptimalChoice {
    /// Predicted total, ms.
    pub fn total_ms(&self) -> f64 {
        self.prediction.total_ms()
    }
}

/// Finds the partition count minimizing the predicted time for a query
/// over `total_elements` on `nodes` nodes.
///
/// The search is exhaustive over a dense logarithmic grid refined around
/// the best coarse candidate — the objective is piecewise-smooth but has a
/// discontinuity (the column-index threshold), so golden-section alone is
/// not safe.
pub fn optimize_partitions(model: &SystemModel, total_elements: f64, nodes: u64) -> OptimalChoice {
    assert!(total_elements >= 1.0, "empty dataset");
    let max_parts = total_elements as u64;
    let evaluate = |parts: u64| -> f64 {
        model
            .predict_for_total(total_elements, parts as f64, nodes)
            .total_ms()
    };
    // Coarse pass: ~200 log-spaced candidates.
    let mut best = (1u64, evaluate(1));
    let steps = 200;
    let log_max = (max_parts as f64).ln();
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..=steps {
        let parts = ((log_max * i as f64 / steps as f64).exp().round() as u64).clamp(1, max_parts);
        if !seen.insert(parts) {
            continue;
        }
        let t = evaluate(parts);
        if t < best.1 {
            best = (parts, t);
        }
    }
    // Refinement: exhaustive ±5 % window around the coarse winner.
    let window = ((best.0 as f64) * 0.05).ceil() as u64 + 2;
    let lo = best.0.saturating_sub(window).max(1);
    let hi = (best.0 + window).min(max_parts);
    for parts in lo..=hi {
        let t = evaluate(parts);
        if t < best.1 {
            best = (parts, t);
        }
    }
    let prediction = model.predict_for_total(total_elements, best.0 as f64, nodes);
    OptimalChoice {
        nodes,
        partitions: best.0,
        cells_per_partition: total_elements / best.0 as f64,
        prediction,
    }
}

/// Figure 10's decomposition: at the optimum for each cluster size, the
/// total loss versus ideal linear scalability and the share caused by
/// workload imbalance (the rest is database efficiency the optimizer
/// deliberately sacrificed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityLoss {
    /// Cluster size.
    pub nodes: u64,
    /// (T(n) / (T(1)/n)) − 1: fractional time above ideal.
    pub total_loss: f64,
    /// The part of the loss attributable to `key_max > keys/n`.
    pub imbalance_loss: f64,
    /// `total_loss − imbalance_loss`: efficiency the optimizer traded away.
    pub efficiency_loss: f64,
}

/// Computes Figure 10 for a range of cluster sizes.
pub fn scalability_losses(
    model: &SystemModel,
    total_elements: f64,
    node_counts: &[u64],
) -> Vec<ScalabilityLoss> {
    let t1 = optimize_partitions(model, total_elements, 1).total_ms();
    node_counts
        .iter()
        .map(|&nodes| {
            let opt = optimize_partitions(model, total_elements, nodes);
            let ideal = t1 / nodes as f64;
            let total_loss = opt.total_ms() / ideal - 1.0;
            // Re-evaluate the optimum with a perfectly balanced workload.
            let balanced_ms = opt
                .prediction
                .balanced_slave_ms()
                .max(opt.prediction.master_ms)
                .max(opt.prediction.fetch_ms);
            let imbalance_loss = (opt.total_ms() - balanced_ms) / ideal;
            ScalabilityLoss {
                nodes,
                total_loss,
                imbalance_loss,
                efficiency_loss: total_loss - imbalance_loss,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MILLION: f64 = 1_000_000.0;

    #[test]
    fn single_node_optimum_matches_paper_formulas() {
        // §VII claims "Cassandra seems to perform at best if we split the
        // one million elements into 3300 rows". Solving the paper's own
        // Formulas 6+7 analytically puts the optimum at ≈165 cells/row
        // (≈6 000 rows); the objective is extremely flat, so 3 300 rows is
        // within a few percent of optimal. We verify both facts.
        let m = SystemModel::paper_optimized();
        let opt = optimize_partitions(&m, MILLION, 1);
        assert!(
            (4_500..=8_000).contains(&opt.partitions),
            "optimal partitions {} far from the formulas' ≈6000",
            opt.partitions
        );
        assert!(opt.cells_per_partition > 120.0 && opt.cells_per_partition < 230.0);
        let at_3300 = m.predict_for_total(MILLION, 3_300.0, 1).total_ms();
        assert!(
            at_3300 / opt.total_ms() < 1.05,
            "paper's 3300 rows should be near-optimal: {} vs {}",
            at_3300,
            opt.total_ms()
        );
    }

    #[test]
    fn optimum_grows_with_nodes() {
        // Figure 9: "the optimizer increases the number of rows when there
        // are more nodes".
        let m = SystemModel::paper_optimized();
        let mut prev = 0;
        for nodes in [1u64, 2, 4, 8, 16] {
            let opt = optimize_partitions(&m, MILLION, nodes);
            assert!(
                opt.partitions >= prev,
                "{} nodes: {} < {prev}",
                nodes,
                opt.partitions
            );
            prev = opt.partitions;
        }
    }

    #[test]
    fn optimum_beats_the_papers_fixed_models() {
        let m = SystemModel::paper_optimized();
        for nodes in [1u64, 4, 16] {
            let opt = optimize_partitions(&m, MILLION, nodes).total_ms();
            for fixed in [100.0, 1_000.0, 10_000.0] {
                let t = m.predict_for_total(MILLION, fixed, nodes).total_ms();
                assert!(
                    opt <= t + 1e-6,
                    "{nodes} nodes: optimizer {opt} worse than fixed {fixed} ({t})"
                );
            }
        }
    }

    #[test]
    fn predicted_time_scales_down_with_nodes() {
        let m = SystemModel::paper_optimized();
        let mut prev = f64::INFINITY;
        for nodes in [1u64, 2, 4, 8, 16] {
            let t = optimize_partitions(&m, MILLION, nodes).total_ms();
            assert!(t < prev, "{nodes} nodes did not improve: {t} vs {prev}");
            prev = t;
        }
    }

    #[test]
    fn losses_match_figure10_shape() {
        let m = SystemModel::paper_optimized();
        let losses = scalability_losses(&m, MILLION, &[2, 4, 8, 16]);
        // Loss grows with cluster size and sits near ~10 % at 16 nodes
        // ("with 16 nodes the query requires 10 % more").
        for w in losses.windows(2) {
            assert!(
                w[1].total_loss >= w[0].total_loss - 0.01,
                "loss not growing: {w:?}"
            );
        }
        let at16 = losses.last().unwrap();
        assert!(
            (0.03..0.30).contains(&at16.total_loss),
            "loss at 16 nodes: {}",
            at16.total_loss
        );
        // Both components are non-negative and sum to the total.
        for l in &losses {
            assert!(l.imbalance_loss >= -1e-9, "{l:?}");
            assert!(l.efficiency_loss >= -1e-9, "{l:?}");
            assert!((l.imbalance_loss + l.efficiency_loss - l.total_loss).abs() < 1e-9);
        }
    }

    #[test]
    fn tiny_dataset_is_handled() {
        let m = SystemModel::paper_optimized();
        let opt = optimize_partitions(&m, 10.0, 4);
        assert!(opt.partitions >= 1 && opt.partitions <= 10);
    }
}
