//! The database model: Formulas 6, 7 and 8.
//!
//! `query_time(s)` is the single-request latency for a row of `s` cells
//! (piecewise, with the column-index discontinuity); `parallelism(s)` is
//! the *maximum* throughput speed-up concurrent requests can extract for
//! that row size; their ratio `DB_model(s)` is the amortized per-request
//! cost the slave model multiplies by `key_max`.

use crate::regression::{LogLinearFit, PiecewiseFit};
use kvs_store::cost::{
    PAPER_BASE_MS, PAPER_INDEXED_BASE_MS, PAPER_INDEXED_PER_CELL_MS, PAPER_INDEX_THRESHOLD_CELLS,
    PAPER_PER_CELL_MS,
};

/// A piecewise single-request latency model (Formula 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTimeModel {
    /// Breakpoint in cells (the column-index threshold).
    pub threshold_cells: f64,
    /// Intercept below the threshold, ms.
    pub base_ms: f64,
    /// Slope below the threshold, ms/cell.
    pub per_cell_ms: f64,
    /// Intercept above the threshold, ms.
    pub indexed_base_ms: f64,
    /// Slope above the threshold, ms/cell.
    pub indexed_per_cell_ms: f64,
}

impl QueryTimeModel {
    /// The constants the paper published.
    pub fn paper() -> Self {
        QueryTimeModel {
            threshold_cells: PAPER_INDEX_THRESHOLD_CELLS as f64,
            base_ms: PAPER_BASE_MS,
            per_cell_ms: PAPER_PER_CELL_MS,
            indexed_base_ms: PAPER_INDEXED_BASE_MS,
            indexed_per_cell_ms: PAPER_INDEXED_PER_CELL_MS,
        }
    }

    /// Builds the model from a fitted piecewise regression (the Figure 6
    /// methodology step on someone else's hardware).
    pub fn from_fit(fit: &PiecewiseFit) -> Self {
        QueryTimeModel {
            threshold_cells: fit.breakpoint,
            base_ms: fit.below.intercept,
            per_cell_ms: fit.below.slope,
            indexed_base_ms: fit.above.intercept,
            indexed_per_cell_ms: fit.above.slope,
        }
    }

    /// Single-request latency for a row of `cells` cells, ms.
    pub fn query_time_ms(&self, cells: f64) -> f64 {
        if cells > self.threshold_cells {
            self.indexed_base_ms + self.indexed_per_cell_ms * cells
        } else {
            self.base_ms + self.per_cell_ms * cells
        }
    }
}

/// The parallel speed-up model (Formula 7): `a + b·ln s`, clamped ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelismModel {
    /// Intercept `a`.
    pub a: f64,
    /// Log coefficient `b` (negative: big rows parallelize worse).
    pub b: f64,
}

impl ParallelismModel {
    /// The paper's fit: `12.562 − 1.084·ln s`.
    pub fn paper() -> Self {
        ParallelismModel {
            a: 12.562,
            b: -1.084,
        }
    }

    /// Builds from a fitted log-linear regression (the Figure 7 step).
    pub fn from_fit(fit: &LogLinearFit) -> Self {
        ParallelismModel { a: fit.a, b: fit.b }
    }

    /// Max achievable throughput speed-up for rows of `cells` cells.
    pub fn speedup(&self, cells: f64) -> f64 {
        (self.a + self.b * cells.max(1.0).ln()).max(1.0)
    }
}

/// Formulas 6 + 7 + 8 together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbModel {
    /// Single-request latency (Formula 6).
    pub query_time: QueryTimeModel,
    /// Parallel speed-up (Formula 7).
    pub parallelism: ParallelismModel,
}

impl DbModel {
    /// The paper's calibration.
    pub fn paper() -> Self {
        DbModel {
            query_time: QueryTimeModel::paper(),
            parallelism: ParallelismModel::paper(),
        }
    }

    /// Formula 8: amortized per-request time at saturation,
    /// `query_time(s) / parallelism(s)`, ms.
    pub fn db_model_ms(&self, cells: f64) -> f64 {
        self.query_time.query_time_ms(cells) / self.parallelism.speedup(cells)
    }

    /// Per-node throughput ceiling at this row size, requests/second.
    pub fn node_throughput_rps(&self, cells: f64) -> f64 {
        1_000.0 / self.db_model_ms(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_querytime_examples() {
        let m = QueryTimeModel::paper();
        assert!((m.query_time_ms(250.0) - 10.84).abs() < 0.02);
        assert!((m.query_time_ms(10_000.0) - 439.77).abs() < 0.1);
        // Discontinuity at the threshold.
        let below = m.query_time_ms(1_425.0);
        let above = m.query_time_ms(1_426.0);
        assert!(above - below > 6.0);
    }

    #[test]
    fn paper_speedup_examples() {
        let p = ParallelismModel::paper();
        assert!((p.speedup(100.0) - 7.57).abs() < 0.01);
        assert!((p.speedup(10_000.0) - 2.58).abs() < 0.01);
        assert_eq!(p.speedup(1e9), 1.0);
        assert_eq!(p.speedup(0.0), p.speedup(1.0));
    }

    #[test]
    fn db_model_matches_section7_example() {
        // §VII: "the single request takes 11 milliseconds if we are issuing
        // 16 queries in parallel per node" for 250-cell rows — i.e.
        // DB_model(250) ≈ 10.84 / 6.58 ≈ 1.65 ms amortized.
        let m = DbModel::paper();
        assert!(
            (m.db_model_ms(250.0) - 1.65).abs() < 0.03,
            "{}",
            m.db_model_ms(250.0)
        );
        // 4 000 such rows ⇒ ≈ 6.6 s on one node — the paper rounds to 8 s.
        let one_node_s = 4_000.0 * m.db_model_ms(250.0) / 1_000.0;
        assert!((6.0..9.0).contains(&one_node_s), "{one_node_s}");
    }

    #[test]
    fn db_model_has_sweet_spot_in_cells() {
        // Per *element* cost db_model(s)/s should fall with amortization and
        // then the speed-up decay takes over — the reason the optimizer
        // lands near ~3 300-cell partitions (§VII).
        let m = DbModel::paper();
        let per_element = |s: f64| m.db_model_ms(s) / s;
        // Analytic optimum of Formulas 6+7 is ≈165 cells/row; both much
        // smaller and much larger rows cost more per element.
        assert!(per_element(50.0) > per_element(165.0));
        assert!(per_element(2_000.0) > per_element(165.0));
        assert!(per_element(9_000.0) > per_element(165.0));
    }

    #[test]
    fn from_fit_roundtrips_paper_constants() {
        use crate::regression::{fit_loglinear, fit_piecewise};
        let xs: Vec<f64> = (1..=200).map(|i| i as f64 * 50.0).collect();
        let qt: Vec<f64> = xs
            .iter()
            .map(|&s| QueryTimeModel::paper().query_time_ms(s))
            .collect();
        let q = QueryTimeModel::from_fit(&fit_piecewise(&xs, &qt).unwrap());
        assert!((q.per_cell_ms - 0.0387).abs() < 0.001);
        let sp: Vec<f64> = xs
            .iter()
            .map(|&s| ParallelismModel::paper().speedup(s))
            .collect();
        let p = ParallelismModel::from_fit(&fit_loglinear(&xs, &sp).unwrap());
        assert!((p.b + 1.084).abs() < 0.01);
        assert!((p.a - 12.562).abs() < 0.05);
    }

    #[test]
    fn throughput_is_inverse_of_db_model() {
        let m = DbModel::paper();
        let rps = m.node_throughput_rps(250.0);
        assert!((rps * m.db_model_ms(250.0) - 1_000.0).abs() < 1e-6);
    }
}
