//! Single-master scalability limits (§VII and Figure 11).
//!
//! Two analyses from the paper:
//!
//! 1. **Replica-selection master** — to keep `n` nodes busy at parallelism
//!    `k` with requests of duration `d`, the master must issue `n·k`
//!    requests every `d`; at `t_msg` per message that stops being possible
//!    once `n·k·t_msg ≥ d`. The paper's arithmetic (512 messages × 19 µs ≈
//!    9.7 ms against 11 ms requests) concludes the master saturates
//!    "with more than 32 nodes".
//! 2. **Random distribution (Figure 11)** — the master fires all requests
//!    up front; the cluster stops scaling where `master_speed` crosses
//!    `slave_slowest`. "with more than 70 servers, the master requires more
//!    time to send the requests than the time the database would need to
//!    serve them".

use crate::optimizer::optimize_partitions;
use crate::system::SystemModel;

/// The largest cluster a replica-selection master can keep busy:
/// `n_max = d / (k · t_msg)` with request duration `d` (ms), per-node
/// parallelism `k`, and per-message cost `t_msg` (µs).
pub fn replica_selection_node_limit(
    request_ms: f64,
    per_node_parallelism: u64,
    t_msg_us: f64,
) -> u64 {
    assert!(request_ms > 0.0 && t_msg_us > 0.0 && per_node_parallelism > 0);
    ((request_ms * 1_000.0) / (per_node_parallelism as f64 * t_msg_us)).floor() as u64
}

/// One point of the Figure 11 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterLimitPoint {
    /// Cluster size.
    pub nodes: u64,
    /// Partitions the optimizer chose for this size.
    pub partitions: u64,
    /// Master issue time at that choice, ms.
    pub master_ms: f64,
    /// Slowest-slave time at that choice, ms.
    pub slave_ms: f64,
    /// The resulting query time (Formula 2).
    pub total_ms: f64,
}

impl MasterLimitPoint {
    /// True when the master is a binding constraint. Once the optimizer
    /// starts *balancing* master against slaves (it will shrink the
    /// partition count until the two terms meet), the master is limiting
    /// the design even when floating-point puts it a hair below — hence
    /// the small tolerance.
    pub fn master_bound(&self) -> bool {
        self.master_ms >= self.slave_ms * 0.995
    }
}

/// Sweeps cluster sizes, letting the optimizer choose the partition count
/// at each size, and reports where the master overtakes the database.
pub fn master_limit_sweep(
    model: &SystemModel,
    total_elements: f64,
    node_counts: &[u64],
) -> Vec<MasterLimitPoint> {
    node_counts
        .iter()
        .map(|&nodes| {
            let opt = optimize_partitions(model, total_elements, nodes);
            MasterLimitPoint {
                nodes,
                partitions: opt.partitions,
                master_ms: opt.prediction.master_ms,
                slave_ms: opt.prediction.slave_ms,
                total_ms: opt.total_ms(),
            }
        })
        .collect()
}

/// The smallest cluster size in the sweep where the master becomes the
/// binding constraint (`None` if it never does).
pub fn master_crossover(points: &[MasterLimitPoint]) -> Option<u64> {
    points.iter().find(|p| p.master_bound()).map(|p| p.nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_replica_selection_arithmetic() {
        // §VII: 11 ms requests, 16-way parallelism per node, 19 µs/message
        // → the master can feed ~36 nodes; the paper concludes "with more
        // than 32 nodes the master will start to be the major performance
        // bottleneck".
        let limit = replica_selection_node_limit(11.0, 16, 19.0);
        assert!(
            (30..=40).contains(&limit),
            "limit {limit} outside the paper's ballpark"
        );
        // The slow master would cap out under 5 nodes — the reason §V-B's
        // optimization mattered.
        assert!(replica_selection_node_limit(11.0, 16, 150.0) < 5);
    }

    #[test]
    fn figure11_master_overtakes_the_database() {
        let m = SystemModel::paper_optimized();
        let nodes: Vec<u64> = (1..=10).map(|i| i * 16).collect(); // 16..160
        let points = master_limit_sweep(&m, 1_000_000.0, &nodes);
        let crossover = master_crossover(&points).expect("master never saturated");
        // The paper places the crossover around ~70 servers; the published
        // formula constants put it in the same few-dozen-to-∼150 regime.
        assert!(
            (32..=160).contains(&crossover),
            "crossover at {crossover} nodes"
        );
        // Before the crossover the DB dominates; master time grows with the
        // optimizer's partition count.
        let first = &points[0];
        assert!(!first.master_bound(), "master-bound already at 16 nodes");
    }

    #[test]
    fn total_time_stops_improving_once_master_bound() {
        let m = SystemModel::paper_optimized();
        let nodes: Vec<u64> = vec![16, 32, 64, 128, 256, 512];
        let points = master_limit_sweep(&m, 1_000_000.0, &nodes);
        // A crossover must exist in this range…
        let cross = master_crossover(&points).expect("master never saturated by 512 nodes");
        assert!(cross > 16, "master-bound already at 16 nodes");
        // …and end-to-end scaling efficiency collapses well below ideal:
        // 16 → 512 nodes is a 32× ideal speed-up; with the master in the
        // way the model must deliver much less (the optimizer can still
        // trade partition count for slow sub-linear gains).
        let first = &points[0];
        let last = points.last().expect("non-empty sweep");
        let actual = first.total_ms / last.total_ms;
        let ideal = last.nodes as f64 / first.nodes as f64;
        assert!(
            actual < ideal * 0.6,
            "scaling stayed near-ideal past saturation: {actual:.1}× of {ideal:.1}×"
        );
    }

    #[test]
    fn sweep_is_monotone_before_saturation() {
        let m = SystemModel::paper_optimized();
        let points = master_limit_sweep(&m, 1_000_000.0, &[1, 2, 4, 8, 16]);
        for w in points.windows(2) {
            assert!(
                w[1].total_ms < w[0].total_ms,
                "no improvement {} → {} nodes",
                w[0].nodes,
                w[1].nodes
            );
        }
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn degenerate_inputs_rejected() {
        let _ = replica_selection_node_limit(0.0, 16, 19.0);
    }
}
