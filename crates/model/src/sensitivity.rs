//! Hardware sensitivity analysis — the paper's closing claim, implemented.
//!
//! §IX: "we believe it can be employed when deciding which kind of hardware
//! and technologies to use when creating a new cluster, as it is possible
//! to use the formula to predict which hardware characteristics will
//! influence performance the most."
//!
//! [`sensitivities`] computes the *elasticity* of the predicted query time
//! with respect to each model parameter: `(dT/T) / (dp/p)` — "making the
//! network serializer 10 % faster buys elasticity×10 % query time". A
//! parameter with elasticity ≈ 0 is not worth spending money on for this
//! workload; the biggest elasticity names the component to upgrade.

use crate::system::SystemModel;

/// A tunable hardware/software characteristic of the modelled system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parameter {
    /// Master per-message send cost (serializer + dispatch CPU).
    MasterTxPerMessage,
    /// Master per-message receive cost.
    MasterRxPerMessage,
    /// Database fixed per-request cost (Formula 6 intercepts).
    DbBaseCost,
    /// Database per-cell cost (Formula 6 slopes — storage/CPU bandwidth).
    DbPerCellCost,
    /// Database parallel efficiency (Formula 7 intercept — more cores /
    /// better concurrency handling).
    DbParallelism,
}

impl Parameter {
    /// All parameters, in report order.
    pub const ALL: [Parameter; 5] = [
        Parameter::MasterTxPerMessage,
        Parameter::MasterRxPerMessage,
        Parameter::DbBaseCost,
        Parameter::DbPerCellCost,
        Parameter::DbParallelism,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Parameter::MasterTxPerMessage => "master tx µs/msg",
            Parameter::MasterRxPerMessage => "master rx µs/msg",
            Parameter::DbBaseCost => "DB per-request cost",
            Parameter::DbPerCellCost => "DB per-cell cost",
            Parameter::DbParallelism => "DB parallel efficiency",
        }
    }
}

/// One sensitivity row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// The parameter varied.
    pub parameter: Parameter,
    /// Elasticity of total query time w.r.t. the parameter:
    /// `(ΔT/T)/(Δp/p)` for a small perturbation. Positive: increasing the
    /// cost increases the time; ≈ 0: this workload does not care.
    pub elasticity: f64,
}

/// Returns a copy of `model` with `parameter` scaled by `factor`.
pub fn scaled(model: &SystemModel, parameter: Parameter, factor: f64) -> SystemModel {
    let mut m = *model;
    match parameter {
        Parameter::MasterTxPerMessage => m.master.tx_us_per_msg *= factor,
        Parameter::MasterRxPerMessage => m.master.rx_us_per_msg *= factor,
        Parameter::DbBaseCost => {
            m.db.query_time.base_ms *= factor;
            m.db.query_time.indexed_base_ms *= factor;
        }
        Parameter::DbPerCellCost => {
            m.db.query_time.per_cell_ms *= factor;
            m.db.query_time.indexed_per_cell_ms *= factor;
        }
        Parameter::DbParallelism => {
            // Better parallel efficiency = higher speed-up intercept. The
            // *time* falls as this rises, so the elasticity sign flips
            // relative to cost parameters; we scale the intercept down for
            // a "worse hardware" perturbation like the others.
            m.db.parallelism.a *= factor;
        }
    }
    m
}

/// Computes the elasticity of the predicted time for a query of `keys`
/// partitions × `cells_per_key` cells on `nodes` nodes, for every
/// parameter (central differences with a 1 % perturbation).
pub fn sensitivities(
    model: &SystemModel,
    keys: f64,
    cells_per_key: f64,
    nodes: u64,
) -> Vec<Sensitivity> {
    let base = model.predict(keys, cells_per_key, nodes).total_ms();
    assert!(base > 0.0, "degenerate workload");
    let eps = 0.01;
    Parameter::ALL
        .iter()
        .map(|&parameter| {
            let up = scaled(model, parameter, 1.0 + eps)
                .predict(keys, cells_per_key, nodes)
                .total_ms();
            let down = scaled(model, parameter, 1.0 - eps)
                .predict(keys, cells_per_key, nodes)
                .total_ms();
            let elasticity = (up - down) / (2.0 * eps * base);
            Sensitivity {
                parameter,
                elasticity,
            }
        })
        .collect()
}

/// The single parameter with the largest absolute elasticity — "what to
/// upgrade first".
pub fn dominant_parameter(
    model: &SystemModel,
    keys: f64,
    cells_per_key: f64,
    nodes: u64,
) -> Parameter {
    sensitivities(model, keys, cells_per_key, nodes)
        .into_iter()
        .max_by(|a, b| {
            a.elasticity
                .abs()
                .partial_cmp(&b.elasticity.abs())
                .expect("finite elasticities")
        })
        .expect("non-empty parameter set")
        .parameter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_bound_workload_is_sensitive_to_tx_cost() {
        // Fine-grained on a slow master: only the tx cost matters.
        let m = SystemModel::paper_slow();
        let dom = dominant_parameter(&m, 10_000.0, 100.0, 16);
        assert_eq!(dom, Parameter::MasterTxPerMessage);
        let s = sensitivities(&m, 10_000.0, 100.0, 16);
        let tx = s
            .iter()
            .find(|s| s.parameter == Parameter::MasterTxPerMessage)
            .unwrap();
        // Fully master-bound ⇒ elasticity ≈ 1 (time ∝ t_msg).
        assert!((tx.elasticity - 1.0).abs() < 0.05, "{}", tx.elasticity);
        // And the DB parameters are ≈ 0.
        let cell = s
            .iter()
            .find(|s| s.parameter == Parameter::DbPerCellCost)
            .unwrap();
        assert!(cell.elasticity.abs() < 0.05, "{}", cell.elasticity);
    }

    #[test]
    fn db_bound_workload_is_sensitive_to_db_parameters_only() {
        // Coarse rows on the optimized master: the master is irrelevant;
        // per-cell cost has elasticity ≈ 1 (time ∝ slope), and parallel
        // efficiency is the *most* leveraged knob of all — at 10 000-cell
        // rows the speed-up `12.562 − 1.084·ln s ≈ 2.58` is a small
        // difference of large terms, so its intercept has elasticity
        // ≈ −a/speedup ≈ −4.9.
        let m = SystemModel::paper_optimized();
        let s = sensitivities(&m, 100.0, 10_000.0, 16);
        let get = |p: Parameter| s.iter().find(|s| s.parameter == p).unwrap().elasticity;
        assert!(get(Parameter::MasterTxPerMessage).abs() < 0.01);
        assert!((get(Parameter::DbPerCellCost) - 1.0).abs() < 0.05);
        let par = get(Parameter::DbParallelism);
        assert!((-6.0..-3.5).contains(&par), "{par}");
        assert_eq!(
            dominant_parameter(&m, 100.0, 10_000.0, 16),
            Parameter::DbParallelism
        );
    }

    #[test]
    fn better_parallelism_reduces_time() {
        let m = SystemModel::paper_optimized();
        let s = sensitivities(&m, 1_000.0, 1_000.0, 8);
        let par = s
            .iter()
            .find(|s| s.parameter == Parameter::DbParallelism)
            .unwrap();
        // Scaling the speed-up intercept *up* reduces time → negative
        // elasticity.
        assert!(par.elasticity < -0.1, "{}", par.elasticity);
    }

    #[test]
    fn small_row_workloads_feel_the_base_cost() {
        // 100-cell rows: the 1.163 ms intercept is ~23 % of each request.
        let m = SystemModel::paper_optimized();
        let s = sensitivities(&m, 10_000.0, 100.0, 4);
        let base = s
            .iter()
            .find(|s| s.parameter == Parameter::DbBaseCost)
            .unwrap();
        let cell = s
            .iter()
            .find(|s| s.parameter == Parameter::DbPerCellCost)
            .unwrap();
        assert!(base.elasticity > 0.1);
        assert!(cell.elasticity > base.elasticity, "{s:?}");
    }

    #[test]
    fn scaled_roundtrips_at_factor_one() {
        let m = SystemModel::paper_optimized();
        for p in Parameter::ALL {
            let same = scaled(&m, p, 1.0);
            assert_eq!(
                same.predict(500.0, 500.0, 4).total_ms(),
                m.predict(500.0, 500.0, 4).total_ms(),
                "{p:?}"
            );
        }
    }
}
