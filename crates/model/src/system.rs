//! Formula 2: the whole-system model.
//!
//! `T = max{ master_speed, slave_slowest, result_fetching }`, with the
//! slowest slave given by the balls-into-bins `key_max` times the amortized
//! database cost (Formulas 4 and 5).

use crate::dbmodel::DbModel;
use crate::gc::GcModel;
use crate::master::MasterModel;
use kvs_balance::formula::keymax;

/// The composed system model.
///
/// ```
/// use kvs_model::SystemModel;
///
/// let model = SystemModel::paper_optimized();
/// // The paper's fine-grained query: 10 000 keys of 100 cells, 16 nodes.
/// let p = model.predict(10_000.0, 100.0, 16);
/// assert_eq!(p.dominant(), "slaves");
/// assert!(p.total_ms() > p.master_ms);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemModel {
    /// Master per-message costs (Formula 3).
    pub master: MasterModel,
    /// Database model (Formulas 6–8).
    pub db: DbModel,
    /// Optional GC correction (the Figure 8 `dbModel+GC` line).
    pub gc: Option<GcModel>,
}

/// One prediction, with the full breakdown the paper's analysis uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Number of keys (partitions) the query touches.
    pub keys: f64,
    /// Cells per key.
    pub cells_per_key: f64,
    /// Cluster size.
    pub nodes: u64,
    /// Formula 5: expected keys on the most loaded node.
    pub keymax: f64,
    /// Formula 3, ms.
    pub master_ms: f64,
    /// Formula 4, ms (includes the GC correction when enabled).
    pub slave_ms: f64,
    /// Result fetching, ms.
    pub fetch_ms: f64,
}

impl Prediction {
    /// Formula 2: the predicted query time.
    pub fn total_ms(&self) -> f64 {
        self.master_ms.max(self.slave_ms).max(self.fetch_ms)
    }

    /// Which term dominates.
    pub fn dominant(&self) -> &'static str {
        if self.master_ms >= self.slave_ms && self.master_ms >= self.fetch_ms {
            "master"
        } else if self.slave_ms >= self.fetch_ms {
            "slaves"
        } else {
            "fetch"
        }
    }

    /// The prediction for the same query with a *perfectly balanced*
    /// workload (keys/n instead of key_max) — the quantity Figure 10's
    /// decomposition needs.
    pub fn balanced_slave_ms(&self) -> f64 {
        if self.keymax == 0.0 {
            0.0
        } else {
            self.slave_ms * (self.keys / self.nodes as f64) / self.keymax
        }
    }
}

impl SystemModel {
    /// The paper's calibrated model with the optimized master and no GC
    /// correction (the Figure 8 `dbModel` line).
    pub fn paper_optimized() -> Self {
        SystemModel {
            master: MasterModel::paper_optimized(),
            db: DbModel::paper(),
            gc: None,
        }
    }

    /// The paper's calibrated model with the slow master.
    pub fn paper_slow() -> Self {
        SystemModel {
            master: MasterModel::paper_slow(),
            db: DbModel::paper(),
            gc: None,
        }
    }

    /// Adds the GC correction (the `dbModel+GC` line).
    pub fn with_gc(mut self) -> Self {
        self.gc = Some(GcModel::paper());
        self
    }

    /// Predicts the time of a query reading `keys` partitions of
    /// `cells_per_key` cells each on a cluster of `nodes`.
    pub fn predict(&self, keys: f64, cells_per_key: f64, nodes: u64) -> Prediction {
        assert!(keys >= 0.0 && cells_per_key >= 0.0, "negative workload");
        assert!(nodes > 0, "need at least one node");
        let km = keymax(keys, nodes);
        let mut per_request_ms = self.db.db_model_ms(cells_per_key);
        if let Some(gc) = &self.gc {
            per_request_ms +=
                gc.extra_ms(cells_per_key, self.db.parallelism.speedup(cells_per_key));
        }
        Prediction {
            keys,
            cells_per_key,
            nodes,
            keymax: km,
            master_ms: self.master.master_speed_ms(keys),
            slave_ms: km * per_request_ms,
            fetch_ms: self.master.result_fetching_ms(keys),
        }
    }

    /// Predicts a query over `total_elements` split into `keys` equal
    /// partitions.
    pub fn predict_for_total(&self, total_elements: f64, keys: f64, nodes: u64) -> Prediction {
        assert!(keys >= 1.0, "need at least one partition");
        self.predict(keys, total_elements / keys, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_has_no_imbalance_term() {
        let m = SystemModel::paper_optimized();
        let p = m.predict(1_000.0, 1_000.0, 1);
        assert_eq!(p.keymax, 1_000.0);
        assert_eq!(p.dominant(), "slaves");
        // 1 000 × db_model(1 000) = 1 000 × (39.86/5.07) ≈ 7.9 s.
        assert!((p.total_ms() - 7_866.0).abs() < 100.0, "{}", p.total_ms());
    }

    #[test]
    fn slow_master_dominates_fine_grained() {
        let m = SystemModel::paper_slow();
        // The paper's fine-grained: 10 000 keys of 100 cells, 16 nodes.
        let p = m.predict(10_000.0, 100.0, 16);
        assert_eq!(p.dominant(), "master");
        assert!((p.master_ms - 1_500.0).abs() < 1e-9);
        assert!(p.slave_ms < p.master_ms);
    }

    #[test]
    fn optimized_master_returns_fine_to_slaves() {
        let m = SystemModel::paper_optimized();
        let p = m.predict(10_000.0, 100.0, 16);
        assert_eq!(p.dominant(), "slaves");
        assert!((p.master_ms - 190.0).abs() < 1e-9);
    }

    #[test]
    fn more_nodes_reduce_slave_time_sublinearly() {
        let m = SystemModel::paper_optimized();
        let t1 = m.predict(1_000.0, 1_000.0, 1).slave_ms;
        let t16 = m.predict(1_000.0, 1_000.0, 16).slave_ms;
        let speedup = t1 / t16;
        assert!(speedup > 8.0, "speed-up {speedup}");
        assert!(speedup < 16.0, "imbalance must cost something: {speedup}");
    }

    #[test]
    fn gc_correction_targets_coarse_only() {
        let plain = SystemModel::paper_optimized();
        let gc = SystemModel::paper_optimized().with_gc();
        // Fine-grained barely moves.
        let f_plain = plain.predict(10_000.0, 100.0, 16).slave_ms;
        let f_gc = gc.predict(10_000.0, 100.0, 16).slave_ms;
        assert!((f_gc - f_plain) / f_plain < 0.01);
        // Coarse-grained visibly corrected upward.
        let c_plain = plain.predict(100.0, 10_000.0, 16).slave_ms;
        let c_gc = gc.predict(100.0, 10_000.0, 16).slave_ms;
        assert!((c_gc - c_plain) / c_plain > 0.05, "{c_plain} → {c_gc}");
    }

    #[test]
    fn balanced_slave_removes_the_imbalance_share() {
        let m = SystemModel::paper_optimized();
        let p = m.predict(100.0, 10_000.0, 16);
        let balanced = p.balanced_slave_ms();
        assert!(balanced < p.slave_ms);
        // Ratio equals (keys/n)/keymax.
        let expect = (100.0 / 16.0) / p.keymax;
        assert!((balanced / p.slave_ms - expect).abs() < 1e-12);
    }

    #[test]
    fn predict_for_total_divides_evenly() {
        let m = SystemModel::paper_optimized();
        let p = m.predict_for_total(1_000_000.0, 4_000.0, 8);
        assert!((p.cells_per_key - 250.0).abs() < 1e-9);
    }

    #[test]
    fn fetch_can_dominate_with_absurd_rx_cost() {
        let mut m = SystemModel::paper_optimized();
        m.master.rx_us_per_msg = 10_000.0;
        let p = m.predict(10_000.0, 1.0, 16);
        assert_eq!(p.dominant(), "fetch");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = SystemModel::paper_optimized().predict(10.0, 10.0, 0);
    }
}
