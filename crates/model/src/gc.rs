//! The garbage-collector correction of Figure 8.
//!
//! The base model under-predicted the coarse-grained workload because the
//! JVM's collector taxes requests that materialize many cells: "The only
//! correction we had to carry out was for policy coarse-grain to compensate
//! the overhead caused by the Java Garbage Collector … Figure 8 also shows
//! the line dbModel+GC, which adds the GC time into the model, notably
//! increasing the model accuracy."
//!
//! The correction mirrors the simulator's GC mechanism: allocation grows
//! with the cells a read materializes, collections are amortized over
//! concurrent requests, so the per-request surcharge is quadratic in row
//! size and divided by the parallelism that shares each pause.

/// GC surcharge model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcModel {
    /// Extra milliseconds per request per (kilocell)² materialized.
    pub quadratic_ms_per_kcell_sq: f64,
    /// The concurrency a pause is amortized over (the node's effective
    /// parallel speed-up at that row size is a good estimate; we use the
    /// paper's Formula 7 value supplied by the caller).
    pub amortize_over_speedup: bool,
}

impl GcModel {
    /// The calibration matching the workspace simulator's GC defaults.
    pub fn paper() -> Self {
        GcModel {
            quadratic_ms_per_kcell_sq: 0.6,
            amortize_over_speedup: true,
        }
    }

    /// Extra amortized per-request time for rows of `cells` cells when the
    /// node runs at `speedup` effective parallelism, ms.
    pub fn extra_ms(&self, cells: f64, speedup: f64) -> f64 {
        let kcells = cells / 1_000.0;
        let raw = self.quadratic_ms_per_kcell_sq * kcells * kcells;
        if self.amortize_over_speedup {
            raw / speedup.max(1.0)
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_in_cells() {
        let g = GcModel::paper();
        let a = g.extra_ms(1_000.0, 1.0);
        let b = g.extra_ms(10_000.0, 1.0);
        assert!((b / a - 100.0).abs() < 1e-9);
    }

    #[test]
    fn negligible_for_fine_significant_for_coarse() {
        let g = GcModel::paper();
        // Fine-grained rows (100 cells): essentially free.
        assert!(g.extra_ms(100.0, 7.5) < 0.01);
        // Coarse rows (10 000 cells) at speed-up ~2.6: tens of ms — the
        // visible Figure 8 correction.
        let coarse = g.extra_ms(10_000.0, 2.58);
        assert!((10.0..60.0).contains(&coarse), "{coarse}");
    }

    #[test]
    fn amortization_can_be_disabled() {
        let mut g = GcModel::paper();
        g.amortize_over_speedup = false;
        assert!(g.extra_ms(10_000.0, 2.58) > GcModel::paper().extra_ms(10_000.0, 2.58));
        // Speed-up below 1 clamps.
        assert_eq!(
            GcModel::paper().extra_ms(1_000.0, 0.5),
            GcModel::paper().extra_ms(1_000.0, 1.0)
        );
    }
}
