//! Property tests for the analytical model: the regression machinery and
//! the Formula 2 composition.

use kvs_model::regression::{fit_linear, fit_loglinear, fit_piecewise};
use kvs_model::{optimize_partitions, SystemModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// OLS recovers an arbitrary noiseless line exactly.
    #[test]
    fn linear_fit_is_exact_on_lines(intercept in -1e3f64..1e3, slope in -1e2f64..1e2,
                                    n in 3usize..80) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| intercept + slope * x).collect();
        let f = fit_linear(&xs, &ys).expect("fit");
        prop_assert!((f.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
    }

    /// The log-linear fitter recovers arbitrary noiseless log curves.
    #[test]
    fn loglinear_fit_is_exact(a in -50.0f64..50.0, b in -10.0f64..10.0) {
        let xs: Vec<f64> = (1..=60).map(|i| i as f64 * 37.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a + b * x.ln()).collect();
        let f = fit_loglinear(&xs, &ys).expect("fit");
        prop_assert!((f.a - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((f.b - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// The piecewise fitter recovers an arbitrary noiseless two-segment
    /// function: breakpoint within one sample step, segments near-exact.
    #[test]
    fn piecewise_fit_recovers_segments(
        bp_idx in 5usize..55,
        i1 in -100.0f64..100.0, s1 in 0.01f64..5.0,
        jump in 1.0f64..50.0, s2 in 0.01f64..5.0,
    ) {
        let n = 60usize;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 100.0).collect();
        let bp = xs[bp_idx] + 50.0;
        let i2 = i1 + s1 * bp + jump - s2 * bp; // continuity + upward jump at bp
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x <= bp { i1 + s1 * x } else { i2 + s2 * x })
            .collect();
        let f = fit_piecewise(&xs, &ys).expect("fit");
        prop_assert!((f.breakpoint - bp).abs() <= 150.0,
            "breakpoint {} vs true {}", f.breakpoint, bp);
        prop_assert!((f.below.slope - s1).abs() < 0.05 * (1.0 + s1));
        prop_assert!((f.above.slope - s2).abs() < 0.05 * (1.0 + s2));
    }

    /// Formula 2 is a max: the total equals one of its components and is
    /// ≥ all of them.
    #[test]
    fn prediction_is_a_max(keys in 1.0f64..100_000.0, cells in 1.0f64..20_000.0,
                           nodes in 1u64..128) {
        let m = SystemModel::paper_optimized();
        let p = m.predict(keys, cells, nodes);
        let total = p.total_ms();
        prop_assert!(total >= p.master_ms - 1e-9);
        prop_assert!(total >= p.slave_ms - 1e-9);
        prop_assert!(total >= p.fetch_ms - 1e-9);
        let is_component = (total - p.master_ms).abs() < 1e-9
            || (total - p.slave_ms).abs() < 1e-9
            || (total - p.fetch_ms).abs() < 1e-9;
        prop_assert!(is_component);
        // The balanced slave bound never exceeds the real one.
        prop_assert!(p.balanced_slave_ms() <= p.slave_ms + 1e-9);
    }

    /// More nodes never make the model's prediction worse (for fixed keys
    /// and cells, only the slave term changes, and key_max/n falls).
    #[test]
    fn more_nodes_never_hurt(keys in 10.0f64..50_000.0, cells in 1.0f64..10_000.0,
                             nodes in 1u64..64) {
        let m = SystemModel::paper_optimized();
        let t1 = m.predict(keys, cells, nodes).total_ms();
        let t2 = m.predict(keys, cells, nodes * 2).total_ms();
        prop_assert!(t2 <= t1 + 1e-6, "{t2} > {t1}");
    }

    /// The optimizer's answer is never beaten by random probes.
    #[test]
    fn optimizer_dominates_random_probes(total in 1_000.0f64..2_000_000.0,
                                         nodes in 1u64..64,
                                         probes in proptest::collection::vec(1u64..100_000, 5)) {
        let m = SystemModel::paper_optimized();
        let opt = optimize_partitions(&m, total, nodes);
        for p in probes {
            let parts = (p % (total as u64)).max(1);
            let t = m.predict_for_total(total, parts as f64, nodes).total_ms();
            // The log-grid search is allowed a hair of slack on the very
            // flat objective (refinement windows are ±5 %).
            prop_assert!(opt.total_ms() <= t * 1.0005 + 1e-6,
                "probe {parts} ({t}) beat the optimizer ({})", opt.total_ms());
        }
    }

    /// GC correction is additive and monotone in row size.
    #[test]
    fn gc_correction_monotone(keys in 10.0f64..10_000.0, nodes in 1u64..32,
                              cells in 10.0f64..20_000.0) {
        let plain = SystemModel::paper_optimized();
        let gc = plain.with_gc_copy();
        let a = plain.predict(keys, cells, nodes);
        let b = gc.predict(keys, cells, nodes);
        prop_assert!(b.slave_ms >= a.slave_ms - 1e-9);
        let bigger = gc.predict(keys, cells * 2.0, nodes);
        prop_assert!(bigger.slave_ms / gc.predict(keys, cells * 2.0, nodes).slave_ms <= 1.0 + 1e-12);
    }
}
