//! The chaos harness end to end: every fault class through [`ChaosProxy`],
//! replica failover in [`NetMaster`], and the acceptance cross-validation
//! against `cluster::sim`'s `NodeFailure` replay.
//!
//! Everything here runs with fixed seeds and bounded schedules, so the
//! suite is deterministic: the same faults hit the same frames on every
//! run.

use kvs_cluster::config::NodeFailure;
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::sim::run_query;
use kvs_cluster::{ClusterConfig, ClusterData, ReplicaPolicy};
use kvs_net::{
    spawn_local_cluster, wrap_cluster, ChaosDirection, ChaosRule, ChaosSchedule, FaultAction,
    NetConfig, NetMaster, NetServerConfig,
};
use kvs_simcore::SimDuration;
use kvs_store::TableOptions;
use std::time::Duration;

fn data(nodes: u32, rf: usize, partitions: u64, cells: u64) -> ClusterData {
    ClusterData::load(
        nodes,
        rf,
        TableOptions::default(),
        uniform_partitions(partitions, cells, 4),
    )
}

/// A master config tuned for fault tests: short timeouts so detection is
/// fast, few retries so failover happens within a test-sized budget.
fn fast_cfg() -> NetConfig {
    NetConfig {
        timeout: Duration::from_millis(100),
        max_retries: 1,
        ..NetConfig::default()
    }
}

#[test]
fn passthrough_proxy_is_transparent() {
    let (cluster, routes) =
        spawn_local_cluster(data(2, 1, 32, 8), NetServerConfig::default()).expect("cluster boots");
    let schedules = vec![ChaosSchedule::passthrough(7), ChaosSchedule::passthrough(8)];
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, NetConfig::default()).expect("master connects");
    let report = master.run_query(&routes).expect("query succeeds");
    assert_eq!(report.result.total_cells, 32 * 8);
    assert_eq!(report.failovers, 0);
    assert_eq!(report.timeout_retries, 0);
    assert!(report.suspected_dead.is_empty());
    master.shutdown();
    let mut frames = 0;
    for p in proxies {
        let s = p.shutdown();
        assert_eq!(s.seq_regressions, 0, "sequence audit failed: {s:?}");
        assert_eq!(s.frames_seen, s.forwarded, "passthrough modified frames");
        frames += s.frames_seen;
    }
    // 32 requests + 32 responses crossed the two proxies.
    assert_eq!(frames, 64);
    cluster.shutdown();
}

#[test]
fn delayed_frames_arrive_late_but_intact() {
    let (cluster, routes) =
        spawn_local_cluster(data(1, 1, 8, 8), NetServerConfig::default()).expect("cluster boots");
    let schedule = ChaosSchedule {
        seed: 11,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::Delay(Duration::from_millis(15)),
            probability: 1.0,
            after_frame: 0,
            until_frame: Some(4),
        }],
        blackhole_from: None,
    };
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), vec![schedule]).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, NetConfig::default()).expect("master connects");
    let report = master.run_query(&routes).expect("query succeeds");
    assert_eq!(report.result.total_cells, 8 * 8);
    // Four responses were held 15 ms each (sequentially, in-order TCP):
    // the makespan must show it.
    assert!(
        report.result.makespan >= SimDuration::from_millis(15),
        "delays left no trace: {}",
        report.result.makespan
    );
    assert_eq!(report.failovers, 0);
    master.shutdown();
    let stats = proxies.into_iter().next().expect("one proxy").shutdown();
    assert_eq!(stats.delayed, 4);
    assert_eq!(stats.seq_regressions, 0);
    cluster.shutdown();
}

#[test]
fn dropped_requests_are_recovered_by_timeout_retry() {
    let (cluster, routes) =
        spawn_local_cluster(data(1, 1, 8, 8), NetServerConfig::default()).expect("cluster boots");
    let schedule = ChaosSchedule {
        seed: 3,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToSlave,
            action: FaultAction::Drop,
            probability: 1.0,
            after_frame: 0,
            until_frame: Some(2),
        }],
        blackhole_from: None,
    };
    assert!(schedule.eventually_quiet());
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), vec![schedule]).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, fast_cfg()).expect("master connects");
    let report = master.run_query(&routes).expect("query succeeds");
    assert_eq!(report.result.total_cells, 8 * 8);
    assert_eq!(report.timeout_retries, 2, "one retry per dropped request");
    assert_eq!(report.failovers, 0, "a healthy node needs no failover");
    assert!(
        report.retry_wait_ms >= 100.0,
        "retry cost unaccounted: {} ms",
        report.retry_wait_ms
    );
    master.shutdown();
    let stats = proxies.into_iter().next().expect("one proxy").shutdown();
    assert_eq!(stats.dropped, 2);
    cluster.shutdown();
}

#[test]
fn duplicated_responses_are_counted_once() {
    let (cluster, routes) =
        spawn_local_cluster(data(1, 1, 16, 8), NetServerConfig::default()).expect("cluster boots");
    let schedule = ChaosSchedule {
        seed: 5,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::Duplicate,
            probability: 1.0,
            after_frame: 0,
            until_frame: Some(16),
        }],
        blackhole_from: None,
    };
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), vec![schedule]).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, NetConfig::default()).expect("master connects");
    let report = master.run_query(&routes).expect("query succeeds");
    // Every response arrived twice; the aggregation must not double-count.
    assert_eq!(report.result.total_cells, 16 * 8);
    assert_eq!(report.result.messages, 16);
    master.shutdown();
    let stats = proxies.into_iter().next().expect("one proxy").shutdown();
    assert_eq!(stats.duplicated, 16);
    cluster.shutdown();
}

#[test]
fn corrupt_crc_drops_the_connection_and_fails_over() {
    // Node 0's proxy corrupts every response; with rf = 2 over 2 nodes the
    // master must detect the CRC failure, cut the connection, suspect the
    // node, and re-route its keys to node 1 — with zero wrong answers.
    let (cluster, routes) =
        spawn_local_cluster(data(2, 2, 24, 8), NetServerConfig::default()).expect("cluster boots");
    let corrupting = ChaosSchedule {
        seed: 13,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::CorruptCrc,
            probability: 1.0,
            after_frame: 0,
            until_frame: None,
        }],
        blackhole_from: None,
    };
    let schedules = vec![corrupting, ChaosSchedule::passthrough(14)];
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, fast_cfg()).expect("master connects");
    let report = master
        .run_query(&routes)
        .expect("query survives corruption");
    assert_eq!(report.result.total_cells, 24 * 8, "wrong aggregation");
    assert!(
        report.failovers > 0,
        "no failover despite a corrupt replica"
    );
    assert_eq!(report.crc_disconnects, 1, "CRC teardown not recorded");
    assert_eq!(report.suspected_dead, vec![0]);
    master.shutdown();
    let stats: Vec<_> = proxies.into_iter().map(|p| p.shutdown()).collect();
    assert!(stats[0].corrupted >= 1);
    assert_eq!(stats[1].corrupted, 0);
    cluster.shutdown();
}

#[test]
fn disconnect_fault_triggers_immediate_failover() {
    // Node 0's proxy kills the connection on the very first response;
    // everything still in flight on node 0 must fail over to node 1
    // without waiting out the timeout.
    let (cluster, routes) =
        spawn_local_cluster(data(2, 2, 24, 8), NetServerConfig::default()).expect("cluster boots");
    let disconnecting = ChaosSchedule {
        seed: 21,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::Disconnect,
            probability: 1.0,
            after_frame: 0,
            until_frame: Some(1),
        }],
        blackhole_from: None,
    };
    let schedules = vec![disconnecting, ChaosSchedule::passthrough(22)];
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, fast_cfg()).expect("master connects");
    let report = master
        .run_query(&routes)
        .expect("query survives disconnect");
    assert_eq!(report.result.total_cells, 24 * 8);
    assert!(report.failovers > 0);
    assert_eq!(report.suspected_dead, vec![0]);
    // The disconnect was detected by EOF, not by deadline expiry, so the
    // whole run finishes well inside one timeout.
    assert!(
        report.result.makespan < SimDuration::from_millis(100),
        "failover waited for the timeout: {}",
        report.result.makespan
    );
    master.shutdown();
    let stats: Vec<_> = proxies.into_iter().map(|p| p.shutdown()).collect();
    assert_eq!(stats[0].disconnects, 1);
    cluster.shutdown();
}

#[test]
fn truncated_frame_cuts_the_stream_mid_frame_and_recovers() {
    let (cluster, routes) =
        spawn_local_cluster(data(2, 2, 24, 8), NetServerConfig::default()).expect("cluster boots");
    let truncating = ChaosSchedule {
        seed: 31,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::Truncate(20),
            probability: 1.0,
            after_frame: 0,
            until_frame: Some(1),
        }],
        blackhole_from: None,
    };
    let schedules = vec![truncating, ChaosSchedule::passthrough(32)];
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, fast_cfg()).expect("master connects");
    let report = master
        .run_query(&routes)
        .expect("query survives truncation");
    assert_eq!(report.result.total_cells, 24 * 8);
    assert!(report.failovers > 0);
    master.shutdown();
    let stats: Vec<_> = proxies.into_iter().map(|p| p.shutdown()).collect();
    assert_eq!(stats[0].truncated, 1);
    cluster.shutdown();
}

#[test]
fn schedule_parser_reads_the_documented_format() {
    let text = r#"
# a mild degradation scenario
seed = 99
blackhole_from_ms = 750

[[rule]]
direction = "to_master"
action = "delay"
delay_ms = 5
probability = 0.25
until_frame = 200

[[rule]]
action = "drop"
probability = 0.01
after_frame = 10
until_frame = 50

[[rule]]
direction = "to_slave"
action = "truncate"
truncate_bytes = 12
"#;
    let s = ChaosSchedule::parse(text).expect("parses");
    assert_eq!(s.seed, 99);
    assert_eq!(s.blackhole_from, Some(Duration::from_millis(750)));
    assert_eq!(s.rules.len(), 3);
    assert_eq!(
        s.rules[0].action,
        FaultAction::Delay(Duration::from_millis(5))
    );
    assert_eq!(s.rules[0].direction, ChaosDirection::ToMaster);
    assert_eq!(s.rules[0].probability, 0.25);
    assert_eq!(s.rules[0].until_frame, Some(200));
    assert_eq!(s.rules[1].action, FaultAction::Drop);
    assert_eq!(s.rules[1].direction, ChaosDirection::Both);
    assert_eq!(s.rules[1].after_frame, 10);
    assert_eq!(s.rules[2].action, FaultAction::Truncate(12));
    assert!(!s.eventually_quiet(), "blackhole is never quiet");

    assert!(ChaosSchedule::parse("bogus = 1").is_err());
    assert!(ChaosSchedule::parse("[[rule]]\naction = \"warp\"").is_err());
    assert!(ChaosSchedule::parse("[[rule]]\naction = \"delay\"").is_err());
    let quiet = ChaosSchedule::parse("seed = 1\n[[rule]]\naction = \"drop\"\nuntil_frame = 4")
        .expect("parses");
    assert!(quiet.eventually_quiet());
}

/// Every malformed schedule is refused with a descriptive error, not
/// silently reinterpreted — a chaos run that injects different faults
/// than its schedule file reads is worse than no chaos run at all.
#[test]
fn schedule_parser_rejects_malformed_input() {
    let err = |text: &str| ChaosSchedule::parse(text).expect_err(text);

    // Probability outside [0, 1] or non-finite.
    assert!(err("[[rule]]\naction = \"drop\"\nprobability = 1.5").contains("outside [0, 1]"));
    assert!(err("[[rule]]\naction = \"drop\"\nprobability = -0.1").contains("outside [0, 1]"));
    assert!(err("[[rule]]\naction = \"drop\"\nprobability = NaN").contains("outside [0, 1]"));
    assert!(err("[[rule]]\naction = \"drop\"\nprobability = inf").contains("outside [0, 1]"));

    // Parameters on the wrong action.
    assert!(err("[[rule]]\naction = \"drop\"\ndelay_ms = 5").contains("delay_ms"));
    assert!(
        err("[[rule]]\naction = \"delay\"\ndelay_ms = 5\ntruncate_bytes = 3")
            .contains("truncate_bytes")
    );

    // Duplicate keys, top-level and per-rule.
    assert!(err("seed = 1\nseed = 2").contains("duplicate"));
    assert!(err("blackhole_from_ms = 1\nblackhole_from_ms = 2").contains("duplicate"));
    assert!(err("[[rule]]\naction = \"drop\"\naction = \"drop\"").contains("duplicate"));
    assert!(err("[[rule]]\naction = \"delay\"\ndelay_ms = 1\ndelay_ms = 2").contains("duplicate"));
    assert!(
        err("[[rule]]\naction = \"drop\"\nprobability = 0.5\nprobability = 0.5")
            .contains("duplicate")
    );

    // Empty fault windows.
    assert!(
        err("[[rule]]\naction = \"drop\"\nafter_frame = 10\nuntil_frame = 10")
            .contains("empty window")
    );
    assert!(
        err("[[rule]]\naction = \"drop\"\nafter_frame = 10\nuntil_frame = 3")
            .contains("empty window")
    );

    // Other malformed shapes keep failing.
    assert!(err("[[rule]]\ndirection = \"sideways\"\naction = \"drop\"").contains("direction"));
    assert!(err("not a key value line").contains("key = value"));
    assert!(err("[[rule]]\nwarp_factor = 9").contains("unknown rule key"));

    // The shipped schedule and boundary probabilities still parse.
    let mild = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../bench/schedules/mild.toml"
    ))
    .expect("mild.toml readable");
    ChaosSchedule::parse(&mild).expect("shipped schedule parses");
    ChaosSchedule::parse("[[rule]]\naction = \"drop\"\nprobability = 0.0").expect("p=0 is valid");
    ChaosSchedule::parse("[[rule]]\naction = \"drop\"\nprobability = 1.0").expect("p=1 is valid");
}

/// The ISSUE's acceptance scenario: 1 of 3 replicas permanently dead
/// (blackholed from the start), fixed seed. The query must complete with
/// zero wrong or missing values and `failovers > 0`, and the measured
/// degradation (makespan delta vs a healthy run — the slowest slave
/// dictates the makespan) must land within 25% of what `cluster::sim`
/// predicts for the equivalent `NodeFailure` with `failure_timeout` set
/// to the master's real detection window.
#[test]
fn blackholed_replica_tracks_sim_prediction() {
    const NODES: u32 = 3;
    const RF: usize = 3;
    const PARTITIONS: u64 = 48;
    const CELLS: u64 = 8;
    let net_cfg = NetConfig {
        timeout: Duration::from_millis(100),
        max_retries: 1,
        replica_policy: ReplicaPolicy::Primary,
        ..NetConfig::default()
    };
    // Detection window: a silent replica is declared dead only after the
    // initial send plus max_retries re-sends all time out.
    let detection = net_cfg.timeout * (net_cfg.max_retries + 1);

    // Healthy measured run (passthrough proxies, so the path lengths
    // match the chaos run exactly).
    let (cluster, routes) = spawn_local_cluster(
        data(NODES, RF, PARTITIONS, CELLS),
        NetServerConfig::default(),
    )
    .expect("cluster boots");
    let schedules = (0..NODES as u64).map(ChaosSchedule::passthrough).collect();
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, net_cfg).expect("master connects");
    let healthy = master.run_query(&routes).expect("healthy run succeeds");
    master.shutdown();
    for p in proxies {
        p.shutdown();
    }
    cluster.shutdown();

    // Chaos run: node 0 blackholed from the first byte.
    let (cluster, routes) = spawn_local_cluster(
        data(NODES, RF, PARTITIONS, CELLS),
        NetServerConfig::default(),
    )
    .expect("cluster boots");
    let schedules = vec![
        ChaosSchedule::blackhole_at(0xC4A0, Duration::ZERO),
        ChaosSchedule::passthrough(1),
        ChaosSchedule::passthrough(2),
    ];
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, net_cfg).expect("master connects");
    let degraded = master.run_query(&routes).expect("degraded run succeeds");
    master.shutdown();
    let blackholed = proxies
        .into_iter()
        .map(|p| p.shutdown().blackholed)
        .sum::<u64>();
    cluster.shutdown();

    // Zero wrong or missing values despite the dead replica.
    assert_eq!(
        degraded.result.counts_by_kind,
        healthy.result.counts_by_kind
    );
    assert_eq!(degraded.result.total_cells, PARTITIONS * CELLS);
    assert_eq!(degraded.result.traces.len(), PARTITIONS as usize);
    assert!(degraded.failovers > 0, "dead replica caused no failover");
    assert_eq!(degraded.suspected_dead, vec![0]);
    assert!(blackholed > 0, "the blackhole swallowed nothing");

    // Replay the same scenario in the simulator.
    let mut cfg = ClusterConfig::paper_optimized_master(NODES).deterministic();
    cfg.replication_factor = RF;
    cfg.replica_policy = ReplicaPolicy::Primary;
    cfg.failure_timeout = SimDuration::from_nanos(detection.as_nanos() as u64);
    let keys: Vec<_> = routes.iter().map(|r| r.key.clone()).collect();
    let mut sim_data = data(NODES, RF, PARTITIONS, CELLS);
    let sim_healthy = run_query(&cfg, &mut sim_data, &keys);
    let mut failing_cfg = cfg.clone();
    failing_cfg.failures = vec![NodeFailure {
        node: 0,
        at: SimDuration::ZERO,
    }];
    let mut sim_data = data(NODES, RF, PARTITIONS, CELLS);
    let sim_failed = run_query(&failing_cfg, &mut sim_data, &keys);
    assert_eq!(sim_failed.total_cells, PARTITIONS * CELLS);
    assert!(sim_failed.failovers > 0);

    // Compare the *added* latency, which both systems dominate by the
    // failure-detection window; the healthy baselines subtract out each
    // system's unrelated constant costs.
    let measured_delta =
        degraded.result.makespan.as_millis_f64() - healthy.result.makespan.as_millis_f64();
    let predicted_delta =
        sim_failed.makespan.as_millis_f64() - sim_healthy.makespan.as_millis_f64();
    assert!(
        predicted_delta > 0.0,
        "sim predicts no degradation: {predicted_delta}"
    );
    let relative_error = (measured_delta - predicted_delta).abs() / predicted_delta;
    assert!(
        relative_error <= 0.25,
        "measured degradation {measured_delta:.1} ms is {:.0}% off the simulated \
         {predicted_delta:.1} ms",
        relative_error * 100.0
    );
}
