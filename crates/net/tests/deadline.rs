//! Deadline propagation end to end: the v2 frame carries an absolute
//! wall-clock deadline, slaves shed expired work before the DB stage, and
//! the master either fails fast (strict) or completes with partial
//! coverage (degraded) when a query budget cannot be met.

use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{ClusterData, Codec, QueryRequest};
use kvs_net::clock::wall_ns;
use kvs_net::frame::FLAG_COMPACT;
use kvs_net::{
    spawn_local_cluster, Frame, FrameKind, NetConfig, NetMaster, NetServerConfig, QueryMode,
};
use kvs_store::TableOptions;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

fn data(nodes: u32, rf: usize, partitions: u64, cells: u64) -> ClusterData {
    ClusterData::load(
        nodes,
        rf,
        TableOptions::default(),
        uniform_partitions(partitions, cells, 4),
    )
}

/// A hand-built request frame straight onto the slave's socket, bypassing
/// [`NetMaster`]: the slave itself must enforce the wire deadline. A
/// deadline already in the past is answered `Expired` without touching
/// the store; a generous one is served normally.
#[test]
fn slave_sheds_expired_requests_and_serves_live_ones() {
    let (cluster, routes) =
        spawn_local_cluster(data(1, 1, 4, 8), NetServerConfig::default()).expect("cluster boots");
    let addr = cluster.addrs()[0];
    let mut sock = TcpStream::connect(addr).expect("slave accepts");
    let codec = Codec::compact();

    let request = |id: u64, deadline: u64| Frame {
        kind: FrameKind::Request,
        flags: FLAG_COMPACT,
        id,
        stamps: [wall_ns(), wall_ns(), id, 0],
        deadline,
        payload: codec.encode_request(&QueryRequest {
            request_id: id,
            partition: routes[0].key.clone(),
        }),
    };

    // Born dead: deadline one second in the past.
    let expired = request(7, wall_ns() - 1_000_000_000);
    expired.write_to(&mut sock).expect("request written");
    let reply = Frame::read_from(&mut sock).expect("slave answers");
    assert_eq!(reply.kind, FrameKind::Expired, "expired work must be shed");
    assert_eq!(reply.id, 7, "refusal names the shed request");
    assert!(reply.payload.is_empty(), "no result for shed work");

    // Plenty of budget: served normally, deadline echoed back.
    let deadline = wall_ns() + 5_000_000_000;
    let live = request(8, deadline);
    live.write_to(&mut sock).expect("request written");
    let reply = Frame::read_from(&mut sock).expect("slave answers");
    assert_eq!(reply.kind, FrameKind::Response, "live work is served");
    assert_eq!(reply.id, 8);
    assert_eq!(reply.deadline, deadline, "deadline echoed for audit");
    let response = codec
        .decode_response(reply.payload)
        .expect("well-formed response");
    assert_eq!(response.cells, 8, "all cells of the partition read");

    // No deadline on the wire (0) means immortal — still served.
    let immortal = request(9, 0);
    immortal.write_to(&mut sock).expect("request written");
    let reply = Frame::read_from(&mut sock).expect("slave answers");
    assert_eq!(reply.kind, FrameKind::Response);
    drop(sock);
    cluster.shutdown();
}

/// An impossible query budget in strict mode fails the whole query with
/// `TimedOut` — never a wrong or silently partial answer.
#[test]
fn impossible_deadline_fails_strict_queries() {
    let (cluster, routes) =
        spawn_local_cluster(data(2, 1, 16, 8), NetServerConfig::default()).expect("cluster boots");
    let cfg = NetConfig {
        query_deadline: Some(Duration::from_nanos(1)),
        ..NetConfig::default()
    };
    let mut master = NetMaster::connect(&cluster.addrs(), cfg).expect("master connects");
    let err = master
        .run_query(&routes)
        .expect_err("a 1 ns budget cannot be met");
    assert_eq!(err.kind(), io::ErrorKind::TimedOut, "unexpected: {err}");
    master.shutdown();
    cluster.shutdown();
}

/// The same impossible budget in degraded mode completes: zero coverage,
/// every partition on the miss list, no fabricated values.
#[test]
fn impossible_deadline_degrades_to_empty_coverage() {
    let (cluster, routes) =
        spawn_local_cluster(data(2, 1, 16, 8), NetServerConfig::default()).expect("cluster boots");
    let cfg = NetConfig {
        query_deadline: Some(Duration::from_nanos(1)),
        mode: QueryMode::Degraded,
        ..NetConfig::default()
    };
    let mut master = NetMaster::connect(&cluster.addrs(), cfg).expect("master connects");
    let report = master.run_query(&routes).expect("degraded mode completes");
    let coverage = report.result.coverage;
    assert_eq!(coverage.answered, 0, "nothing can meet a 1 ns budget");
    assert_eq!(coverage.total, 16);
    assert_eq!(
        report.result.missed,
        (0..16).collect::<Vec<u64>>(),
        "misses sorted, exact"
    );
    assert_eq!(report.missed.len(), 16, "per-partition miss detail kept");
    for (m, route) in report.missed.iter().zip(&routes) {
        assert_eq!(m.key, route.key, "miss names the lost partition");
        assert_eq!(m.replicas, route.replicas);
    }
    assert_eq!(report.result.total_cells, 0, "no values fabricated");
    assert!(report.result.counts_by_kind.is_empty());
    master.shutdown();
    cluster.shutdown();
}

/// A generous budget changes nothing: full coverage, all values, and the
/// deadline rides the wire without triggering any shedding.
#[test]
fn generous_deadline_leaves_queries_untouched() {
    let (cluster, routes) =
        spawn_local_cluster(data(2, 1, 16, 8), NetServerConfig::default()).expect("cluster boots");
    let cfg = NetConfig {
        query_deadline: Some(Duration::from_secs(30)),
        mode: QueryMode::Degraded,
        ..NetConfig::default()
    };
    let mut master = NetMaster::connect(&cluster.addrs(), cfg).expect("master connects");
    let report = master.run_query(&routes).expect("query succeeds");
    assert!(report.result.coverage.is_complete(), "nothing missed");
    assert!(report.result.missed.is_empty());
    assert_eq!(report.result.total_cells, 16 * 8);
    assert_eq!(report.timeout_retries, 0);
    master.shutdown();
    cluster.shutdown();
}
