//! The chaos property: for any eventually-quiet fault schedule, with
//! replication ≥ 2 and at most one permanently dead replica per key, the
//! aggregation query still returns exactly the fault-free oracle's
//! answer.
//!
//! Each case draws a random mix of benign faults (bounded-window delays,
//! drops, duplicates on every node) plus at most one *lethal* fault
//! confined to a single victim node (permanent blackhole, corrupt-all,
//! or an early disconnect). Three nodes at rf = 2 guarantee every key
//! keeps at least one clean replica, so the failover path must always
//! find the right answer — any divergence from the oracle is a bug.
//!
//! The "at most one dead replica" half of the property must hold
//! *deterministically*, not just in expectation: a drop rule's bounded
//! window is its fault budget. A window of `w` frames can swallow at
//! most `w` sends per direction, so one request can lose at most
//! `2 × w_max` attempts to drops. With `w_max = 7` and
//! `max_retries = 16` (17 attempts) a healthy node can never exhaust a
//! retry budget — only the victim's lethal fault can kill a node.
//!
//! Deterministic: the proptest shim derives its case stream from the
//! test name, and every [`ChaosSchedule`] carries an explicit seed.
//! `PROPTEST_CASES` overrides the case count (default 8 — each case
//! boots a real cluster).

use kvs_cluster::data::uniform_partitions;
use kvs_cluster::ClusterData;
use kvs_net::{
    spawn_local_cluster, wrap_cluster, ChaosDirection, ChaosRule, ChaosSchedule, FaultAction,
    NetConfig, NetMaster, NetServerConfig,
};
use kvs_store::TableOptions;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const NODES: u32 = 3;
const RF: usize = 2;
const PARTITIONS: u64 = 24;
const CELLS: u64 = 6;

fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

fn data() -> ClusterData {
    ClusterData::load(
        NODES,
        RF,
        TableOptions::default(),
        uniform_partitions(PARTITIONS, CELLS, 4),
    )
}

/// The fault-free answer every chaotic run must reproduce.
fn oracle() -> BTreeMap<u8, u64> {
    let (cluster, routes) =
        spawn_local_cluster(data(), NetServerConfig::default()).expect("oracle cluster boots");
    let mut master =
        NetMaster::connect(&cluster.addrs(), NetConfig::default()).expect("oracle connects");
    let report = master.run_query(&routes).expect("oracle succeeds");
    master.shutdown();
    cluster.shutdown();
    assert_eq!(report.result.total_cells, PARTITIONS * CELLS);
    report.result.counts_by_kind
}

/// Benign, bounded (hence eventually quiet) background noise for one node.
fn benign(seed: u64, delay_ms: u64, drop_p: f64, dup_p: f64, window: u64) -> ChaosSchedule {
    let schedule = ChaosSchedule {
        seed,
        rules: vec![
            ChaosRule {
                direction: ChaosDirection::Both,
                action: FaultAction::Delay(Duration::from_millis(delay_ms)),
                probability: 0.3,
                after_frame: 0,
                until_frame: Some(window),
            },
            ChaosRule {
                direction: ChaosDirection::Both,
                action: FaultAction::Drop,
                probability: drop_p,
                after_frame: 0,
                until_frame: Some(window),
            },
            ChaosRule {
                direction: ChaosDirection::Both,
                action: FaultAction::Duplicate,
                probability: dup_p,
                after_frame: 0,
                until_frame: Some(window),
            },
        ],
        blackhole_from: None,
    };
    assert!(schedule.eventually_quiet());
    schedule
}

/// Upgrades the victim's schedule with one permanently lethal fault.
fn lethalize(mut schedule: ChaosSchedule, kind: u8) -> ChaosSchedule {
    match kind {
        0 => {} // no lethal fault this case
        1 => schedule.blackhole_from = Some(Duration::ZERO),
        2 => schedule.rules.push(ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::CorruptCrc,
            probability: 1.0,
            after_frame: 0,
            until_frame: None,
        }),
        _ => schedule.rules.push(ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::Disconnect,
            probability: 1.0,
            after_frame: 0,
            until_frame: Some(1),
        }),
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases_from_env()))]

    #[test]
    fn eventually_quiet_chaos_preserves_the_aggregation(
        seed in any::<u64>(),
        victim in 0u32..NODES,
        lethal in 0u8..4,
        delay_ms in 1u64..8,
        drop_p in 0.0f64..0.4,
        dup_p in 0.0f64..0.3,
        window in 3u64..8,
    ) {
        let expected = oracle();
        let (cluster, routes) =
            spawn_local_cluster(data(), NetServerConfig::default()).expect("cluster boots");
        let schedules: Vec<ChaosSchedule> = (0..NODES)
            .map(|node| {
                let s = benign(
                    seed.wrapping_add(node as u64),
                    delay_ms,
                    drop_p,
                    dup_p,
                    window,
                );
                if node == victim { lethalize(s, lethal) } else { s }
            })
            .collect();
        let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
        // max_retries must exceed the worst-case drop budget (see the
        // module doc): 2 × w_max = 14 lost attempts < 17 allowed.
        let cfg = NetConfig {
            timeout: Duration::from_millis(100),
            max_retries: 16,
            ..NetConfig::default()
        };
        let mut master = NetMaster::connect(&addrs, cfg).expect("master connects");
        let report = master
            .run_query(&routes)
            .expect("one sick replica must never fail the query");
        master.shutdown();
        for p in proxies {
            let s = p.shutdown();
            prop_assert_eq!(s.seq_regressions, 0, "send sequence regressed: {:?}", s);
        }
        cluster.shutdown();

        prop_assert_eq!(
            report.result.total_cells,
            PARTITIONS * CELLS,
            "missing values under chaos (victim {}, lethal {})",
            victim,
            lethal
        );
        prop_assert_eq!(
            report.result.counts_by_kind,
            expected,
            "wrong values under chaos (victim {}, lethal {})",
            victim,
            lethal
        );
    }
}
