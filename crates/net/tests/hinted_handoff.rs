//! Acceptance tests for the replicated write path's hinted handoff: a
//! durable replica killed mid-write-storm misses writes, the coordinator
//! buffers them as hints while still acking at QUORUM, and after the
//! node's crash recovery + hint replay the cluster matches a fault-free
//! oracle — zero acknowledged-write loss at QUORUM with rf = 3.

use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{ClusterData, Consistency};
use kvs_net::{
    spawn_local_cluster, spawn_local_cluster_durable, DurableClusterConfig, MixedOp, MixedPlan,
    NetConfig, NetMaster, NetServerConfig, Route, WriteOptions,
};
use kvs_store::{Cell, DurableOptions, FsyncPolicy, TableOptions, TempDir};
use std::collections::BTreeMap;
use std::time::Duration;

const NODES: u32 = 3;
const RF: usize = 3;
const PARTITIONS: u64 = 16;
const SEED_CELLS: u64 = 2;
const WRITES_PER_HALF: usize = 48;

fn data() -> ClusterData {
    ClusterData::load(
        NODES,
        RF,
        TableOptions::default(),
        uniform_partitions(PARTITIONS, SEED_CELLS, 4),
    )
}

fn durable_cfg(root: &TempDir) -> DurableClusterConfig {
    DurableClusterConfig {
        root: root.path().to_path_buf(),
        store: DurableOptions {
            fsync: FsyncPolicy::Never,
            ..DurableOptions::default()
        },
        wal_tail: 2,
    }
}

fn cfg() -> NetConfig {
    NetConfig {
        timeout: Duration::from_millis(200),
        max_retries: 2,
        ..NetConfig::default()
    }
}

/// Deterministic write storm: `count` QUORUM writes round-robining the
/// routes, each landing one distinct cell. `phase` keeps clustering keys
/// of the two halves disjoint.
fn storm(routes: &[Route], count: usize, phase: u64) -> Vec<MixedPlan> {
    (0..count)
        .map(|i| {
            let route = routes[i % routes.len()].clone();
            let clustering = phase * 10_000 + i as u64;
            let kind = (i % 5) as u8;
            MixedPlan {
                route,
                op: MixedOp::Write {
                    cells: vec![Cell::new(clustering, kind, vec![0xAB; 16])],
                },
                consistency: Consistency::Quorum,
            }
        })
        .collect()
}

/// ALL-consistency read of every route (the strongest possible audit of
/// what the replica set holds).
fn read_all(routes: &[Route]) -> Vec<MixedPlan> {
    routes
        .iter()
        .map(|route| MixedPlan {
            route: route.clone(),
            op: MixedOp::Read,
            consistency: Consistency::All,
        })
        .collect()
}

/// The fault-free answer: the same two write halves against a RAM
/// cluster that never fails, then the standard aggregation query.
fn oracle(routes_template: &[Route]) -> (BTreeMap<u8, u64>, u64) {
    let (cluster, routes) =
        spawn_local_cluster(data(), NetServerConfig::default()).expect("oracle cluster boots");
    assert_eq!(routes.len(), routes_template.len());
    let mut master = NetMaster::connect(&cluster.addrs(), cfg()).expect("oracle connects");
    let wcfg = WriteOptions::default();
    for phase in 0..2u64 {
        let out = master
            .run_mixed(&storm(&routes, WRITES_PER_HALF, phase), None, &wcfg)
            .expect("oracle storm runs");
        assert_eq!(out.writes_acked as usize, WRITES_PER_HALF);
        assert_eq!(out.writes_failed, 0);
    }
    let report = master.run_query(&routes).expect("oracle query succeeds");
    master.shutdown();
    cluster.shutdown();
    (report.result.counts_by_kind, report.result.total_cells)
}

#[test]
fn quorum_storm_survives_replica_kill_with_hint_replay() {
    let root = TempDir::new("hints-storm");
    let (mut cluster, routes) =
        spawn_local_cluster_durable(data(), NetServerConfig::default(), durable_cfg(&root))
            .expect("durable cluster boots");
    let (expected_counts, expected_cells) = oracle(&routes);
    let victim: u32 = 2;
    let mut master = NetMaster::connect(&cluster.addrs(), cfg()).expect("master connects");
    let wcfg = WriteOptions::default();

    // First half against a healthy cluster: everything acks, no hints.
    let healthy = master
        .run_mixed(&storm(&routes, WRITES_PER_HALF, 0), None, &wcfg)
        .expect("healthy storm runs");
    assert_eq!(healthy.writes_acked as usize, WRITES_PER_HALF);
    assert_eq!(healthy.writes_failed, 0);
    assert_eq!(healthy.hints_queued, 0);

    // Kill the victim and pour the second half. rf = 3 QUORUM needs 2
    // acks, so every write still completes; the victim's copies buffer
    // as hints.
    cluster.kill(victim);
    let dark = master
        .run_mixed(&storm(&routes, WRITES_PER_HALF, 1), None, &wcfg)
        .expect("storm with a dark replica runs");
    assert_eq!(
        dark.writes_acked as usize, WRITES_PER_HALF,
        "QUORUM must keep acking with one replica dark: {dark:?}"
    );
    assert_eq!(dark.writes_failed, 0);
    assert_eq!(
        master.hinted_for(victim) as u64,
        dark.hints_queued,
        "every missed write is buffered"
    );
    assert!(
        dark.hints_queued as usize >= WRITES_PER_HALF,
        "the dark replica missed at least one hint per write: {dark:?}"
    );
    assert_eq!(dark.hints_dropped, 0);

    // Recover: real crash recovery from disk, reconnect, replay hints.
    cluster.restart(victim).expect("restart succeeds");
    let report = cluster
        .last_recovery(victim)
        .expect("durable restart records a report");
    assert!(
        report.wal_records_replayed > 0,
        "pre-kill writes come back through WAL replay: {report:?}"
    );
    let buffered = master.hinted_for(victim) as u64;
    master
        .reconnect(victim, cluster.addrs()[victim as usize])
        .expect("reconnect succeeds");
    let replayed = master.replay_hints(victim).expect("hint replay runs");
    assert_eq!(replayed, buffered, "every hint is acknowledged on replay");
    assert_eq!(master.hinted_for(victim), 0);

    // Audit 1: an ALL read of every partition observes every version the
    // coordinator ever acknowledged — zero acknowledged-write staleness.
    let audit = master
        .run_mixed(&read_all(&routes), None, &wcfg)
        .expect("ALL audit runs");
    assert_eq!(audit.reads as usize, routes.len(), "{audit:?}");
    assert_eq!(audit.reads_failed, 0, "{audit:?}");
    assert_eq!(
        audit.stale_reads, 0,
        "an ALL read after replay must see every acked write: {audit:?}"
    );
    assert_eq!(
        audit.divergent_reads, 0,
        "after hint replay all three replicas hold the newest version: {audit:?}"
    );
    master.shutdown();

    // Audit 2: the recovered cluster serves exactly the fault-free
    // aggregation — nothing acknowledged was lost, nothing corrupted.
    let mut fresh = NetMaster::connect(&cluster.addrs(), cfg()).expect("fresh master connects");
    let report = fresh.run_query(&routes).expect("final query succeeds");
    fresh.shutdown();
    assert_eq!(report.result.total_cells, expected_cells, "lost values");
    assert_eq!(
        report.result.counts_by_kind, expected_counts,
        "wrong values"
    );
    cluster.shutdown();
}

#[test]
fn all_consistency_fails_while_quorum_survives() {
    let root = TempDir::new("hints-cl");
    let (mut cluster, routes) =
        spawn_local_cluster_durable(data(), NetServerConfig::default(), durable_cfg(&root))
            .expect("durable cluster boots");
    let mut master = NetMaster::connect(&cluster.addrs(), cfg()).expect("master connects");
    let wcfg = WriteOptions::default();
    cluster.kill(1);

    // One probe write flushes the Down event into the master's health
    // table (the TCP write itself may still succeed before the RST).
    let _probe = master
        .run_mixed(&storm(&routes, 2, 7), None, &wcfg)
        .expect("probe runs");

    let mut plans = storm(&routes, 8, 8);
    for p in &mut plans {
        p.consistency = Consistency::All;
    }
    let all = master.run_mixed(&plans, None, &wcfg).expect("ALL run");
    assert_eq!(
        all.writes_acked, 0,
        "ALL cannot complete with a replica dark: {all:?}"
    );
    assert_eq!(all.writes_failed, 8);

    let quorum = master
        .run_mixed(&storm(&routes, 8, 9), None, &wcfg)
        .expect("QUORUM run");
    assert_eq!(
        quorum.writes_acked, 8,
        "QUORUM tolerates one dark replica: {quorum:?}"
    );
    master.shutdown();
    cluster.shutdown();
}
