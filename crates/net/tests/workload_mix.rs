//! Sim-vs-sockets cross-validation for a YCSB-style mix.
//!
//! Runs the `update_heavy` mix's request schedule through both engines
//! under the *same* dominant latency source — node 0's responses held
//! 40 ms with p = 0.15 — and asserts the measured p99 lands within 25%
//! of `cluster::sim`'s prediction (the same acceptance shape as the
//! chaos straggler scenario). The straggler is what makes the comparison
//! apples-to-apples: the simulator charges 2010-era Cassandra service
//! times while the sockets pay this machine's loopback, so absolute
//! medians differ by design, but a 40 ms injected delay dwarfs both
//! baselines and the tail it builds is governed by the shared
//! parameters (delay, probability, arrival schedule) — exactly what the
//! cross-validation is entitled to pin down.
//!
//! Fixed seeds everywhere: same ops, same faulted frames, every run.

use kvs_cluster::config::Straggler;
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::sim::run_query_paced;
use kvs_cluster::{ClusterConfig, ClusterData, ReplicaPolicy};
use kvs_net::{
    spawn_local_cluster, wrap_cluster, ChaosDirection, ChaosRule, ChaosSchedule, FaultAction,
    NetConfig, NetMaster, NetServerConfig,
};
use kvs_simcore::SimDuration;
use kvs_stages::RequestTrace;
use kvs_store::{PartitionKey, TableOptions};
use kvs_workloads::ycsb::{expand_requests, generate_ops, max_keyspace, standard_mixes};
use std::time::Duration;

const NODES: u32 = 3;
const RF: usize = 2;
const VICTIM: u32 = 0;
const SEED: u64 = 0x5EED;
const CELLS: u64 = 8;
const OPS: u64 = 220;
const INITIAL_KEYS: u64 = 64;
const STRAGGLE_MS: u64 = 40;
const STRAGGLE_P: f64 = 0.15;
const ARRIVAL_GAP_NS: u64 = 3_000_000;

fn p99_ms(traces: &[RequestTrace]) -> f64 {
    let mut totals: Vec<f64> = traces.iter().map(|t| t.total().as_millis_f64()).collect();
    assert!(!totals.is_empty(), "no traces recorded");
    totals.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((totals.len() as f64 * 0.99).ceil() as usize).clamp(1, totals.len());
    totals[rank - 1]
}

#[test]
fn update_heavy_p99_tracks_sim_prediction() {
    let spec = standard_mixes()
        .into_iter()
        .find(|m| m.name == "update_heavy")
        .expect("update_heavy mix exists");
    let ops = generate_ops(&spec, INITIAL_KEYS, OPS, SEED);
    let requests = expand_requests(&ops);
    let keys: Vec<PartitionKey> = requests
        .iter()
        .map(|&(_, key)| PartitionKey::from_id(key))
        .collect();
    let keyspace = max_keyspace(INITIAL_KEYS, OPS);
    let arrivals_ns: Vec<u64> = (0..keys.len() as u64).map(|i| i * ARRIVAL_GAP_NS).collect();

    // --- Simulated world: Straggler config, same arrival schedule. ---
    let mut cfg = ClusterConfig::paper_optimized_master(NODES).deterministic();
    cfg.replication_factor = RF;
    cfg.replica_policy = ReplicaPolicy::Primary;
    cfg.stragglers = vec![Straggler {
        node: VICTIM,
        extra: SimDuration::from_millis(STRAGGLE_MS),
        probability: STRAGGLE_P,
    }];
    let mut sim_data = ClusterData::load(
        NODES,
        RF,
        TableOptions::default(),
        uniform_partitions(keyspace, CELLS, 4),
    );
    let arrivals_sim: Vec<SimDuration> = arrivals_ns
        .iter()
        .map(|&ns| SimDuration::from_nanos(ns))
        .collect();
    let sim = run_query_paced(&cfg, &mut sim_data, &keys, &arrivals_sim);

    // --- Measured world: ChaosProxy delay on the same node. ---
    let data = ClusterData::load(
        NODES,
        RF,
        TableOptions::default(),
        uniform_partitions(keyspace, CELLS, 4),
    );
    let (cluster, all_routes) =
        spawn_local_cluster(data, NetServerConfig::default()).expect("cluster boots");
    let route_of = |pk: &PartitionKey| {
        all_routes
            .iter()
            .find(|r| &r.key == pk)
            .expect("key has a route")
            .clone()
    };
    let routes: Vec<_> = keys.iter().map(route_of).collect();
    let mut schedules = vec![ChaosSchedule {
        seed: SEED,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::Delay(Duration::from_millis(STRAGGLE_MS)),
            probability: STRAGGLE_P,
            after_frame: 0,
            until_frame: Some(keys.len() as u64),
        }],
        blackhole_from: None,
    }];
    schedules.extend((1..NODES as u64).map(ChaosSchedule::passthrough));
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let net_cfg = NetConfig {
        replica_policy: ReplicaPolicy::Primary,
        ..NetConfig::default()
    };
    let mut master = NetMaster::connect(&addrs, net_cfg).expect("master connects");
    let report = master
        .run_with_arrivals(&routes, Some(&arrivals_ns))
        .expect("socket run succeeds");
    master.shutdown();
    for p in proxies {
        p.shutdown();
    }
    cluster.shutdown();
    assert!(
        report.result.coverage.is_complete(),
        "measured run lost data"
    );

    // --- Acceptance: measured p99 within 25% of the sim's. ---
    let measured = p99_ms(&report.result.traces);
    let simulated = p99_ms(&sim.traces);
    assert!(
        measured >= STRAGGLE_MS as f64 && simulated >= STRAGGLE_MS as f64,
        "straggler did not dominate the tail: measured {measured:.1} ms, \
         simulated {simulated:.1} ms"
    );
    let relative_error = (measured - simulated).abs() / simulated;
    assert!(
        relative_error <= 0.25,
        "measured p99 {measured:.1} ms diverges from simulated {simulated:.1} ms \
         ({:.0}% relative error)",
        relative_error * 100.0
    );
}
