//! Soak test: repeated query rounds over a *durable* cluster with a
//! random slave killed mid-query and restarted between rounds, for
//! `KVSCALE_SOAK_SECS` seconds (default 60).
//!
//! `#[ignore]`d by default — the scheduled CI lane runs it with
//! `cargo test -p kvs-net --test soak -- --ignored`. What it pins:
//!
//! * **no deadlock** — every round's query completes (and a round that
//!   stalls past its generous wall-clock bound fails loudly);
//! * **no thread leak** — after the final teardown the process is back
//!   to its baseline thread count (the `shutdown_leak` assertion);
//! * **monotone frame sequence numbers** — the per-round chaos proxies
//!   audit `stamps[2]` on every request frame and must observe zero
//!   regressions;
//! * **no wrong answers** — a kill with rf = 2 never loses data, even
//!   though a killed node's memory is dropped outright: every restart
//!   goes through real crash recovery and must replay the seeded WAL
//!   tail (the recovery report is asserted on every round).

use kvs_cluster::data::uniform_partitions;
use kvs_cluster::ClusterData;
use kvs_net::{
    spawn_local_cluster_durable, wrap_cluster, ChaosSchedule, DurableClusterConfig, NetConfig,
    NetMaster, NetServerConfig,
};
use kvs_store::{DurableOptions, FsyncPolicy, TableOptions, TempDir};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

const NODES: u32 = 3;
const RF: usize = 2;
const PARTITIONS: u64 = 48;
const CELLS: u64 = 8;

fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs available");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line present")
}

fn soak_secs() -> u64 {
    std::env::var("KVSCALE_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

#[test]
#[ignore = "long-running soak; scheduled CI lane runs it with --ignored"]
fn kills_and_restarts_leak_nothing_and_lose_nothing() {
    let budget = Duration::from_secs(soak_secs());
    let baseline_threads = thread_count();
    let mut rng = StdRng::seed_from_u64(0x50AC);

    let data = ClusterData::load(
        NODES,
        RF,
        TableOptions::default(),
        uniform_partitions(PARTITIONS, CELLS, 4),
    );
    let root = TempDir::new("soak");
    let dcfg = DurableClusterConfig {
        root: root.path().to_path_buf(),
        store: DurableOptions {
            // Real fsyncs would dominate a 60 s soak; the kill path never
            // loses the file contents, only unsynced OS buffers, and this
            // process survives.
            fsync: FsyncPolicy::Never,
            ..DurableOptions::default()
        },
        // Two cells per partition ride the WAL so every restart has
        // records to replay.
        wal_tail: 2,
    };
    let (mut cluster, routes) =
        spawn_local_cluster_durable(data, NetServerConfig::default(), dcfg).expect("cluster boots");

    let cfg = NetConfig {
        timeout: Duration::from_millis(100),
        max_retries: 2,
        ..NetConfig::default()
    };

    let started = Instant::now();
    let mut rounds = 0u64;
    let mut kills = 0u64;
    while started.elapsed() < budget {
        let round_start = Instant::now();
        // Heal the cluster, then interpose fresh (auditing) proxies.
        for node in 0..NODES {
            if !cluster.is_up(node) {
                cluster.restart(node).expect("restart succeeds");
                let report = cluster
                    .last_recovery(node)
                    .expect("durable restart records a recovery report");
                assert!(
                    report.wal_records_replayed > 0,
                    "round {rounds}: node {node} restarted without WAL replay: {report:?}"
                );
            }
        }
        let schedules = (0..NODES as u64)
            .map(|n| ChaosSchedule::passthrough(rounds.wrapping_mul(31).wrapping_add(n)))
            .collect();
        let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
        let master = NetMaster::connect(&addrs, cfg).expect("master connects");

        // Run the query on a worker thread; kill a random victim from
        // here while it is in flight.
        let query_routes = routes.clone();
        let worker = std::thread::spawn(move || {
            let mut master = master;
            let result = master.run_query(&query_routes);
            (result, master)
        });
        let victim = rng.gen_range(0..NODES);
        std::thread::sleep(Duration::from_millis(rng.gen_range(1..15)));
        cluster.kill(victim);
        kills += 1;

        let (result, master) = worker.join().expect("query thread never panics");
        let report = result.expect("rf = 2 survives a single kill");
        assert_eq!(
            report.result.total_cells,
            PARTITIONS * CELLS,
            "round {rounds}: lost values after killing node {victim}"
        );
        master.shutdown();
        for p in proxies {
            let stats = p.shutdown();
            assert_eq!(
                stats.seq_regressions, 0,
                "round {rounds}: frame sequence regressed"
            );
        }
        // Generous per-round bound: a deadlocked round would blow way
        // past detection + query time.
        assert!(
            round_start.elapsed() < Duration::from_secs(30),
            "round {rounds} stalled for {:?}",
            round_start.elapsed()
        );
        rounds += 1;
    }

    cluster.shutdown();
    assert!(rounds > 0, "soak budget too small to run a single round");
    assert_eq!(
        thread_count(),
        baseline_threads,
        "threads leaked after {rounds} rounds / {kills} kills"
    );
    println!("soak: {rounds} rounds, {kills} kills, no leaks");
}
