//! Tail-latency defenses end to end: hedged replica reads against an
//! injected straggler, degraded partial answers against a blackholed
//! partition, and the cold-start connect retry.
//!
//! The straggler test is the PR's headline acceptance criterion: with one
//! replica's responses randomly held 40 ms, hedging must cut the measured
//! p99 by ≥ 30% while spending < 10% extra requests. Fixed proxy seeds
//! make both runs see the *same* fault sequence — hedges only ever target
//! the other nodes, so the straggler's own frame stream (and therefore
//! its seeded fault draws) is identical with and without hedging.

use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{ClusterData, ReplicaPolicy};
use kvs_net::{
    spawn_local_cluster, wrap_cluster, ChaosDirection, ChaosRule, ChaosSchedule, FaultAction,
    HedgeConfig, NetConfig, NetMaster, NetRunReport, NetServerConfig, QueryMode, Route,
};
use kvs_store::TableOptions;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// The straggler acceptance test measures real wall-clock tails; a
/// sibling test competing for cores skews them. One test at a time.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn data(nodes: u32, rf: usize, partitions: u64, cells: u64) -> ClusterData {
    ClusterData::load(
        nodes,
        rf,
        TableOptions::default(),
        uniform_partitions(partitions, cells, 4),
    )
}

/// p99 of the per-request end-to-end latencies, milliseconds.
fn p99_ms(report: &NetRunReport) -> f64 {
    let mut totals: Vec<f64> = report
        .result
        .traces
        .iter()
        .map(|t| t.total().as_millis_f64())
        .collect();
    assert!(!totals.is_empty(), "no traces recorded");
    totals.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((totals.len() as f64 * 0.99).ceil() as usize).clamp(1, totals.len());
    totals[rank - 1]
}

/// One run against a freshly proxied cluster; node 0's responses are
/// randomly held [`STRAGGLE`] under a fixed seed.
fn straggler_run(
    addrs: &[std::net::SocketAddr],
    routes: &[Route],
    arrivals: &[u64],
    hedge: Option<HedgeConfig>,
) -> NetRunReport {
    let straggle = ChaosSchedule {
        seed: 0xD1CE,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::Delay(Duration::from_millis(40)),
            probability: 0.03,
            after_frame: 0,
            until_frame: Some(200),
        }],
        blackhole_from: None,
    };
    let schedules = vec![
        straggle,
        ChaosSchedule::passthrough(2),
        ChaosSchedule::passthrough(3),
    ];
    let (proxies, proxied) = wrap_cluster(addrs, schedules).expect("proxies boot");
    let cfg = NetConfig {
        hedge,
        // Requests land on the primary so the straggler's share of the
        // load is deterministic, and hedges are the only cross-replica
        // traffic.
        replica_policy: ReplicaPolicy::Primary,
        ..NetConfig::default()
    };
    let mut master = NetMaster::connect(&proxied, cfg).expect("master connects");
    let report = master
        .run_with_arrivals(routes, Some(arrivals))
        .expect("query succeeds");
    master.shutdown();
    for p in proxies {
        p.shutdown();
    }
    report
}

#[test]
fn hedged_reads_cut_straggler_p99() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const PARTITIONS: u64 = 300;
    let (cluster, routes) =
        spawn_local_cluster(data(3, 2, PARTITIONS, 8), NetServerConfig::default())
            .expect("cluster boots");
    let addrs = cluster.addrs();
    // Open-loop arrivals, 3 ms apart: load light enough that hedges are
    // tail-driven, not queue-driven.
    let arrivals: Vec<u64> = (0..PARTITIONS).map(|i| i * 3_000_000).collect();

    let plain = straggler_run(&addrs, &routes, &arrivals, None);
    let hedged = straggler_run(
        &addrs,
        &routes,
        &arrivals,
        Some(HedgeConfig {
            quantile: 0.95,
            min_delay: Duration::from_millis(8),
        }),
    );
    cluster.shutdown();

    // Both runs answered everything, correctly.
    assert!(plain.result.coverage.is_complete());
    assert!(hedged.result.coverage.is_complete());
    assert_eq!(plain.result.total_cells, PARTITIONS * 8);
    assert_eq!(hedged.result.total_cells, PARTITIONS * 8);

    let (p99_plain, p99_hedged) = (p99_ms(&plain), p99_ms(&hedged));
    // The injected 40 ms straggler must dominate the unhedged tail, or
    // the comparison below is vacuous.
    assert!(
        p99_plain >= 30.0,
        "straggler left no tail to cut: p99 {p99_plain:.1} ms"
    );
    let improvement = 1.0 - p99_hedged / p99_plain;
    assert!(
        improvement >= 0.30,
        "hedging cut p99 by only {:.0}% ({p99_plain:.1} ms → {p99_hedged:.1} ms)",
        improvement * 100.0
    );

    // The cut was bought with hedges — and cheaply.
    assert!(hedged.hedges_sent > 0, "no hedges fired");
    assert!(hedged.hedges_won > 0, "no hedge ever beat the straggler");
    assert!(
        hedged.hedge_extra_load() < 0.10,
        "hedging overspent: {} hedges on {} requests ({:.1}% extra load)",
        hedged.hedges_sent,
        PARTITIONS,
        hedged.hedge_extra_load() * 100.0
    );
    assert_eq!(plain.hedges_sent, 0, "hedging off must send no hedges");
}

/// A blackholed partition in degraded mode: the query completes with
/// `Coverage < 1`, the miss list names exactly the unreachable
/// partitions, and every answered value is correct. Strict mode still
/// refuses to return a partial answer.
#[test]
fn blackholed_partition_degrades_with_exact_miss_list() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const PARTITIONS: u64 = 32;
    let (cluster, routes) =
        spawn_local_cluster(data(2, 1, PARTITIONS, 8), NetServerConfig::default())
            .expect("cluster boots");
    let addrs = cluster.addrs();
    let fast = NetConfig {
        timeout: Duration::from_millis(100),
        max_retries: 1,
        ..NetConfig::default()
    };
    // With rf = 1, partitions whose only replica is node 0 are
    // unreachable once node 0 is blackholed.
    let expected_misses: Vec<u64> = routes
        .iter()
        .enumerate()
        .filter(|(_, r)| r.replicas == [0])
        .map(|(i, _)| i as u64)
        .collect();
    assert!(
        !expected_misses.is_empty() && expected_misses.len() < PARTITIONS as usize,
        "placement must split partitions across both nodes"
    );

    // Degraded: partial coverage, exact misses, no wrong values.
    let schedules = vec![
        ChaosSchedule::blackhole_at(0xB10C, Duration::ZERO),
        ChaosSchedule::passthrough(1),
    ];
    let (proxies, proxied) = wrap_cluster(&addrs, schedules).expect("proxies boot");
    let cfg = NetConfig {
        mode: QueryMode::Degraded,
        ..fast
    };
    let mut master = NetMaster::connect(&proxied, cfg).expect("master connects");
    let report = master.run_query(&routes).expect("degraded mode completes");
    master.shutdown();
    for p in proxies {
        p.shutdown();
    }
    let coverage = report.result.coverage;
    assert!(!coverage.is_complete(), "the blackhole must cost coverage");
    assert_eq!(coverage.total, PARTITIONS);
    assert_eq!(
        coverage.answered,
        PARTITIONS - expected_misses.len() as u64,
        "all reachable partitions answered"
    );
    assert_eq!(report.result.missed, expected_misses, "miss list exact");
    for m in &report.missed {
        assert_eq!(m.replicas, [0], "every miss names the blackholed node");
        assert_eq!(m.key, routes[m.request_id as usize].key);
    }
    // Zero wrong values: the answered partitions account for every cell.
    assert_eq!(report.result.total_cells, coverage.answered * 8);
    assert!(
        report.suspected_dead.contains(&0),
        "the blackholed node must end up suspected"
    );

    // Strict: same fault, whole query refused.
    let schedules = vec![
        ChaosSchedule::blackhole_at(0xB10C, Duration::ZERO),
        ChaosSchedule::passthrough(1),
    ];
    let (proxies, proxied) = wrap_cluster(&addrs, schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&proxied, fast).expect("master connects");
    master
        .run_query(&routes)
        .expect_err("strict mode must not return a partial answer");
    master.shutdown();
    for p in proxies {
        p.shutdown();
    }
    cluster.shutdown();
}

/// The cold-start race: a master that connects before its slave finishes
/// binding must retry `ConnectionRefused` instead of dying. The listener
/// here comes up ~25 ms after the connect attempt starts; the default
/// retry ladder (6 retries, 1 ms doubling back-off) covers ~60 ms.
#[test]
fn connect_retries_through_slave_cold_start() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Reserve a port, then release it so the first connect is refused.
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe binds");
        probe.local_addr().expect("probe addr")
    };
    assert!(
        TcpStream::connect(addr).is_err(),
        "port must start closed for the race to exist"
    );
    let server = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(25));
        let listener = TcpListener::bind(addr).expect("late bind succeeds");
        // Hold the master's connection open until it shuts down.
        let (sock, _) = listener.accept().expect("master arrives");
        let mut sock = sock;
        let mut buf = [0u8; 64];
        use std::io::Read;
        while matches!(sock.read(&mut buf), Ok(n) if n > 0) {}
    });
    let master =
        NetMaster::connect(&[addr], NetConfig::default()).expect("retry rides out the cold start");
    master.shutdown();
    server.join().expect("listener thread exits");

    // And with no listener ever appearing, connect still fails — the
    // retry ladder is bounded.
    let dead = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe binds");
        probe.local_addr().expect("probe addr")
    };
    assert!(
        NetMaster::connect(&[dead], NetConfig::default()).is_err(),
        "bounded retries must eventually give up"
    );
}
