//! Truncation/corruption safety of the wire frame, in the same spirit as
//! `kvs-cluster`'s codec property tests: whatever bytes arrive, the
//! decoder returns "need more", an error, or a valid frame — it never
//! panics, and corrupted input never decodes successfully.

use bytes::Bytes;
use kvs_net::frame::{Frame, FrameKind};
use proptest::prelude::*;

fn build(kind_sel: u8, flags: u8, id: u64, stamps: (u64, u64, u64, u64), payload: &[u8]) -> Frame {
    let kind = match kind_sel % 4 {
        0 => FrameKind::Request,
        1 => FrameKind::Response,
        2 => FrameKind::Busy,
        _ => FrameKind::Expired,
    };
    Frame {
        kind,
        flags,
        id,
        stamps: [stamps.0, stamps.1, stamps.2, stamps.3],
        deadline: id ^ stamps.0, // arbitrary but deterministic
        payload: Bytes::copy_from_slice(payload),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn roundtrips(kind_sel in any::<u8>(),
                  flags in any::<u8>(),
                  id in any::<u64>(),
                  stamps in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
                  payload in proptest::collection::vec(any::<u8>(), 0..300)) {
        let frame = build(kind_sel, flags, id, stamps, &payload);
        let wire = frame.encode();
        let (decoded, used) = Frame::decode(&wire).expect("valid").expect("complete");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn any_prefix_asks_for_more_never_panics(kind_sel in any::<u8>(),
                                             id in any::<u64>(),
                                             payload in proptest::collection::vec(any::<u8>(), 0..200),
                                             cut in 0usize..600) {
        let wire = build(kind_sel, 0, id, (1, 2, 3, 4), &payload).encode();
        let cut = cut.min(wire.len() - 1);
        // A strict prefix of a valid frame is always "need more bytes".
        prop_assert_eq!(Frame::decode(&wire[..cut]), Ok(None));
    }

    #[test]
    fn corruption_never_decodes(kind_sel in any::<u8>(),
                                id in any::<u64>(),
                                payload in proptest::collection::vec(any::<u8>(), 0..200),
                                pos in any::<usize>(),
                                mask in 1u8..=255) {
        let mut wire = build(kind_sel, 7, id, (9, 8, 7, 6), &payload).encode();
        let pos = pos % wire.len();
        wire[pos] ^= mask;
        // The CRC (or the header validation) must reject the flip — the
        // worst acceptable outcome is "need more bytes" after a length
        // field grew.
        prop_assert!(!matches!(Frame::decode(&wire), Ok(Some(_))),
                     "corruption at byte {} accepted", pos);
    }

    #[test]
    fn arbitrary_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Any outcome is fine; reaching this line without a panic is the
        // property.
        let _ = Frame::decode(&data);
        prop_assert!(true);
    }

    #[test]
    fn truncated_streams_error_cleanly(kind_sel in any::<u8>(),
                                       payload in proptest::collection::vec(any::<u8>(), 1..200),
                                       cut in 0usize..600) {
        let wire = build(kind_sel, 1, 42, (1, 2, 3, 4), &payload).encode();
        let cut = cut.min(wire.len().saturating_sub(1));
        let mut stream = &wire[..cut];
        // A stream that ends mid-frame is an io error, not a panic.
        prop_assert!(Frame::read_from(&mut stream).is_err());
    }
}
