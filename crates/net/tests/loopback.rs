//! The ISSUE's acceptance test: a real 4-slave loopback cluster serving a
//! D8tree-style aggregation query through [`NetMaster`], checked against
//! the in-process live executor, the four methodology stages, the codec
//! cost ordering, and the calibrated Figure 11 sweep.

use kvs_cluster::data::uniform_partitions;
use kvs_cluster::live::{run_query_live, LiveConfig};
use kvs_cluster::{ClusterData, Codec};
use kvs_model::{limits, DbModel, SystemModel};
use kvs_net::{calibrate_t_msg, spawn_local_cluster, NetConfig, NetMaster, NetServerConfig};
use kvs_simcore::SimDuration;
use kvs_stages::Stage;
use kvs_store::TableOptions;

const NODES: u32 = 4;
const PARTITIONS: u64 = 96;
const CELLS: u64 = 16;

fn paper_data() -> ClusterData {
    ClusterData::load(
        NODES,
        1,
        TableOptions::default(),
        uniform_partitions(PARTITIONS, CELLS, 4),
    )
}

#[test]
fn net_query_matches_live_executor_and_traces_all_stages() {
    // The same placement twice: once over TCP, once over in-process
    // channels — the aggregation answer must be identical.
    let (cluster, routes) =
        spawn_local_cluster(paper_data(), NetServerConfig::default()).expect("cluster boots");
    let mut master =
        NetMaster::connect(&cluster.addrs(), NetConfig::default()).expect("master connects");
    let net = master.run_query(&routes).expect("net query succeeds");

    let live_keys: Vec<_> = routes.iter().map(|r| r.key.clone()).collect();
    let live = run_query_live(paper_data(), &live_keys, LiveConfig::default());

    assert_eq!(net.result.counts_by_kind, live.counts_by_kind);
    assert_eq!(net.result.total_cells, live.total_cells);
    assert_eq!(net.result.total_cells, PARTITIONS * CELLS);
    assert_eq!(net.result.messages, PARTITIONS);
    assert_eq!(net.result.traces.len(), PARTITIONS as usize);

    // Every request traces all four stages; each stage accumulates real
    // (positive) time across the run.
    for t in &net.result.traces {
        assert!(t.is_complete(), "incomplete trace {t:?}");
    }
    for stage in [
        Stage::MasterToSlave,
        Stage::InQueue,
        Stage::InDb,
        Stage::SlaveToMaster,
    ] {
        let total: SimDuration = net
            .result
            .traces
            .iter()
            .map(|t| t.stage_duration(stage))
            .sum();
        assert!(
            total > SimDuration::ZERO,
            "stage {stage:?} recorded no time"
        );
    }
    assert!(net.result.makespan > SimDuration::ZERO);

    master.shutdown();
    let stats = cluster.shutdown();
    assert!(
        stats.pushed >= PARTITIONS,
        "every request passes the work queue: {stats:?}"
    );
}

#[test]
fn busy_backpressure_retries_and_still_answers_correctly() {
    // One worker behind a depth-1 queue: the master outruns the slave,
    // collects Busy frames, retries, and still gets the right answer.
    let data = ClusterData::load(1, 1, TableOptions::default(), uniform_partitions(64, 24, 4));
    let (cluster, routes) = spawn_local_cluster(
        data,
        NetServerConfig {
            workers_per_node: 1,
            queue_depth: 1,
        },
    )
    .expect("cluster boots");
    let mut master =
        NetMaster::connect(&cluster.addrs(), NetConfig::default()).expect("master connects");
    let report = master
        .run_query(&routes)
        .expect("query survives backpressure");
    assert_eq!(report.result.total_cells, 64 * 24);
    master.shutdown();
    let stats = cluster.shutdown();
    assert!(
        stats.busy_rejections > 0,
        "depth-1 queue never refused: {stats:?}"
    );
    assert_eq!(report.busy_retries, stats.busy_rejections);
}

#[test]
fn compact_codec_measures_cheaper_than_verbose() {
    // §V-B on the real socket path: the compact (Kryo-like) codec must
    // measure a lower per-message master cost than the verbose one.
    let compact = calibrate_t_msg(Codec::compact(), 1_200).expect("compact calibration");
    let verbose = calibrate_t_msg(Codec::verbose(), 1_200).expect("verbose calibration");
    assert!(
        compact.t_msg_us() < verbose.t_msg_us(),
        "compact {:.2} µs !< verbose {:.2} µs",
        compact.t_msg_us(),
        verbose.t_msg_us()
    );
    assert!(compact.tx_us_per_msg > 0.0 && compact.rx_us_per_msg > 0.0);

    // The measured constants drive the Figure 11 sweep end to end.
    let model = SystemModel {
        master: compact.master_model(),
        db: DbModel::paper(),
        gc: None,
    };
    let nodes: Vec<u64> = (1..=8).map(|i| i * 16).collect();
    let points = limits::master_limit_sweep(&model, 1_000_000.0, &nodes);
    assert_eq!(points.len(), nodes.len());
    assert!(points.iter().all(|p| p.master_ms > 0.0 && p.total_ms > 0.0));
}
