//! Regression pin for the documented Busy semantics: **Busy is flow
//! control, never a failure.**
//!
//! The subtle boundary this pins: a request's hard wall-clock allowance
//! (`timeout × (max_retries + 1)`) used to be armed once at first send,
//! so a slave that kept answering `Busy` long enough would push the
//! request past its allowance and fail the query — even though every
//! `Busy` reply is proof the slave is alive and making the master wait
//! on purpose. The master now re-arms the allowance on every `Busy`
//! receipt; only a slave that goes *silent* still exhausts it.
//!
//! The test drives the master against a hand-rolled fake slave that
//! answers `Busy` for longer than the original allowance before finally
//! serving the request. Success, `busy_retries` matching the Busy count,
//! and zero timeout retries/failovers pin the semantics.

use kvs_cluster::{Codec, QueryResponse};
use kvs_net::clock::wall_ns;
use kvs_net::{Frame, FrameKind, NetConfig, NetMaster, Route};
use kvs_store::PartitionKey;
use std::net::TcpListener;
use std::time::Duration;

/// How many Busy replies the fake slave sends before serving. With a
/// 20 ms busy back-off this stretches the busy period to ≈ 300 ms —
/// nearly double the 160 ms allowance armed at first send.
const BUSY_REPLIES: u64 = 15;

#[test]
fn busy_flow_control_never_exhausts_the_failure_budget() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let server = std::thread::spawn(move || {
        let (mut conn, _peer) = listener.accept().expect("master connects");
        let codec = Codec::compact();
        let mut busy_sent = 0u64;
        loop {
            let frame = match Frame::read_from(&mut conn) {
                Ok(f) => f,
                Err(_) => return busy_sent, // master hung up: done
            };
            if frame.kind != FrameKind::Request {
                continue;
            }
            if busy_sent < BUSY_REPLIES {
                busy_sent += 1;
                let busy = Frame {
                    kind: FrameKind::Busy,
                    flags: frame.flags,
                    id: frame.id,
                    stamps: [frame.stamps[1], wall_ns(), 0, 0],
                    deadline: frame.deadline,
                    payload: bytes::Bytes::new(),
                };
                busy.write_to(&mut conn).expect("busy reply");
                continue;
            }
            let request = codec
                .decode_request(frame.payload.clone())
                .expect("decodable request");
            let response = QueryResponse::from_kinds(request.request_id, [1u8, 2, 3]);
            let now = wall_ns();
            let reply = Frame {
                kind: FrameKind::Response,
                flags: frame.flags,
                id: frame.id,
                stamps: [frame.stamps[1], now, now, wall_ns()],
                deadline: frame.deadline,
                payload: codec.encode_response(&response),
            };
            reply.write_to(&mut conn).expect("response reply");
        }
    });

    let cfg = NetConfig {
        timeout: Duration::from_millis(80),
        max_retries: 1, // allowance armed at first send: 160 ms
        busy_backoff: Duration::from_millis(20),
        ..NetConfig::default()
    };
    let mut master = NetMaster::connect(&[addr], cfg).expect("master connects");
    let routes = vec![Route::single(PartitionKey::from_id(7), 0)];
    let report = master
        .run_query(&routes)
        .expect("a busy slave is not a dead slave");

    assert_eq!(report.result.total_cells, 3);
    assert_eq!(
        report.busy_retries, BUSY_REPLIES,
        "every Busy reply produced exactly one flow-control retry"
    );
    assert_eq!(
        report.timeout_retries, 0,
        "Busy retries leaked into the failure budget"
    );
    assert_eq!(report.failovers, 0);
    assert!(report.suspected_dead.is_empty());
    // The busy period really did outlive the original 160 ms allowance —
    // otherwise this test pins nothing.
    assert!(
        report.retry_wait_ms > 160.0,
        "busy period too short to prove re-arming: {:.0} ms",
        report.retry_wait_ms
    );

    master.shutdown();
    assert_eq!(server.join().expect("server exits"), BUSY_REPLIES);
}
