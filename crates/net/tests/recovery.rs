//! Acceptance tests for the durable cluster path: a killed node's memory
//! is dropped outright, the restart performs *real* crash recovery
//! (manifest load, orphan cleanup, WAL replay), and every schedule —
//! including seeded kill-mid-query rounds and crashes injected inside a
//! flush or compaction — converges back to the fault-free oracle with
//! zero wrong or lost acknowledged values.

use kvs_cluster::data::uniform_partitions;
use kvs_cluster::ClusterData;
use kvs_net::{
    spawn_local_cluster, spawn_local_cluster_durable, DurableClusterConfig, NetConfig, NetMaster,
    NetServerConfig,
};
use kvs_store::{CrashPoint, DurableOptions, DurableTable, FsyncPolicy, TableOptions, TempDir};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

const NODES: u32 = 3;
const RF: usize = 2;
const PARTITIONS: u64 = 24;
const CELLS: u64 = 6;
const WAL_TAIL: usize = 2;

fn data() -> ClusterData {
    ClusterData::load(
        NODES,
        RF,
        TableOptions::default(),
        uniform_partitions(PARTITIONS, CELLS, 4),
    )
}

fn durable_cfg(root: &TempDir) -> DurableClusterConfig {
    DurableClusterConfig {
        root: root.path().to_path_buf(),
        store: DurableOptions {
            fsync: FsyncPolicy::Never, // the process survives; files do too
            ..DurableOptions::default()
        },
        wal_tail: WAL_TAIL,
    }
}

fn cfg() -> NetConfig {
    NetConfig {
        timeout: Duration::from_millis(100),
        max_retries: 2,
        ..NetConfig::default()
    }
}

/// The fault-free answer every durable/chaotic run must reproduce.
fn oracle() -> BTreeMap<u8, u64> {
    let (cluster, routes) =
        spawn_local_cluster(data(), NetServerConfig::default()).expect("oracle cluster boots");
    let mut master =
        NetMaster::connect(&cluster.addrs(), NetConfig::default()).expect("oracle connects");
    let report = master.run_query(&routes).expect("oracle succeeds");
    master.shutdown();
    cluster.shutdown();
    assert_eq!(report.result.total_cells, PARTITIONS * CELLS);
    report.result.counts_by_kind
}

/// Runs the aggregation over the durable cluster and asserts it matches
/// the fault-free oracle bit-for-bit.
fn assert_matches_oracle(
    cluster: &kvs_net::LocalCluster,
    routes: &[kvs_net::Route],
    expected: &BTreeMap<u8, u64>,
    context: &str,
) {
    let mut master = NetMaster::connect(&cluster.addrs(), cfg()).expect("master connects");
    let report = master.run_query(routes).expect("query succeeds");
    master.shutdown();
    assert_eq!(
        report.result.total_cells,
        PARTITIONS * CELLS,
        "{context}: lost values"
    );
    assert_eq!(
        &report.result.counts_by_kind, expected,
        "{context}: wrong values"
    );
}

#[test]
fn durable_cluster_serves_the_same_aggregation_as_ram() {
    let expected = oracle();
    let root = TempDir::new("rec-base");
    let (cluster, routes) =
        spawn_local_cluster_durable(data(), NetServerConfig::default(), durable_cfg(&root))
            .expect("durable cluster boots");
    assert_matches_oracle(&cluster, &routes, &expected, "durable vs ram");
    cluster.shutdown();
}

#[test]
fn every_node_recovers_from_disk_after_a_kill() {
    let expected = oracle();
    let root = TempDir::new("rec-cycle");
    let (mut cluster, routes) =
        spawn_local_cluster_durable(data(), NetServerConfig::default(), durable_cfg(&root))
            .expect("durable cluster boots");
    for node in 0..NODES {
        cluster.kill(node);
        assert!(!cluster.is_up(node));
        cluster.restart(node).expect("restart succeeds");
        let report = cluster
            .last_recovery(node)
            .expect("durable restart records a report");
        assert!(
            report.sstables_loaded >= 1,
            "node {node}: seeded SSTable not recovered: {report:?}"
        );
        assert!(
            report.wal_records_replayed > 0,
            "node {node}: seeded WAL tail not replayed: {report:?}"
        );
        assert_matches_oracle(
            &cluster,
            &routes,
            &expected,
            &format!("after kill/restart of node {node}"),
        );
    }
    cluster.shutdown();
}

/// Seeded kill-mid-query rounds: with rf = 2 the in-flight query must
/// still return the full oracle answer, and the victim's restart must
/// recover from disk alone.
#[test]
fn seeded_kills_mid_query_lose_nothing() {
    let expected = oracle();
    let root = TempDir::new("rec-mid");
    let (mut cluster, routes) =
        spawn_local_cluster_durable(data(), NetServerConfig::default(), durable_cfg(&root))
            .expect("durable cluster boots");
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for round in 0..4u32 {
        for node in 0..NODES {
            if !cluster.is_up(node) {
                cluster.restart(node).expect("restart succeeds");
                let report = cluster.last_recovery(node).expect("recovery recorded");
                assert!(
                    report.wal_records_replayed > 0,
                    "round {round}: node {node} recovered nothing: {report:?}"
                );
            }
        }
        let master = NetMaster::connect(&cluster.addrs(), cfg()).expect("master connects");
        let query_routes = routes.clone();
        let worker = std::thread::spawn(move || {
            let mut master = master;
            let result = master.run_query(&query_routes);
            (result, master)
        });
        let victim = rng.gen_range(0..NODES);
        std::thread::sleep(Duration::from_millis(rng.gen_range(1..10)));
        cluster.kill(victim);
        let (result, master) = worker.join().expect("query thread never panics");
        let report = result.expect("rf = 2 survives a single kill");
        assert_eq!(
            report.result.total_cells,
            PARTITIONS * CELLS,
            "round {round}: lost values after killing node {victim}"
        );
        assert_eq!(
            report.result.counts_by_kind, expected,
            "round {round}: wrong values after killing node {victim}"
        );
        master.shutdown();
    }
    cluster.shutdown();
}

/// Crash injected *inside* a flush and a compaction on a node's
/// directory between cluster incarnations: the cluster restart must run
/// recovery over the half-finished state and still serve the oracle.
#[test]
fn crash_during_flush_and_compaction_recovers_to_oracle() {
    let expected = oracle();
    let root = TempDir::new("rec-crash");
    let dcfg = durable_cfg(&root);
    let (mut cluster, routes) =
        spawn_local_cluster_durable(data(), NetServerConfig::default(), dcfg.clone())
            .expect("durable cluster boots");

    for (label, crash) in [
        ("flush", CrashPoint::AfterFlushSstWrite),
        ("compaction", CrashPoint::AfterCompactSstWrite),
    ] {
        cluster.kill(0);
        // Maul node 0's directory the way a mid-operation crash would:
        // reopen it, drive it into the armed operation, let the injected
        // crash poison it, and walk away.
        {
            let dir = root.path().join("node-0");
            let (mut table, _) = DurableTable::open(&dir, dcfg.store.clone()).expect("direct open");
            if crash == CrashPoint::AfterCompactSstWrite {
                // A compaction needs at least two runs: flush the
                // replayed WAL tail into a second SSTable first.
                table.flush().expect("setup flush");
                table.arm_crash_point(crash);
                table.compact().expect_err("armed compaction must fail");
            } else {
                table.arm_crash_point(crash);
                // The recovered WAL tail is sitting in the memtable, so
                // the flush has real work to crash in the middle of.
                table.flush().expect_err("armed flush must fail");
            }
        }
        cluster.restart(0).expect("restart succeeds");
        let report = cluster.last_recovery(0).expect("recovery recorded");
        assert!(
            report.orphan_files_removed >= 1,
            "crash during {label} left no orphan to clean: {report:?}"
        );
        assert_matches_oracle(
            &cluster,
            &routes,
            &expected,
            &format!("after crash during {label}"),
        );
    }
    cluster.shutdown();
}
