//! Clean-shutdown check: booting and tearing down a cluster + master must
//! return the process to its original thread count. Lives in its own test
//! binary (= its own process) so no sibling test's threads pollute the
//! count.

use kvs_cluster::data::uniform_partitions;
use kvs_cluster::ClusterData;
use kvs_net::{spawn_local_cluster, NetConfig, NetMaster, NetServerConfig};
use kvs_store::TableOptions;

fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs available");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line present")
}

#[test]
fn shutdown_leaks_no_threads() {
    let before = thread_count();
    for round in 0..3 {
        let data = ClusterData::load(4, 1, TableOptions::default(), uniform_partitions(32, 8, 4));
        let (cluster, routes) =
            spawn_local_cluster(data, NetServerConfig::default()).expect("cluster boots");
        let mut master =
            NetMaster::connect(&cluster.addrs(), NetConfig::default()).expect("master connects");
        let report = master.run_query(&routes).expect("query succeeds");
        assert_eq!(report.result.total_cells, 32 * 8, "round {round}");
        assert!(thread_count() > before, "servers must actually run threads");
        master.shutdown();
        cluster.shutdown();
        assert_eq!(thread_count(), before, "threads leaked after round {round}");
    }
}
