//! Phi-accrual failure detection (Hayashibara et al., SRDS 2004).
//!
//! The binary alive/dead heuristic of PR 2 ("retry budget exhausted ⇒
//! dead") is a blunt instrument: it only fires after the full timeout ×
//! retries window, and it cannot express "this node is *probably* slow,
//! prefer another replica". The phi-accrual detector replaces the binary
//! verdict with a continuous suspicion level computed from the observed
//! inter-arrival distribution of a node's responses:
//!
//! ```text
//! phi(t_now) = -log10( P(next arrival > t_now − t_last) )
//! ```
//!
//! where the arrival distribution is modelled as a normal fit over a
//! sliding window of recent inter-arrival gaps. A node that answers every
//! few hundred microseconds accrues suspicion within a handful of
//! milliseconds of going quiet; a node with naturally lumpy traffic needs
//! proportionally longer silence before the same phi. The master uses phi
//! both to order replicas (hedge and fail over toward the *least* suspect
//! node) and to stop hedging toward nodes that are probably dying.
//!
//! A threshold of `phi ≥ 8` means "the chance this silence is ordinary
//! jitter is ≤ 10⁻⁸" — the conventional production setting, and the
//! default in [`crate::NetConfig`].

use std::collections::VecDeque;
use std::time::Instant;

/// Sliding-window phi-accrual detector for one node.
#[derive(Debug)]
pub struct PhiAccrual {
    /// Recent inter-arrival gaps, seconds.
    gaps: VecDeque<f64>,
    window: usize,
    last_arrival: Option<Instant>,
}

/// Gaps retained for the distribution fit.
const DEFAULT_WINDOW: usize = 128;
/// Arrivals required before the detector expresses an opinion; below
/// this, [`PhiAccrual::phi`] is `0.0` (no suspicion) so cold starts do
/// not condemn a node that simply has not been talked to yet.
const MIN_SAMPLES: usize = 8;
/// Floor on the fitted standard deviation, seconds. Loopback arrivals
/// can be near-metronomic; without a floor the normal fit collapses and
/// a microsecond of jitter reads as certain death.
const MIN_STDDEV: f64 = 500e-6;

impl Default for PhiAccrual {
    fn default() -> Self {
        PhiAccrual::new(DEFAULT_WINDOW)
    }
}

impl PhiAccrual {
    /// A detector fitting over at most `window` recent gaps.
    pub fn new(window: usize) -> Self {
        PhiAccrual {
            gaps: VecDeque::with_capacity(window.max(2)),
            window: window.max(2),
            last_arrival: None,
        }
    }

    /// Records an arrival (any frame from the node — response, busy or
    /// expired all prove liveness).
    pub fn heartbeat(&mut self, now: Instant) {
        if let Some(last) = self.last_arrival {
            let gap = now.saturating_duration_since(last).as_secs_f64();
            if self.gaps.len() == self.window {
                self.gaps.pop_front();
            }
            self.gaps.push_back(gap);
        }
        self.last_arrival = Some(now);
    }

    /// Current suspicion level. `0.0` until enough arrivals have been
    /// seen; grows without bound the longer the node stays silent past
    /// its fitted arrival distribution.
    pub fn phi(&self, now: Instant) -> f64 {
        let Some(last) = self.last_arrival else {
            return 0.0;
        };
        if self.gaps.len() < MIN_SAMPLES {
            return 0.0;
        }
        let silence = now.saturating_duration_since(last).as_secs_f64();
        let n = self.gaps.len() as f64;
        let mean = self.gaps.iter().sum::<f64>() / n;
        let var = self.gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
        let stddev = var.sqrt().max(MIN_STDDEV);
        let y = (silence - mean) / stddev;
        // Logistic approximation of the normal CDF (Bowling et al. 2009,
        // accurate to ~1.4e-4): P(arrival later) = 1 / (1 + e^g) with
        // g = y·(1.5976 + 0.070566·y²), so phi = log10(1 + e^g). Computed
        // in log space: a deeply silent node keeps accruing suspicion
        // monotonically instead of saturating at the first f64 underflow.
        let g = y * (1.5976 + 0.070566 * y * y);
        if g > 30.0 {
            g / std::f64::consts::LN_10
        } else {
            g.exp().ln_1p() / std::f64::consts::LN_10
        }
    }

    /// Arrivals recorded so far (gaps, i.e. arrivals minus one).
    pub fn samples(&self) -> usize {
        self.gaps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fed(gap: Duration, beats: usize) -> (PhiAccrual, Instant) {
        let mut d = PhiAccrual::default();
        let t0 = Instant::now();
        let mut t = t0;
        for _ in 0..beats {
            d.heartbeat(t);
            t += gap;
        }
        // `t` is one gap past the last heartbeat.
        (d, t - gap)
    }

    #[test]
    fn silent_before_enough_samples() {
        let (d, last) = fed(Duration::from_millis(1), MIN_SAMPLES); // MIN_SAMPLES−1 gaps
        assert_eq!(d.phi(last + Duration::from_secs(10)), 0.0);
    }

    #[test]
    fn regular_heartbeats_keep_phi_low() {
        let (d, last) = fed(Duration::from_millis(1), 64);
        // Right at the expected next arrival: suspicion ≈ coin flip or less.
        assert!(d.phi(last + Duration::from_millis(1)) < 1.0);
    }

    #[test]
    fn silence_accrues_suspicion_monotonically() {
        let (d, last) = fed(Duration::from_millis(1), 64);
        let p5 = d.phi(last + Duration::from_millis(5));
        let p20 = d.phi(last + Duration::from_millis(20));
        let p100 = d.phi(last + Duration::from_millis(100));
        assert!(p5 < p20 && p20 < p100, "{p5} {p20} {p100}");
        assert!(p100 > 8.0, "long silence must cross the usual threshold");
    }

    #[test]
    fn lumpy_traffic_needs_longer_silence() {
        // Same mean gap, much larger spread ⇒ slower suspicion accrual.
        let mut lumpy = PhiAccrual::default();
        let t0 = Instant::now();
        let mut t = t0;
        for i in 0..64 {
            lumpy.heartbeat(t);
            t += Duration::from_millis(if i % 2 == 0 { 1 } else { 19 });
        }
        let last = t - Duration::from_millis(19);
        let (steady, steady_last) = fed(Duration::from_millis(10), 64);
        let after = Duration::from_millis(25);
        assert!(lumpy.phi(last + after) < steady.phi(steady_last + after));
    }

    #[test]
    fn heartbeat_resets_suspicion() {
        let (mut d, last) = fed(Duration::from_millis(1), 64);
        let late = last + Duration::from_millis(200);
        assert!(d.phi(late) > 8.0);
        d.heartbeat(late);
        assert!(d.phi(late + Duration::from_millis(1)) < 8.0);
    }
}
