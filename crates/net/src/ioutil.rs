//! Crate-internal helpers for error paths that have no recovery: the
//! error-discipline lint (KVS-L003) bans silent `let _ =` drops, and
//! these are the sanctioned replacements — disconnects stay quiet
//! (peers are allowed to vanish mid-run; chaos tests make them), every
//! other failure is logged so a real fault never disappears.

use std::io;
use std::thread::JoinHandle;

/// Error kinds that mean "the peer went away" — routine during shutdown,
/// failover and chaos runs, not worth a log line.
fn is_disconnect(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
    )
}

/// Handles an [`io::Result`] whose failure has no recovery path.
pub(crate) fn best_effort(context: &str, res: io::Result<()>) {
    if let Err(e) = res {
        if !is_disconnect(e.kind()) {
            eprintln!("kvs-net: {context}: {e}");
        }
    }
}

/// Joins a thread, logging (instead of swallowing) a panicked peer.
pub(crate) fn join_logged(context: &str, handle: JoinHandle<()>) {
    if handle.join().is_err() {
        eprintln!("kvs-net: {context}: thread panicked");
    }
}
