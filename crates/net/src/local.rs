//! In-process loopback clusters: N slave servers on ephemeral ports, one
//! per node of a [`ClusterData`] placement, with deterministic teardown.
//! This is the harness the integration tests, the calibration path, the
//! chaos suite, and the `net_loadgen` benchmark all boot.
//!
//! Slaves can be [`killed`](LocalCluster::kill) and
//! [`restarted`](LocalCluster::restart) individually. What a kill means
//! depends on the tier:
//!
//! * **RAM cluster** ([`spawn_local_cluster`]): the server tears down
//!   (its connections drop, so a connected master sees EOF and fails
//!   over) but the node's [`Table`] is kept in memory, and a restart
//!   serves the same table on a fresh port — the pre-durability
//!   behavior.
//! * **Durable cluster** ([`spawn_local_cluster_durable`]): the kill
//!   *drops* the node's [`DurableTable`] entirely — exactly what a
//!   crash leaves behind is what is on disk — and the restart runs real
//!   crash recovery ([`kvs_store::RecoveryReport`] queryable via
//!   [`LocalCluster::last_recovery`]): manifest load, live-SSTable open,
//!   orphan cleanup and WAL replay.

use crate::master::Route;
use crate::server::{NetServerConfig, NodeStore, SlaveHandle, SlaveServer};
use kvs_cluster::queue::QueueStats;
use kvs_cluster::ClusterData;
use kvs_store::{DurableOptions, DurableTable, RecoveryReport, Table};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;

/// One node's slot in the cluster: a running server, or a killed one.
enum Slot {
    Up(SlaveHandle),
    /// A killed RAM node: its data waits in memory for a restart.
    DownRam {
        /// Last address the server listened on (now closed); kept so
        /// [`LocalCluster::addrs`] stays stable-length while a node is
        /// down.
        addr: SocketAddr,
        table: Table,
    },
    /// A killed durable node: nothing survives in memory — the restart
    /// recovers from the node's directory.
    DownDurable {
        /// Last address the server listened on (now closed).
        addr: SocketAddr,
    },
}

/// Configuration of a durable loopback cluster.
#[derive(Debug, Clone)]
pub struct DurableClusterConfig {
    /// Root directory; node `n` persists under `<root>/node-<n>`.
    pub root: PathBuf,
    /// Storage options for every node's [`DurableTable`].
    pub store: DurableOptions,
    /// During seeding, the trailing `wal_tail` cells of every partition
    /// go through [`DurableTable::put`] (so they live in the WAL, and a
    /// restart exercises replay); the rest bulk-load via
    /// [`DurableTable::ingest_sorted`] straight into an SSTable.
    pub wal_tail: usize,
}

/// A running set of slave servers.
pub struct LocalCluster {
    slots: Vec<Slot>,
    cfg: NetServerConfig,
    /// `Some` when this is a durable cluster: restart options and the
    /// per-node recovery reports.
    durable: Option<DurableClusterConfig>,
    recoveries: Vec<Option<RecoveryReport>>,
    /// Queue stats accumulated from servers that have been killed (their
    /// live counters die with them).
    downed_stats: QueueStats,
}

impl LocalCluster {
    /// The servers' addresses, indexed by node id (feed to
    /// [`crate::NetMaster::connect`]). A down node reports its last
    /// address; connecting to it will fail until it is restarted.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Up(h) => h.addr(),
                Slot::DownRam { addr, .. } => *addr,
                Slot::DownDurable { addr } => *addr,
            })
            .collect()
    }

    /// Number of slave servers (up or down).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cluster has no servers.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether node `node` currently has a running server.
    pub fn is_up(&self, node: u32) -> bool {
        matches!(self.slots.get(node as usize), Some(Slot::Up(_)))
    }

    /// The recovery report of node `node`'s most recent
    /// [`restart`](LocalCluster::restart) — durable clusters only, and
    /// `None` before the first restart.
    pub fn last_recovery(&self, node: u32) -> Option<&RecoveryReport> {
        self.recoveries.get(node as usize)?.as_ref()
    }

    /// Kills node `node`: shuts its server down (connected masters see
    /// EOF immediately). A RAM node keeps its table for a later
    /// [`LocalCluster::restart`]; a durable node's store is dropped —
    /// only its directory survives, as after a real crash. No-op if the
    /// node is already down.
    pub fn kill(&mut self, node: u32) {
        let ix = node as usize;
        assert!(ix < self.slots.len(), "no node {node}");
        // Temporarily park a placeholder so we can move the handle out.
        let placeholder = Slot::DownDurable {
            addr: ([127, 0, 0, 1], 0).into(),
        };
        let slot = std::mem::replace(&mut self.slots[ix], placeholder);
        self.slots[ix] = match slot {
            Slot::Up(h) => {
                let addr = h.addr();
                let (stats, store) = h.shutdown_take_store();
                self.downed_stats.merge(&stats);
                match store {
                    NodeStore::Ram(table) => Slot::DownRam { addr, table },
                    // Dropping the DurableTable is the crash: whatever
                    // it had not committed to WAL/SSTables is gone.
                    NodeStore::Durable(_) => Slot::DownDurable { addr },
                }
            }
            down => down,
        };
    }

    /// Restarts a killed node on a fresh ephemeral port. A RAM node
    /// serves the same table it held when killed; a durable node reopens
    /// its directory — manifest load, orphan cleanup, WAL replay — and
    /// records the [`RecoveryReport`] (see
    /// [`LocalCluster::last_recovery`]). Returns the new address. No-op
    /// (returns the current address) if the node is already up.
    pub fn restart(&mut self, node: u32) -> io::Result<SocketAddr> {
        let ix = node as usize;
        assert!(ix < self.slots.len(), "no node {node}");
        if let Slot::Up(h) = &self.slots[ix] {
            return Ok(h.addr());
        }
        let placeholder = Slot::DownDurable {
            addr: ([127, 0, 0, 1], 0).into(),
        };
        let slot = std::mem::replace(&mut self.slots[ix], placeholder);
        let (addr, store) = match slot {
            Slot::Up(_) => unreachable!("checked Up above"),
            Slot::DownRam { addr, table } => (addr, NodeStore::Ram(table)),
            Slot::DownDurable { addr } => {
                let Some(dcfg) = &self.durable else {
                    // A durable Down slot in a RAM cluster only exists as
                    // the transient placeholder above; reaching it here
                    // means a restart raced a panic. Fail closed.
                    self.slots[ix] = Slot::DownDurable { addr };
                    return Err(io::Error::other("node has no recoverable state"));
                };
                let dir = node_dir(&dcfg.root, node);
                match DurableTable::open(&dir, dcfg.store.clone()) {
                    Ok((table, report)) => {
                        self.recoveries[ix] = Some(report);
                        (addr, NodeStore::Durable(table))
                    }
                    Err(e) => {
                        self.slots[ix] = Slot::DownDurable { addr };
                        return Err(e);
                    }
                }
            }
        };
        match SlaveServer::spawn_store(store, self.cfg) {
            Ok(handle) => {
                let new_addr = handle.addr();
                self.slots[ix] = Slot::Up(handle);
                Ok(new_addr)
            }
            Err(e) => {
                // Spawn consumed the store. A durable node loses nothing
                // (its data is on disk); a RAM node's table is gone, so
                // park the slot as durable-style empty either way.
                self.slots[ix] = Slot::DownDurable { addr };
                Err(e)
            }
        }
    }

    /// Work-queue backpressure counters merged over every live server,
    /// plus those of servers killed earlier.
    pub fn queue_stats(&self) -> QueueStats {
        let mut merged = self.downed_stats;
        for s in &self.slots {
            if let Slot::Up(h) = s {
                merged.merge(&h.queue_stats());
            }
        }
        merged
    }

    /// Stops every server deterministically (disconnect masters first so
    /// the connection readers see EOF immediately; they also poll a stop
    /// flag, so shutdown completes regardless). Returns the merged queue
    /// stats, including those of servers killed mid-run.
    pub fn shutdown(self) -> QueueStats {
        let mut merged = self.downed_stats;
        for s in self.slots {
            if let Slot::Up(h) = s {
                merged.merge(&h.shutdown());
            }
        }
        merged
    }
}

fn node_dir(root: &std::path::Path, node: u32) -> PathBuf {
    root.join(format!("node-{node}"))
}

/// Builds the routed key list of `data`: every partition paired with its
/// full replica set (primary first), in placement order.
fn routes_of(data: &ClusterData) -> Vec<Route> {
    data.partitions()
        .map(|(pk, _cells)| {
            let replicas = data.replicas_of(pk).to_vec();
            assert!(!replicas.is_empty(), "unplaced partition {pk:?}");
            Route {
                key: pk.clone(),
                replicas,
            }
        })
        .collect()
}

/// Boots one slave server per node of `data` on ephemeral loopback ports.
///
/// Returns the cluster plus the routed key list — every partition paired
/// with its full replica set (primary first), in placement order — ready
/// for [`crate::NetMaster::run_query`]. With `replication_factor` 1 the
/// routes degenerate to the primary-only placement of earlier revisions.
pub fn spawn_local_cluster(
    data: ClusterData,
    cfg: NetServerConfig,
) -> io::Result<(LocalCluster, Vec<Route>)> {
    let routes = routes_of(&data);
    let mut slots = Vec::new();
    for table in data.into_tables() {
        match SlaveServer::spawn(table, cfg) {
            Ok(handle) => slots.push(Slot::Up(handle)),
            Err(e) => {
                // Don't leak the servers that did boot.
                for s in slots {
                    if let Slot::Up(h) = s {
                        h.shutdown();
                    }
                }
                return Err(e);
            }
        }
    }
    let recoveries = vec![None; slots.len()];
    Ok((
        LocalCluster {
            slots,
            cfg,
            durable: None,
            recoveries,
            downed_stats: QueueStats::default(),
        },
        routes,
    ))
}

/// Boots a *durable* loopback cluster: each node's data is persisted
/// under `dcfg.root/node-<n>` — the bulk via direct SSTable ingest, the
/// trailing `dcfg.wal_tail` cells of every partition via the WAL — and
/// each slave serves a [`DurableTable`]. A [`kill`](LocalCluster::kill)
/// then drops the node's store outright, and the
/// [`restart`](LocalCluster::restart) performs real crash recovery from
/// the directory.
pub fn spawn_local_cluster_durable(
    data: ClusterData,
    cfg: NetServerConfig,
    dcfg: DurableClusterConfig,
) -> io::Result<(LocalCluster, Vec<Route>)> {
    let routes = routes_of(&data);
    let mut slots: Vec<Slot> = Vec::new();
    let boot = |node: u32, table: &Table| -> io::Result<SlaveHandle> {
        let dir = node_dir(&dcfg.root, node);
        let (mut durable, _report) = DurableTable::open(&dir, dcfg.store.clone())?;
        let partitions = table.export_partitions();
        // Bulk of each partition straight to an SSTable …
        let mut bulk: Vec<_> = Vec::with_capacity(partitions.len());
        let mut tails: Vec<_> = Vec::new();
        for (pk, cells) in partitions {
            let split = cells.len().saturating_sub(dcfg.wal_tail);
            let mut cells = cells;
            let tail = cells.split_off(split);
            if !cells.is_empty() {
                bulk.push((pk.clone(), cells));
            }
            if !tail.is_empty() {
                tails.push((pk, tail));
            }
        }
        durable.ingest_sorted(&bulk)?;
        // … and the tail through the WAL, so a kill/restart cycle has
        // records to replay even without new writes.
        for (pk, tail) in tails {
            for cell in tail {
                durable.put(pk.clone(), cell)?;
            }
        }
        durable.sync_wal()?;
        SlaveServer::spawn_store(NodeStore::Durable(durable), cfg)
    };
    for (node, table) in data.into_tables().iter().enumerate() {
        match boot(node as u32, table) {
            Ok(handle) => slots.push(Slot::Up(handle)),
            Err(e) => {
                for s in slots {
                    if let Slot::Up(h) = s {
                        h.shutdown();
                    }
                }
                return Err(e);
            }
        }
    }
    let recoveries = vec![None; slots.len()];
    Ok((
        LocalCluster {
            slots,
            cfg,
            durable: Some(dcfg),
            recoveries,
            downed_stats: QueueStats::default(),
        },
        routes,
    ))
}
