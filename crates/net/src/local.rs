//! In-process loopback clusters: N slave servers on ephemeral ports, one
//! per node of a [`ClusterData`] placement, with deterministic teardown.
//! This is the harness the integration tests, the calibration path, and
//! the `net_loadgen` benchmark all boot.

use crate::server::{NetServerConfig, SlaveHandle, SlaveServer};
use kvs_cluster::queue::QueueStats;
use kvs_cluster::ClusterData;
use kvs_store::PartitionKey;
use std::io;
use std::net::SocketAddr;

/// A running set of slave servers.
pub struct LocalCluster {
    slaves: Vec<SlaveHandle>,
}

impl LocalCluster {
    /// The servers' addresses, indexed by node id (feed to
    /// [`crate::NetMaster::connect`]).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.slaves.iter().map(|s| s.addr()).collect()
    }

    /// Number of slave servers.
    pub fn len(&self) -> usize {
        self.slaves.len()
    }

    /// True when the cluster has no servers.
    pub fn is_empty(&self) -> bool {
        self.slaves.is_empty()
    }

    /// Work-queue backpressure counters merged over every server.
    pub fn queue_stats(&self) -> QueueStats {
        let mut merged = QueueStats::default();
        for s in &self.slaves {
            merged.merge(&s.queue_stats());
        }
        merged
    }

    /// Stops every server deterministically (disconnect masters first so
    /// the connection readers see EOF immediately; they also poll a stop
    /// flag, so shutdown completes regardless). Returns the merged queue
    /// stats.
    pub fn shutdown(self) -> QueueStats {
        let mut merged = QueueStats::default();
        for s in self.slaves {
            merged.merge(&s.shutdown());
        }
        merged
    }
}

/// Boots one slave server per node of `data` on ephemeral loopback ports.
///
/// Returns the cluster plus the routed key list — every partition paired
/// with its primary node, in placement order — ready for
/// [`crate::NetMaster::run_query`].
pub fn spawn_local_cluster(
    data: ClusterData,
    cfg: NetServerConfig,
) -> io::Result<(LocalCluster, Vec<(PartitionKey, u32)>)> {
    let routes: Vec<(PartitionKey, u32)> = data
        .partitions()
        .map(|(pk, _cells)| {
            let node = data
                .primary_of(pk)
                .unwrap_or_else(|| panic!("unplaced partition {pk:?}"));
            (pk.clone(), node)
        })
        .collect();
    let mut slaves = Vec::new();
    for table in data.into_tables() {
        match SlaveServer::spawn(table, cfg) {
            Ok(handle) => slaves.push(handle),
            Err(e) => {
                // Don't leak the servers that did boot.
                for s in slaves {
                    s.shutdown();
                }
                return Err(e);
            }
        }
    }
    Ok((LocalCluster { slaves }, routes))
}
