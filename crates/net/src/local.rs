//! In-process loopback clusters: N slave servers on ephemeral ports, one
//! per node of a [`ClusterData`] placement, with deterministic teardown.
//! This is the harness the integration tests, the calibration path, the
//! chaos suite, and the `net_loadgen` benchmark all boot.
//!
//! Slaves can be [`killed`](LocalCluster::kill) and
//! [`restarted`](LocalCluster::restart) individually: a kill tears the
//! server down (its connections drop, so a connected master sees EOF and
//! fails over) but keeps the node's [`Table`], and a restart boots a new
//! server over that same table on a fresh ephemeral port.

use crate::master::Route;
use crate::server::{NetServerConfig, SlaveHandle, SlaveServer};
use kvs_cluster::queue::QueueStats;
use kvs_cluster::ClusterData;
use kvs_store::{Table, TableOptions};
use std::io;
use std::net::SocketAddr;

/// One node's slot in the cluster: a running server, or a killed one
/// whose data waits for a restart.
enum Slot {
    Up(SlaveHandle),
    Down {
        /// Last address the server listened on (now closed); kept so
        /// [`LocalCluster::addrs`] stays stable-length while a node is
        /// down.
        addr: SocketAddr,
        table: Table,
    },
}

/// A running set of slave servers.
pub struct LocalCluster {
    slots: Vec<Slot>,
    cfg: NetServerConfig,
    /// Queue stats accumulated from servers that have been killed (their
    /// live counters die with them).
    downed_stats: QueueStats,
}

impl LocalCluster {
    /// The servers' addresses, indexed by node id (feed to
    /// [`crate::NetMaster::connect`]). A down node reports its last
    /// address; connecting to it will fail until it is restarted.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Up(h) => h.addr(),
                Slot::Down { addr, .. } => *addr,
            })
            .collect()
    }

    /// Number of slave servers (up or down).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cluster has no servers.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether node `node` currently has a running server.
    pub fn is_up(&self, node: u32) -> bool {
        matches!(self.slots.get(node as usize), Some(Slot::Up(_)))
    }

    /// Kills node `node`: shuts its server down (connected masters see
    /// EOF immediately) but keeps its table for a later
    /// [`LocalCluster::restart`]. No-op if the node is already down.
    pub fn kill(&mut self, node: u32) {
        let ix = node as usize;
        assert!(ix < self.slots.len(), "no node {node}");
        // Temporarily park a placeholder so we can move the handle out.
        let slot = std::mem::replace(
            &mut self.slots[ix],
            Slot::Down {
                addr: ([127, 0, 0, 1], 0).into(),
                table: Table::new(TableOptions::default()),
            },
        );
        self.slots[ix] = match slot {
            Slot::Up(h) => {
                let addr = h.addr();
                let (stats, table) = h.shutdown_take_table();
                self.downed_stats.merge(&stats);
                Slot::Down { addr, table }
            }
            down => down,
        };
    }

    /// Restarts a killed node on a fresh ephemeral port, serving the same
    /// table it held when killed. Returns the new address. No-op (returns
    /// the current address) if the node is already up.
    pub fn restart(&mut self, node: u32) -> io::Result<SocketAddr> {
        let ix = node as usize;
        assert!(ix < self.slots.len(), "no node {node}");
        if let Slot::Up(h) = &self.slots[ix] {
            return Ok(h.addr());
        }
        let slot = std::mem::replace(
            &mut self.slots[ix],
            Slot::Down {
                addr: ([127, 0, 0, 1], 0).into(),
                table: Table::new(TableOptions::default()),
            },
        );
        let Slot::Down { addr, table } = slot else {
            unreachable!("checked Up above");
        };
        match SlaveServer::spawn(table, self.cfg) {
            Ok(handle) => {
                let new_addr = handle.addr();
                self.slots[ix] = Slot::Up(handle);
                Ok(new_addr)
            }
            Err(e) => {
                // Spawn consumed the table on success only; on failure we
                // lost it — park the slot with an empty table so the
                // cluster stays shut-downable.
                self.slots[ix] = Slot::Down {
                    addr,
                    table: Table::new(TableOptions::default()),
                };
                Err(e)
            }
        }
    }

    /// Work-queue backpressure counters merged over every live server,
    /// plus those of servers killed earlier.
    pub fn queue_stats(&self) -> QueueStats {
        let mut merged = self.downed_stats;
        for s in &self.slots {
            if let Slot::Up(h) = s {
                merged.merge(&h.queue_stats());
            }
        }
        merged
    }

    /// Stops every server deterministically (disconnect masters first so
    /// the connection readers see EOF immediately; they also poll a stop
    /// flag, so shutdown completes regardless). Returns the merged queue
    /// stats, including those of servers killed mid-run.
    pub fn shutdown(self) -> QueueStats {
        let mut merged = self.downed_stats;
        for s in self.slots {
            if let Slot::Up(h) = s {
                merged.merge(&h.shutdown());
            }
        }
        merged
    }
}

/// Boots one slave server per node of `data` on ephemeral loopback ports.
///
/// Returns the cluster plus the routed key list — every partition paired
/// with its full replica set (primary first), in placement order — ready
/// for [`crate::NetMaster::run_query`]. With `replication_factor` 1 the
/// routes degenerate to the primary-only placement of earlier revisions.
pub fn spawn_local_cluster(
    data: ClusterData,
    cfg: NetServerConfig,
) -> io::Result<(LocalCluster, Vec<Route>)> {
    let routes: Vec<Route> = data
        .partitions()
        .map(|(pk, _cells)| {
            let replicas = data.replicas_of(pk).to_vec();
            assert!(!replicas.is_empty(), "unplaced partition {pk:?}");
            Route {
                key: pk.clone(),
                replicas,
            }
        })
        .collect();
    let mut slots = Vec::new();
    for table in data.into_tables() {
        match SlaveServer::spawn(table, cfg) {
            Ok(handle) => slots.push(Slot::Up(handle)),
            Err(e) => {
                // Don't leak the servers that did boot.
                for s in slots {
                    if let Slot::Up(h) = s {
                        h.shutdown();
                    }
                }
                return Err(e);
            }
        }
    }
    Ok((
        LocalCluster {
            slots,
            cfg,
            downed_stats: QueueStats::default(),
        },
        routes,
    ))
}
