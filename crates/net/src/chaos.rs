//! Deterministic fault injection for the TCP engine.
//!
//! [`ChaosProxy`] is a per-slave TCP interposer: the master connects to
//! the proxy, the proxy connects to the real [`crate::SlaveServer`], and
//! every byte crossing it is deframed with the production
//! [`Frame::decode`] so faults land *byte-accurately at frame
//! boundaries* — a dropped frame is exactly one request or response,
//! a corrupted frame is a real CRC failure, a truncation is a mid-frame
//! connection cut.
//!
//! Faults are driven by a declarative [`ChaosSchedule`]: a seed, an
//! optional blackhole instant, and a list of [`ChaosRule`]s matched in
//! order against each frame (direction, frame-index window, probability
//! under a seeded RNG). The same schedule + seed replays the same fault
//! sequence, which is what makes the robustness suite deterministic.
//!
//! The proxy also audits the master's send-sequence discipline: request,
//! write and RMW frames carry a monotone sequence number in `stamps[2]`,
//! and any regression observed on a connection increments
//! [`ChaosStats::seq_regressions`].

use crate::frame::{Frame, FrameKind, HEADER_LEN};
use crate::ioutil::{best_effort, join_logged};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which flow a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDirection {
    /// Master → slave (requests).
    ToSlave,
    /// Slave → master (responses and `Busy` frames).
    ToMaster,
    /// Both flows.
    Both,
}

impl ChaosDirection {
    fn covers(self, to_slave: bool) -> bool {
        match self {
            ChaosDirection::ToSlave => to_slave,
            ChaosDirection::ToMaster => !to_slave,
            ChaosDirection::Both => true,
        }
    }
}

/// What happens to a frame a rule fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Hold the frame for the given duration, then forward it intact.
    Delay(Duration),
    /// Silently discard the frame (the retry path must recover it).
    Drop,
    /// Forward the frame twice back-to-back (duplicate delivery).
    Duplicate,
    /// Forward only the first `n` bytes of the frame, then cut the
    /// connection — a mid-frame crash.
    Truncate(usize),
    /// Flip a checksum byte so the receiver sees a CRC failure and must
    /// drop the connection (the stream cannot be re-synchronized).
    CorruptCrc,
    /// Cut the connection instead of forwarding the frame.
    Disconnect,
}

/// One declarative fault rule. Rules are evaluated in order; the first
/// rule whose direction covers the frame, whose frame-index window
/// contains it, and whose probability coin lands, fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosRule {
    /// Flow(s) this rule watches.
    pub direction: ChaosDirection,
    /// The fault to inject.
    pub action: FaultAction,
    /// Chance the rule fires on an eligible frame, in `[0, 1]`.
    pub probability: f64,
    /// First frame index (per proxy and direction, 0-based) the rule is
    /// live from.
    pub after_frame: u64,
    /// Frame index the rule stops at (exclusive); `None` = forever. A
    /// bounded window is what makes a schedule
    /// [eventually quiet](ChaosSchedule::eventually_quiet).
    pub until_frame: Option<u64>,
}

/// A complete fault scenario for one proxy: seed, rules, and an optional
/// point in time after which the slave goes silent.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// Seed of the per-connection fault RNG; same seed + same traffic ⇒
    /// same faults.
    pub seed: u64,
    /// Rules, evaluated in order (first match wins).
    pub rules: Vec<ChaosRule>,
    /// From this long after proxy start, every frame in both directions
    /// is swallowed while the connections stay open — the asymmetric
    /// "node alive but unreachable" failure the paper's `NodeFailure`
    /// models. `Duration::ZERO` blackholes from the first byte.
    pub blackhole_from: Option<Duration>,
}

impl ChaosSchedule {
    /// A schedule that injects nothing — the proxy becomes a transparent
    /// (but still frame-auditing) relay.
    pub fn passthrough(seed: u64) -> ChaosSchedule {
        ChaosSchedule {
            seed,
            rules: Vec::new(),
            blackhole_from: None,
        }
    }

    /// A schedule whose only fault is a total blackhole starting `from`
    /// after proxy start.
    pub fn blackhole_at(seed: u64, from: Duration) -> ChaosSchedule {
        ChaosSchedule {
            seed,
            rules: Vec::new(),
            blackhole_from: Some(from),
        }
    }

    /// Whether this schedule stops injecting after finitely many frames:
    /// no blackhole, and every rule's window is bounded (or its
    /// probability is zero). Property tests only generate eventually
    /// quiet schedules — an eventually quiet fault source plus bounded
    /// retries means every query terminates.
    pub fn eventually_quiet(&self) -> bool {
        self.blackhole_from.is_none()
            && self
                .rules
                .iter()
                .all(|r| r.until_frame.is_some() || r.probability <= 0.0)
    }

    /// Parses the schedule file format (a TOML subset; see
    /// `docs/NET.md`). Top-level `key = value` lines set `seed` and
    /// `blackhole_from_ms`; each `[[rule]]` section sets `direction`,
    /// `action`, `probability`, `delay_ms`, `truncate_bytes`,
    /// `after_frame`, `until_frame`. `#` starts a comment.
    pub fn parse(text: &str) -> Result<ChaosSchedule, String> {
        let mut schedule = ChaosSchedule::passthrough(0);
        // Raw per-rule fields, resolved into a ChaosRule at section end.
        #[derive(Default)]
        struct Raw {
            direction: Option<String>,
            action: Option<String>,
            probability: Option<f64>,
            delay_ms: Option<u64>,
            truncate_bytes: Option<usize>,
            after_frame: Option<u64>,
            until_frame: Option<u64>,
        }
        fn resolve(raw: Raw) -> Result<ChaosRule, String> {
            let direction = match raw.direction.as_deref() {
                Some("to_slave") => ChaosDirection::ToSlave,
                Some("to_master") => ChaosDirection::ToMaster,
                Some("both") | None => ChaosDirection::Both,
                Some(other) => return Err(format!("unknown direction {other:?}")),
            };
            let action = match raw.action.as_deref() {
                Some("delay") => FaultAction::Delay(Duration::from_millis(
                    raw.delay_ms.ok_or("delay rule needs delay_ms")?,
                )),
                Some("drop") => FaultAction::Drop,
                Some("duplicate") => FaultAction::Duplicate,
                Some("truncate") => FaultAction::Truncate(
                    raw.truncate_bytes
                        .ok_or("truncate rule needs truncate_bytes")?,
                ),
                Some("corrupt_crc") => FaultAction::CorruptCrc,
                Some("disconnect") => FaultAction::Disconnect,
                Some(other) => return Err(format!("unknown action {other:?}")),
                None => return Err("rule without action".to_string()),
            };
            // Parameters that only one action consumes are rejected on any
            // other — a schedule that silently ignores a knob reads as
            // injecting a fault it is not.
            if raw.delay_ms.is_some() && !matches!(action, FaultAction::Delay(_)) {
                return Err("delay_ms is only valid on action = \"delay\"".to_string());
            }
            if raw.truncate_bytes.is_some() && !matches!(action, FaultAction::Truncate(_)) {
                return Err("truncate_bytes is only valid on action = \"truncate\"".to_string());
            }
            let probability = raw.probability.unwrap_or(1.0);
            if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
                return Err(format!(
                    "probability {probability} outside [0, 1] (must be a finite fraction)"
                ));
            }
            let after_frame = raw.after_frame.unwrap_or(0);
            if let Some(until) = raw.until_frame {
                if until <= after_frame {
                    return Err(format!(
                        "empty window: until_frame {until} must exceed after_frame {after_frame}"
                    ));
                }
            }
            Ok(ChaosRule {
                direction,
                action,
                probability,
                after_frame,
                until_frame: raw.until_frame,
            })
        }
        /// Rejects the second assignment of one key within a scope: a
        /// duplicated key is almost always an editing mistake, and "last
        /// one wins" would silently run a different schedule than the one
        /// the author reads.
        fn set<T>(slot: &mut Option<T>, value: T, key: &str, lineno: usize) -> Result<(), String> {
            if slot.is_some() {
                return Err(format!("line {}: duplicate key {key:?}", lineno + 1));
            }
            *slot = Some(value);
            Ok(())
        }
        let mut current: Option<Raw> = None;
        let mut seen_seed = false;
        let mut seen_blackhole = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[rule]]" {
                if let Some(raw) = current.take() {
                    schedule.rules.push(resolve(raw)?);
                }
                current = Some(Raw::default());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim().trim_matches('"'));
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))
            };
            match (&mut current, key) {
                (None, "seed") => {
                    if seen_seed {
                        return Err(format!("line {}: duplicate key \"seed\"", lineno + 1));
                    }
                    seen_seed = true;
                    schedule.seed = parse_u64(value)?;
                }
                (None, "blackhole_from_ms") => {
                    if seen_blackhole {
                        return Err(format!(
                            "line {}: duplicate key \"blackhole_from_ms\"",
                            lineno + 1
                        ));
                    }
                    seen_blackhole = true;
                    schedule.blackhole_from = Some(Duration::from_millis(parse_u64(value)?));
                }
                (None, other) => return Err(format!("unknown top-level key {other:?}")),
                (Some(raw), "direction") => {
                    set(&mut raw.direction, value.to_string(), key, lineno)?;
                }
                (Some(raw), "action") => set(&mut raw.action, value.to_string(), key, lineno)?,
                (Some(raw), "probability") => {
                    let p = value
                        .parse::<f64>()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    set(&mut raw.probability, p, key, lineno)?;
                }
                (Some(raw), "delay_ms") => set(&mut raw.delay_ms, parse_u64(value)?, key, lineno)?,
                (Some(raw), "truncate_bytes") => {
                    set(
                        &mut raw.truncate_bytes,
                        parse_u64(value)? as usize,
                        key,
                        lineno,
                    )?;
                }
                (Some(raw), "after_frame") => {
                    set(&mut raw.after_frame, parse_u64(value)?, key, lineno)?;
                }
                (Some(raw), "until_frame") => {
                    set(&mut raw.until_frame, parse_u64(value)?, key, lineno)?;
                }
                (Some(_), other) => return Err(format!("unknown rule key {other:?}")),
            }
        }
        if let Some(raw) = current.take() {
            schedule.rules.push(resolve(raw)?);
        }
        Ok(schedule)
    }
}

/// A point-in-time snapshot of everything one proxy did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Complete frames observed (both directions).
    pub frames_seen: u64,
    /// Frames relayed unmodified.
    pub forwarded: u64,
    /// Frames held by a `Delay` rule (then forwarded).
    pub delayed: u64,
    /// Frames discarded by a `Drop` rule.
    pub dropped: u64,
    /// Frames forwarded twice by a `Duplicate` rule.
    pub duplicated: u64,
    /// Connections cut mid-frame by a `Truncate` rule.
    pub truncated: u64,
    /// Frames forwarded with a flipped CRC byte.
    pub corrupted: u64,
    /// Connections cut by a `Disconnect` rule.
    pub disconnects: u64,
    /// Frames swallowed by the blackhole.
    pub blackholed: u64,
    /// Master send-sequence regressions observed on request frames
    /// (`stamps[2]` not monotone per connection) — always 0 for a
    /// correct master.
    pub seq_regressions: u64,
}

#[derive(Default)]
struct AtomicStats {
    frames_seen: AtomicU64,
    forwarded: AtomicU64,
    delayed: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    truncated: AtomicU64,
    corrupted: AtomicU64,
    disconnects: AtomicU64,
    blackholed: AtomicU64,
    seq_regressions: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ChaosStats {
        ChaosStats {
            frames_seen: self.frames_seen.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            blackholed: self.blackholed.load(Ordering::Relaxed),
            seq_regressions: self.seq_regressions.load(Ordering::Relaxed),
        }
    }
}

/// How long pump threads block on a read before re-checking the stop flag.
const PUMP_POLL: Duration = Duration::from_millis(25);

/// A running fault-injection proxy in front of one slave server.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<AtomicStats>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Everything a pump thread needs, shared per proxy.
struct Shared {
    schedule: ChaosSchedule,
    start: Instant,
    stats: Arc<AtomicStats>,
    stop: Arc<AtomicBool>,
    /// Per-direction frame index shared by all connections, so rule
    /// windows mean "the proxy's Nth frame in that direction".
    frames_to_slave: AtomicU64,
    frames_to_master: AtomicU64,
}

impl ChaosProxy {
    /// Boots a proxy on an ephemeral loopback port, relaying to
    /// `upstream` (a slave server) under `schedule`.
    pub fn spawn(upstream: SocketAddr, schedule: ChaosSchedule) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(AtomicStats::default());
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shared = Arc::new(Shared {
            schedule,
            start: Instant::now(),
            stats: stats.clone(),
            stop: stop.clone(),
            frames_to_slave: AtomicU64::new(0),
            frames_to_master: AtomicU64::new(0),
        });
        let accept_thread = {
            let stop = stop.clone();
            let conn_threads = conn_threads.clone();
            let shared = shared.clone();
            let conn_seq = AtomicU64::new(0);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let (client, _peer) = match listener.accept() {
                        Ok(pair) => pair,
                        Err(_) => continue,
                    };
                    if stop.load(Ordering::Acquire) {
                        break; // the shutdown wake-up connection
                    }
                    let upstream_conn = match TcpStream::connect(upstream) {
                        Ok(s) => s,
                        Err(_) => continue, // slave down: refuse by dropping
                    };
                    best_effort("set_nodelay (client)", client.set_nodelay(true));
                    best_effort("set_nodelay (upstream)", upstream_conn.set_nodelay(true));
                    let conn_id = conn_seq.fetch_add(1, Ordering::Relaxed);
                    let (Ok(c2), Ok(u2)) = (client.try_clone(), upstream_conn.try_clone()) else {
                        continue;
                    };
                    let mut registry = conn_threads.lock();
                    let shared_a = shared.clone();
                    let shared_b = shared.clone();
                    registry.push(std::thread::spawn(move || {
                        pump(client, u2, true, conn_id, &shared_a);
                    }));
                    registry.push(std::thread::spawn(move || {
                        pump(upstream_conn, c2, false, conn_id, &shared_b);
                    }));
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            stop,
            stats,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The proxy's listen address — what the master should connect to in
    /// place of the slave's own address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the fault counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats.snapshot()
    }

    /// Stops the proxy deterministically: joins the accept loop and every
    /// pump thread. Connections through the proxy are cut.
    pub fn shutdown(mut self) -> ChaosStats {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop; a failed loopback connect would leave it
        // blocked, so it is worth a log line.
        if let Err(e) = TcpStream::connect(self.addr) {
            eprintln!("kvs-net: chaos shutdown wake-up connect failed: {e}");
        }
        if let Some(h) = self.accept_thread.take() {
            join_logged("chaos accept thread", h);
        }
        let conns = std::mem::take(&mut *self.conn_threads.lock());
        for h in conns {
            join_logged("chaos pump thread", h);
        }
        self.stats.snapshot()
    }
}

/// Boots one passthrough-or-faulty proxy per address; `schedules[i]`
/// governs the proxy in front of `upstream_addrs[i]`. Returns the proxies
/// plus the substitute address list to hand to
/// [`crate::NetMaster::connect`].
pub fn wrap_cluster(
    upstream_addrs: &[SocketAddr],
    schedules: Vec<ChaosSchedule>,
) -> std::io::Result<(Vec<ChaosProxy>, Vec<SocketAddr>)> {
    assert_eq!(
        upstream_addrs.len(),
        schedules.len(),
        "one schedule per node"
    );
    let mut proxies = Vec::with_capacity(upstream_addrs.len());
    for (addr, schedule) in upstream_addrs.iter().zip(schedules) {
        proxies.push(ChaosProxy::spawn(*addr, schedule)?);
    }
    let addrs = proxies.iter().map(|p| p.addr()).collect();
    Ok((proxies, addrs))
}

/// One direction's relay loop: deframe, consult the schedule, forward.
///
/// `to_slave` is true for the master→slave pump. Reads from `src`, writes
/// to `dst`; on exit cuts both so the opposite pump and both peers see
/// EOF promptly.
fn pump(src: TcpStream, mut dst: TcpStream, to_slave: bool, conn_id: u64, shared: &Shared) {
    // Without the poll timeout this pump cannot notice `stop`; log, since
    // a stuck pump shows up later as a hung shutdown.
    best_effort(
        "pump set_read_timeout",
        src.set_read_timeout(Some(PUMP_POLL)),
    );
    let mut src_reader = match src.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    // Direction- and connection-distinct but schedule-determined RNG.
    let mut rng = StdRng::seed_from_u64(
        shared
            .schedule
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(conn_id * 2 + to_slave as u64),
    );
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    // Highest request sequence (stamps[2]) seen on this connection.
    let mut last_seq: Option<u64> = None;
    // Set once Frame::decode fails: the stream can no longer be framed,
    // so relay raw bytes (the receiver's CRC check is the authority).
    let mut dumb = false;
    let cut = |src: &TcpStream, dst: &TcpStream| {
        // Cutting an already-cut socket reports NotConnected; quiet.
        best_effort("pump cut (src)", src.shutdown(Shutdown::Both));
        best_effort("pump cut (dst)", dst.shutdown(Shutdown::Both));
    };
    loop {
        match src_reader.read(&mut chunk) {
            Ok(0) => {
                cut(&src, &dst);
                return;
            }
            Ok(n) => {
                if dumb {
                    if forward(&mut dst, &chunk[..n], shared, true).is_err() {
                        cut(&src, &dst);
                        return;
                    }
                    continue;
                }
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match Frame::decode(&buf) {
                        Ok(Some((frame, used))) => {
                            let raw: Vec<u8> = buf.drain(..used).collect();
                            shared.stats.frames_seen.fetch_add(1, Ordering::Relaxed);
                            if to_slave
                                && (frame.kind == FrameKind::Request
                                    || frame.kind == FrameKind::Write
                                    || frame.kind == FrameKind::Rmw)
                            {
                                let seq = frame.stamps[2];
                                if last_seq.is_some_and(|prev| seq < prev) {
                                    shared.stats.seq_regressions.fetch_add(1, Ordering::Relaxed);
                                }
                                last_seq = Some(last_seq.map_or(seq, |p| p.max(seq)));
                            }
                            if !relay_frame(&raw, to_slave, shared, &mut rng, &mut dst) {
                                cut(&src, &dst);
                                return;
                            }
                        }
                        Ok(None) => break, // need more bytes
                        Err(_) => {
                            // Unframeable (e.g. an upstream proxy already
                            // corrupted it): stop interpreting, relay raw.
                            dumb = true;
                            let rest: Vec<u8> = std::mem::take(&mut buf);
                            if forward(&mut dst, &rest, shared, true).is_err() {
                                cut(&src, &dst);
                                return;
                            }
                            break;
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    cut(&src, &dst);
                    return;
                }
            }
            Err(_) => {
                cut(&src, &dst);
                return;
            }
        }
    }
}

/// Applies the schedule to one complete frame. Returns false when the
/// connection must be cut (truncate/disconnect or a write failure).
fn relay_frame(
    raw: &[u8],
    to_slave: bool,
    shared: &Shared,
    rng: &mut StdRng,
    dst: &mut TcpStream,
) -> bool {
    let stats = &shared.stats;
    // Blackhole trumps everything: swallow silently, keep the conn open.
    if let Some(from) = shared.schedule.blackhole_from {
        if shared.start.elapsed() >= from {
            stats.blackholed.fetch_add(1, Ordering::Relaxed);
            return true;
        }
    }
    let counter = if to_slave {
        &shared.frames_to_slave
    } else {
        &shared.frames_to_master
    };
    let index = counter.fetch_add(1, Ordering::Relaxed);
    let fault = shared.schedule.rules.iter().find_map(|rule| {
        let in_window = index >= rule.after_frame && rule.until_frame.is_none_or(|end| index < end);
        (rule.direction.covers(to_slave)
            && in_window
            && rng.gen_bool(rule.probability.clamp(0.0, 1.0)))
        .then_some(rule.action)
    });
    match fault {
        None => forward(dst, raw, shared, false).is_ok(),
        Some(FaultAction::Delay(d)) => {
            // Sleep in stop-aware slices so shutdown isn't held up by a
            // long delay rule.
            let deadline = Instant::now() + d;
            while Instant::now() < deadline && !shared.stop.load(Ordering::Acquire) {
                std::thread::sleep(PUMP_POLL.min(deadline - Instant::now()));
            }
            stats.delayed.fetch_add(1, Ordering::Relaxed);
            forward(dst, raw, shared, false).is_ok()
        }
        Some(FaultAction::Drop) => {
            stats.dropped.fetch_add(1, Ordering::Relaxed);
            true
        }
        Some(FaultAction::Duplicate) => {
            stats.duplicated.fetch_add(1, Ordering::Relaxed);
            forward(dst, raw, shared, false).is_ok() && forward(dst, raw, shared, false).is_ok()
        }
        Some(FaultAction::Truncate(n)) => {
            stats.truncated.fetch_add(1, Ordering::Relaxed);
            let n = n.min(raw.len().saturating_sub(1));
            // The connection is cut right after; the prefix write is
            // best-effort by design.
            best_effort("truncated forward", forward(dst, &raw[..n], shared, false));
            false // cut the connection mid-frame
        }
        Some(FaultAction::CorruptCrc) => {
            stats.corrupted.fetch_add(1, Ordering::Relaxed);
            let mut bad = raw.to_vec();
            // Flip a checksum byte: the frame stays structurally valid
            // (magic/len intact) but fails CRC validation on receipt.
            bad[HEADER_LEN - 1] ^= 0xFF;
            forward(dst, &bad, shared, false).is_ok()
        }
        Some(FaultAction::Disconnect) => {
            stats.disconnects.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Writes bytes through, bumping `forwarded` once per frame (not for raw
/// dumb-mode chunks unless asked).
fn forward(
    dst: &mut TcpStream,
    bytes: &[u8],
    shared: &Shared,
    raw_mode: bool,
) -> std::io::Result<()> {
    dst.write_all(bytes)?;
    if !raw_mode {
        shared.stats.forwarded.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}
