//! Measuring `t_msg` on the real socket path.
//!
//! The paper's master model (Formula 3) is driven by one number: the
//! per-message master CPU cost, 150 µs with default Java serialization and
//! 19 µs after the Kryo optimization (§V-B). This module measures the same
//! quantity for this prototype — encode + frame + `write(2)` on the send
//! side, deframe + decode on the receive side — by running a real query
//! against a loopback slave and timing only the master-side work.
//!
//! The result plugs straight into [`kvs_model::MasterModel`], so the
//! Figure 11 master-saturation sweep can re-run with *measured* constants
//! instead of the paper's (see `fig11_master_limit`'s calibrated mode and
//! the `net_loadgen` benchmark).

use crate::local::spawn_local_cluster;
use crate::master::{NetConfig, NetMaster};
use crate::server::NetServerConfig;
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{ClusterData, Codec, CodecKind};
use kvs_model::MasterModel;
use kvs_store::TableOptions;
use std::io;

/// A measured per-message master cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TMsgCalibration {
    /// Which codec was measured.
    pub codec: CodecKind,
    /// Messages timed (after warm-up).
    pub messages: u64,
    /// Master send cost per message, µs.
    pub tx_us_per_msg: f64,
    /// Master receive cost per message, µs.
    pub rx_us_per_msg: f64,
}

impl TMsgCalibration {
    /// The combined per-message cost — the paper's `t_msg`.
    pub fn t_msg_us(&self) -> f64 {
        self.tx_us_per_msg + self.rx_us_per_msg
    }

    /// The measurement as a [`MasterModel`], ready for
    /// [`kvs_model::SystemModel`] and the Figure 11 sweep.
    pub fn master_model(&self) -> MasterModel {
        MasterModel {
            tx_us_per_msg: self.tx_us_per_msg,
            rx_us_per_msg: self.rx_us_per_msg,
        }
    }
}

/// Measures `t_msg` for `codec` over `messages` requests against one
/// loopback slave (64 partitions × 32 cells; every request is a real
/// store read answered over TCP).
///
/// A short warm-up run precedes the measurement so connection setup,
/// allocator warm-up, and cold caches don't pollute the figure.
pub fn calibrate_t_msg(codec: Codec, messages: u64) -> io::Result<TMsgCalibration> {
    let messages = messages.max(1);
    let parts = uniform_partitions(64, 32, 4);
    let data = ClusterData::load(1, 1, TableOptions::default(), parts);
    let (cluster, routes) = spawn_local_cluster(
        data,
        NetServerConfig {
            workers_per_node: 4,
            queue_depth: 256,
        },
    )?;
    let mut master = NetMaster::connect(
        &cluster.addrs(),
        NetConfig {
            codec,
            ..NetConfig::default()
        },
    )?;

    // Cycle the partition list until the batch is `messages` long.
    let keys: Vec<_> = routes
        .iter()
        .cycle()
        .take(messages as usize)
        .cloned()
        .collect();

    let warmup: Vec<_> = routes.iter().take(32).cloned().collect();
    master.run_query(&warmup)?;

    let report = master.run_query(&keys)?;
    let calibration = TMsgCalibration {
        codec: codec.kind,
        messages,
        tx_us_per_msg: report.tx_us_per_msg(),
        rx_us_per_msg: report.rx_us_per_msg(),
    };
    master.shutdown();
    cluster.shutdown();
    Ok(calibration)
}
