//! Wall-clock nanoseconds for frame timestamps.
//!
//! Frame stamps must be comparable between the master and the slaves, so
//! they come from `SystemTime` (shared across processes on one host)
//! rather than `Instant` (whose epoch is per-process). All arithmetic on
//! them saturates: `SystemTime` is not monotonic, and a stage observed
//! "backwards" by a few nanoseconds must clamp to zero, not wrap.

use std::time::{SystemTime, UNIX_EPOCH};

/// Current wall-clock time, nanoseconds since the UNIX epoch.
///
/// Fits a `u64` until the year 2554; a pre-epoch clock reads as 0.
pub fn wall_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_sane() {
        let a = wall_ns();
        let b = wall_ns();
        // 2020-01-01 in nanoseconds — the container clock is past that.
        assert!(a > 1_577_836_800_000_000_000);
        assert!(b >= a.saturating_sub(1_000_000));
    }
}
