//! The replicated write path: a coordinator over [`NetMaster`]'s
//! connection pool implementing per-request consistency levels.
//!
//! One mixed-plan run ([`NetMaster::run_mixed`]) drives reads, writes and
//! read-modify-writes through the replica set of each partition:
//!
//! * **Writes** draw a last-write-wins timestamp from the wall-clock
//!   portal, fan out to every replica, and complete once the requested
//!   consistency level — ONE, QUORUM or ALL ([`Consistency`]) — worth of
//!   replicas acknowledge holding a version at least that new. Replicas
//!   the failure detector already suspects are not sent to at all: the
//!   write is buffered as a *hint* in a bounded per-node queue and
//!   replayed when the node returns ([`NetMaster::replay_hints`]).
//! * **Reads** query the first `required` live replicas and answer with
//!   the newest version observed. A read that observes an older version
//!   than the newest acknowledged write for that partition counts as
//!   *stale* — the PCAP-style consistency metric. Replicas that answered
//!   with an older version than the winner are *read-repaired* with the
//!   coordinator's cached copy of the winning write.
//! * **RMWs** are a single `Rmw` frame: the replica reads the partition
//!   pre-image before applying, and acknowledges like a write.
//!
//! The coordinator is deliberately closed-loop per operation (issue, then
//! drain acks to the consistency level) so its latency is the `need`-th
//! order statistic of the replica leg times — the same quantity the
//! deterministic mirror in `kvs_cluster::replication` computes, which is
//! what makes the sim-vs-sockets agreement check meaningful.

use crate::clock::wall_ns;
use crate::frame::{Frame, FrameKind, FLAG_COMPACT};
use crate::master::{DownReason, Event, NetMaster, Route};
use bytes::Bytes;
use crossbeam::channel::RecvTimeoutError;
use kvs_cluster::{CodecKind, Consistency, QueryRequest, WriteRequest};
use kvs_store::{Cell, PartitionKey};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::time::{Duration, Instant};

/// Write-path ids live far above the read path's route indexes so a
/// stale frame from one loop can never be claimed by the other.
const ID_BASE: u64 = 1 << 40;

/// One buffered write for a dark replica.
struct Hint {
    partition: PartitionKey,
    timestamp: u64,
    cells: Vec<Cell>,
}

/// Coordinator state that outlives a single [`NetMaster::run_mixed`]
/// call: hint queues survive until their node recovers, the write cache
/// feeds read-repair, and the acked-version map feeds staleness
/// accounting.
#[derive(Default)]
pub(crate) struct WriteState {
    /// Per-node bounded hint queues (writes the node missed while dark).
    hints: HashMap<u32, VecDeque<Hint>>,
    /// Last acknowledged write per partition, for read-repair resends.
    write_cache: HashMap<Vec<u8>, (u64, Vec<Cell>)>,
    /// Newest coordinator-acknowledged version per partition.
    latest_acked: HashMap<Vec<u8>, u64>,
    /// Monotone id source for write-path frames.
    next_id: u64,
}

impl WriteState {
    fn fresh_id(&mut self) -> u64 {
        let id = ID_BASE + self.next_id;
        self.next_id += 1;
        id
    }
}

/// What one mixed-plan leg does.
#[derive(Debug, Clone)]
pub enum MixedOp {
    /// Consistency-level read with staleness accounting.
    Read,
    /// Replicated LWW write of these cells.
    Write {
        /// The cells to apply to the partition.
        cells: Vec<Cell>,
    },
    /// Read-modify-write: the replica reads the pre-image, then applies.
    Rmw {
        /// The cells to apply after the pre-image read.
        cells: Vec<Cell>,
    },
}

/// One operation of a mixed read/write plan.
#[derive(Debug, Clone)]
pub struct MixedPlan {
    /// The partition and its replica set, primary first.
    pub route: Route,
    /// What to do.
    pub op: MixedOp,
    /// The consistency level this operation must reach.
    pub consistency: Consistency,
}

/// Knobs of the write path that are not per-operation.
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Bound on each node's hint queue; overflow drops the oldest-first
    /// enqueue attempt and counts it.
    pub hint_queue_cap: usize,
    /// Whether divergent read responses trigger repair writes.
    pub read_repair: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            hint_queue_cap: 1024,
            read_repair: true,
        }
    }
}

/// Counters and samples from one mixed run; the socket-world twin of
/// `kvs_cluster::replication::ReplicationOutcome`.
#[derive(Debug, Clone, Default)]
pub struct MixedOutcome {
    /// Per-completed-read latency, milliseconds, in completion order.
    pub read_latency_ms: Vec<f64>,
    /// Per-acked-write (and RMW) latency, milliseconds, in completion
    /// order.
    pub write_latency_ms: Vec<f64>,
    /// Reads that reached their consistency level.
    pub reads: u64,
    /// Reads that could not assemble enough replica answers in time.
    pub reads_failed: u64,
    /// Reads that observed an older version than the newest acked write.
    pub stale_reads: u64,
    /// Writes acknowledged at their consistency level.
    pub writes_acked: u64,
    /// Writes that ran out of live replicas or time.
    pub writes_failed: u64,
    /// Hints buffered for suspected-dead replicas.
    pub hints_queued: u64,
    /// Hints dropped at the queue bound.
    pub hints_dropped: u64,
    /// Reads whose replica answers disagreed on version.
    pub divergent_reads: u64,
    /// Repair writes sent to lagging replicas.
    pub read_repairs: u64,
    /// Busy-frame flow-control retries across all legs.
    pub busy_retries: u64,
    /// Wall-clock span of the whole run, milliseconds.
    pub makespan_ms: f64,
    /// Every write the coordinator acknowledged: `(partition, version)`.
    /// The hinted-handoff oracle checks these against recovered stores.
    pub acked: Vec<(PartitionKey, u64)>,
}

impl NetMaster {
    /// Runs a mixed read/write plan through the replicated write path.
    /// `arrivals_ns[i]`, when given, paces operation `i` to start that
    /// many nanoseconds after the run begins (open loop); `None` runs the
    /// plan back-to-back (closed loop).
    pub fn run_mixed(
        &mut self,
        plans: &[MixedPlan],
        arrivals_ns: Option<&[u64]>,
        wcfg: &WriteOptions,
    ) -> io::Result<MixedOutcome> {
        if let Some(a) = arrivals_ns {
            assert_eq!(a.len(), plans.len(), "one arrival offset per op");
        }
        let origin = Instant::now();
        let mut out = MixedOutcome::default();
        for (i, plan) in plans.iter().enumerate() {
            if let Some(arrivals) = arrivals_ns {
                let due = Duration::from_nanos(arrivals[i]);
                let elapsed = origin.elapsed();
                if elapsed < due {
                    std::thread::sleep(due - elapsed);
                }
            }
            assert!(!plan.route.replicas.is_empty(), "plan {i} has no replicas");
            let need = plan.consistency.required(plan.route.replicas.len());
            match &plan.op {
                MixedOp::Read => self.read_leg(&plan.route, need, wcfg, &mut out),
                MixedOp::Write { cells } => {
                    self.write_leg(&plan.route, cells, need, false, wcfg, &mut out)
                }
                MixedOp::Rmw { cells } => {
                    self.write_leg(&plan.route, cells, need, true, wcfg, &mut out)
                }
            }
        }
        out.makespan_ms = origin.elapsed().as_secs_f64() * 1e3;
        Ok(out)
    }

    /// Writes currently buffered for `node` (whichever run queued them).
    pub fn hinted_for(&self, node: u32) -> usize {
        self.wstate.hints.get(&node).map(|q| q.len()).unwrap_or(0)
    }

    /// Replays every hint buffered for `node` through its (re-established)
    /// connection, waiting for each ack. Returns how many hints the node
    /// acknowledged. Call after [`NetMaster::reconnect`]; replay is
    /// idempotent on the replica because LWW ties keep the incumbent.
    pub fn replay_hints(&mut self, node: u32) -> io::Result<u64> {
        let mut queue = self.wstate.hints.remove(&node).unwrap_or_default();
        let mut replayed = 0u64;
        while let Some(hint) = queue.pop_front() {
            let id = self.wstate.fresh_id();
            let op_deadline = self.leg_deadline();
            let payload = self.cfg.codec.encode_write(&WriteRequest {
                request_id: id,
                partition: hint.partition.clone(),
                timestamp: hint.timestamp,
                cells: hint.cells.clone(),
            });
            if self
                .send_write_frame(node, FrameKind::Write, id, payload.clone(), op_deadline)
                .is_err()
            {
                // The node is gone again: keep the rest (and this hint)
                // buffered for the next recovery.
                queue.push_front(hint);
                self.wstate.hints.insert(node, queue);
                self.mark_dead(node);
                return Ok(replayed);
            }
            if self.await_ack(node, id, hint.timestamp).is_some() {
                replayed += 1;
            }
        }
        Ok(replayed)
    }

    /// One replicated write (or RMW) leg: fan out, hint dark replicas,
    /// drain acks to the consistency level with one retry round.
    fn write_leg(
        &mut self,
        route: &Route,
        cells: &[Cell],
        need: usize,
        rmw: bool,
        wcfg: &WriteOptions,
        out: &mut MixedOutcome,
    ) {
        let issue = Instant::now();
        let ts = wall_ns();
        let id = self.wstate.fresh_id();
        let op_deadline = self.leg_deadline();
        let payload = self.cfg.codec.encode_write(&WriteRequest {
            request_id: id,
            partition: route.key.clone(),
            timestamp: ts,
            cells: cells.to_vec(),
        });
        let kind = if rmw {
            FrameKind::Rmw
        } else {
            FrameKind::Write
        };

        // Fan out. Suspected replicas get a hint instead of a doomed send.
        let mut outstanding: Vec<u32> = Vec::new();
        for &node in &route.replicas {
            if self.hard_suspect(node) {
                self.queue_hint(node, route, ts, cells, wcfg, out);
                continue;
            }
            match self.send_write_frame(node, kind, id, payload.clone(), op_deadline) {
                Ok(()) => outstanding.push(node),
                Err(_) => {
                    self.mark_dead(node);
                    self.queue_hint(node, route, ts, cells, wcfg, out);
                }
            }
        }

        let mut acks = 0usize;
        for round in 0..2 {
            if acks >= need || outstanding.is_empty() {
                break;
            }
            let deadline = Instant::now() + self.cfg.timeout;
            while acks < need && !outstanding.is_empty() {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match self.rx.recv_timeout(left) {
                    Ok(Event::Frame(node, frame)) => {
                        self.note_alive(node);
                        if frame.id != id {
                            continue; // stray frame from an earlier leg
                        }
                        if frame.kind == FrameKind::WriteAck {
                            let Some(ack) = self.cfg.codec.decode_write_ack(frame.payload.clone())
                            else {
                                continue;
                            };
                            outstanding.retain(|&n| n != node);
                            // The ack counts iff the replica provably holds
                            // data at least as new as this write.
                            if ack.version >= ts {
                                acks += 1;
                            }
                        } else if frame.kind == FrameKind::Busy {
                            out.busy_retries += 1;
                            std::thread::sleep(self.cfg.busy_backoff);
                            if self
                                .send_write_frame(node, kind, id, payload.clone(), op_deadline)
                                .is_err()
                            {
                                self.mark_dead(node);
                                outstanding.retain(|&n| n != node);
                                self.queue_hint(node, route, ts, cells, wcfg, out);
                            }
                        }
                    }
                    Ok(Event::Down(node, _reason)) => {
                        self.mark_dead(node);
                        if outstanding.contains(&node) {
                            outstanding.retain(|&n| n != node);
                            self.queue_hint(node, route, ts, cells, wcfg, out);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        outstanding.clear();
                        break;
                    }
                }
            }
            // Retry round: re-send to the replicas that stayed silent.
            if round == 0 && acks < need {
                for &node in outstanding.clone().iter() {
                    if self
                        .send_write_frame(node, kind, id, payload.clone(), op_deadline)
                        .is_err()
                    {
                        self.mark_dead(node);
                        outstanding.retain(|&n| n != node);
                        self.queue_hint(node, route, ts, cells, wcfg, out);
                    }
                }
            }
        }

        if acks >= need {
            out.writes_acked += 1;
            out.write_latency_ms
                .push(issue.elapsed().as_secs_f64() * 1e3);
            out.acked.push((route.key.clone(), ts));
            let pk = route.key.as_bytes().to_vec();
            let newest = self.wstate.latest_acked.entry(pk.clone()).or_insert(0);
            if ts > *newest {
                *newest = ts;
                self.wstate.write_cache.insert(pk, (ts, cells.to_vec()));
            }
        } else {
            out.writes_failed += 1;
            // Replicas that stayed silent through both rounds may have
            // missed the frame entirely; a hint makes recovery converge
            // and is idempotent if they did apply it.
            for node in outstanding {
                self.queue_hint(node, route, ts, cells, wcfg, out);
            }
        }
    }

    /// One consistency-level read leg with staleness accounting and
    /// read-repair.
    fn read_leg(
        &mut self,
        route: &Route,
        need: usize,
        wcfg: &WriteOptions,
        out: &mut MixedOutcome,
    ) {
        let issue = Instant::now();
        let pk = route.key.as_bytes().to_vec();
        let acked_at_issue = self.wstate.latest_acked.get(&pk).copied().unwrap_or(0);
        let id = self.wstate.fresh_id();
        let op_deadline = self.leg_deadline();
        let payload = self.cfg.codec.encode_request(&QueryRequest {
            request_id: id,
            partition: route.key.clone(),
        });
        let mut outstanding: Vec<u32> = Vec::new();
        for &node in &route.replicas {
            if outstanding.len() >= need {
                break;
            }
            if self.hard_suspect(node) {
                continue;
            }
            match self.send_write_frame(node, FrameKind::Request, id, payload.clone(), op_deadline)
            {
                Ok(()) => outstanding.push(node),
                Err(_) => self.mark_dead(node),
            }
        }
        if outstanding.len() < need {
            out.reads_failed += 1;
            return;
        }

        let mut answers: Vec<(u32, u64)> = Vec::new();
        let deadline = Instant::now() + self.cfg.timeout;
        while answers.len() < need {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.rx.recv_timeout(left) {
                Ok(Event::Frame(node, frame)) => {
                    self.note_alive(node);
                    if frame.id != id {
                        continue;
                    }
                    if frame.kind == FrameKind::Response {
                        let Some(resp) = self.cfg.codec.decode_response(frame.payload.clone())
                        else {
                            continue;
                        };
                        answers.push((node, resp.version));
                    } else if frame.kind == FrameKind::Busy {
                        out.busy_retries += 1;
                        std::thread::sleep(self.cfg.busy_backoff);
                        if self
                            .send_write_frame(
                                node,
                                FrameKind::Request,
                                id,
                                payload.clone(),
                                op_deadline,
                            )
                            .is_err()
                        {
                            self.mark_dead(node);
                        }
                    }
                }
                Ok(Event::Down(node, _reason)) => {
                    self.mark_dead(node);
                    outstanding.retain(|&n| n != node);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if answers.len() < need {
            out.reads_failed += 1;
            return;
        }

        out.reads += 1;
        out.read_latency_ms
            .push(issue.elapsed().as_secs_f64() * 1e3);
        let observed = answers.iter().map(|(_, v)| *v).max().unwrap_or(0);
        let oldest = answers.iter().map(|(_, v)| *v).min().unwrap_or(0);
        if observed < acked_at_issue {
            out.stale_reads += 1;
        }
        if observed != oldest {
            out.divergent_reads += 1;
            if wcfg.read_repair {
                self.read_repair(route, observed, &answers, out);
            }
        }
    }

    /// Re-sends the cached winning write to every replica that answered
    /// with an older version. Fire-and-forget: the repair's own ack is
    /// drained (and ignored) by whichever leg runs next.
    fn read_repair(
        &mut self,
        route: &Route,
        winner: u64,
        answers: &[(u32, u64)],
        out: &mut MixedOutcome,
    ) {
        let pk = route.key.as_bytes().to_vec();
        let Some((ts, cells)) = self.wstate.write_cache.get(&pk).cloned() else {
            return; // the winning write predates this coordinator
        };
        if ts < winner {
            return; // cache is older than what a replica already holds
        }
        for &(node, version) in answers {
            if version >= winner {
                continue;
            }
            let id = self.wstate.fresh_id();
            let op_deadline = self.leg_deadline();
            let payload = self.cfg.codec.encode_write(&WriteRequest {
                request_id: id,
                partition: route.key.clone(),
                timestamp: ts,
                cells: cells.clone(),
            });
            if self
                .send_write_frame(node, FrameKind::Write, id, payload, op_deadline)
                .is_ok()
            {
                out.read_repairs += 1;
            } else {
                self.mark_dead(node);
            }
        }
    }

    /// Buffers a write for a dark replica, respecting the queue bound.
    fn queue_hint(
        &mut self,
        node: u32,
        route: &Route,
        timestamp: u64,
        cells: &[Cell],
        wcfg: &WriteOptions,
        out: &mut MixedOutcome,
    ) {
        let queue = self.wstate.hints.entry(node).or_default();
        if queue.len() >= wcfg.hint_queue_cap.max(1) {
            out.hints_dropped += 1;
            return;
        }
        queue.push_back(Hint {
            partition: route.key.clone(),
            timestamp,
            cells: cells.to_vec(),
        });
        out.hints_queued += 1;
    }

    /// Wall-clock deadline for one leg: now plus two timeout rounds, so
    /// every retransmit of the same operation shares the leg's budget.
    fn leg_deadline(&self) -> u64 {
        wall_ns().saturating_add(2 * self.cfg.timeout.as_nanos() as u64)
    }

    /// Frames and writes one write-path message. The stamp convention is
    /// the request one: issue, send, send-sequence, and a slave-owned 0.
    /// The deadline is the leg's: retransmits must pass the same value,
    /// never mint a fresh one (KVS-L016).
    fn send_write_frame(
        &mut self,
        node: u32,
        kind: FrameKind,
        id: u64,
        payload: Bytes,
        deadline: u64,
    ) -> io::Result<()> {
        let flags = match self.cfg.codec.kind {
            CodecKind::Compact => FLAG_COMPACT,
            CodecKind::Verbose => 0,
        };
        let issued_wall = wall_ns();
        let sent_wall = wall_ns();
        let seq = self.send_seq;
        self.send_seq += 1;
        let frame = Frame {
            kind,
            flags,
            id,
            stamps: [issued_wall, sent_wall, seq, 0],
            deadline,
            payload,
        };
        self.write_frame(node, &frame)
    }

    /// Waits for `node` to acknowledge write `id` at version ≥ `ts`.
    /// Returns the acked version, or `None` on timeout/refusal.
    fn await_ack(&mut self, node: u32, id: u64, ts: u64) -> Option<u64> {
        let deadline = Instant::now() + self.cfg.timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.rx.recv_timeout(left) {
                Ok(Event::Frame(from, frame)) => {
                    self.note_alive(from);
                    if from != node || frame.id != id || frame.kind != FrameKind::WriteAck {
                        continue;
                    }
                    let ack = self.cfg.codec.decode_write_ack(frame.payload.clone())?;
                    if ack.version >= ts {
                        return Some(ack.version);
                    }
                    return None;
                }
                Ok(Event::Down(from, reason)) => {
                    if reason == DownReason::Corrupt || from == node {
                        self.mark_dead(from);
                    }
                    if from == node {
                        return None;
                    }
                }
                Err(RecvTimeoutError::Timeout) => return None,
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }
}
