#![warn(missing_docs)]

//! # kvs-net
//!
//! The paper's master/slave aggregation query over real TCP sockets. Where
//! `kvs-cluster`'s [`sim`](kvs_cluster::sim) replays the hardware and its
//! [`live`](kvs_cluster::live) executor runs on in-process channels, this
//! crate puts the same query on the wire:
//!
//! * [`frame`] — the length-prefixed, CRC-checksummed frame format that
//!   carries codec-encoded bodies plus the wall-clock timestamps the four
//!   methodology stages are reconstructed from;
//! * [`server`] — [`SlaveServer`]: a TCP front-end over one node's
//!   [`kvs_store::Table`], with a bounded work queue
//!   ([`kvs_cluster::queue`]) that answers `Busy` when saturated and a
//!   worker pool of the paper's per-node parallelism;
//! * [`master`] — [`NetMaster`]: a connection pool over all slaves with
//!   per-request deadlines, bounded retries, hedged replica reads and
//!   phi-accrual failure detection, producing the same
//!   [`kvs_cluster::RunResult`] as the other two executors;
//! * [`phi`] — [`PhiAccrual`]: the continuous suspicion level the master
//!   orders replicas by (Hayashibara et al., SRDS 2004);
//! * [`latency`] — [`LatencyTracker`]: online per-node latency histogram
//!   + EWMA, the source of the hedge-delay quantile;
//! * [`local`] — [`spawn_local_cluster`]: N servers on ephemeral loopback
//!   ports with deterministic shutdown, for tests and benchmarks; its
//!   durable twin [`spawn_local_cluster_durable`] persists every node
//!   under a directory ([`kvs_store::DurableTable`]) so a kill drops the
//!   node's memory outright and a restart runs real crash recovery —
//!   WAL replay, manifest load, orphan cleanup;
//! * [`calibrate`] — [`calibrate_t_msg`]: measures the per-message master
//!   cost on the real socket path, producing a [`kvs_model::MasterModel`]
//!   so the Figure 11 saturation sweep can re-run on measured constants;
//! * [`chaos`] — [`ChaosProxy`]: a deterministic fault-injection TCP
//!   interposer (delay/drop/duplicate/truncate/corrupt/disconnect/
//!   blackhole, driven by a seeded [`ChaosSchedule`]) that the robustness
//!   suite places between master and slaves to exercise the failover
//!   path under byte-accurate faults;
//! * [`write_path`] — the replicated write path: [`NetMaster::run_mixed`]
//!   coordinates reads, LWW writes and RMWs at per-request consistency
//!   levels (ONE/QUORUM/ALL), with read-repair, bounded hinted handoff
//!   for suspected-dead replicas, and replay-on-recovery
//!   ([`NetMaster::replay_hints`]). The deterministic twin lives in
//!   [`kvs_cluster::replication`].

pub mod calibrate;
pub mod chaos;
pub mod clock;
pub mod frame;
mod ioutil;
pub mod latency;
pub mod local;
pub mod master;
pub mod phi;
pub mod server;
pub mod write_path;

pub use calibrate::{calibrate_t_msg, TMsgCalibration};
pub use chaos::{
    wrap_cluster, ChaosDirection, ChaosProxy, ChaosRule, ChaosSchedule, ChaosStats, FaultAction,
};
pub use frame::{Frame, FrameError, FrameKind};
pub use latency::LatencyTracker;
pub use local::{
    spawn_local_cluster, spawn_local_cluster_durable, DurableClusterConfig, LocalCluster,
};
pub use master::{
    HedgeConfig, MissedPartition, NetConfig, NetMaster, NetRunReport, QueryMode, Route,
};
pub use phi::PhiAccrual;
pub use server::{NetServerConfig, NodeStore, SlaveHandle, SlaveServer};
pub use write_path::{MixedOp, MixedOutcome, MixedPlan, WriteOptions};
