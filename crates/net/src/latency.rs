//! Online per-node response-latency tracking for hedged reads.
//!
//! Hedging needs a per-node answer to "how long is *unusually* long for
//! this node right now?" — the hedge delay is a configurable quantile of
//! the node's observed send→response latency. The tracker keeps:
//!
//! * an **EWMA** of the latency, for cheap smoothing and reporting;
//! * a **log-spaced histogram** (power-of-two microsecond buckets), from
//!   which any quantile is read in one pass. Log spacing keeps the whole
//!   structure at 64 counters while resolving both 100 µs loopback RTTs
//!   and multi-second straggler stalls to within a factor of two — more
//!   than enough precision for a hedge trigger.
//!
//! Both adapt online: on an overloaded machine the observed quantile
//! inflates and hedges fire later, instead of storming healthy-but-slow
//! replicas.

use std::time::Duration;

/// Power-of-two microsecond buckets: bucket `i` covers `[2^i, 2^(i+1))` µs.
const BUCKETS: usize = 40;
/// EWMA smoothing factor.
const ALPHA: f64 = 0.1;

/// Online latency summary for one node.
#[derive(Debug, Clone)]
pub struct LatencyTracker {
    buckets: [u64; BUCKETS],
    samples: u64,
    ewma_us: f64,
}

impl Default for LatencyTracker {
    fn default() -> Self {
        LatencyTracker {
            buckets: [0; BUCKETS],
            samples: 0,
            ewma_us: 0.0,
        }
    }
}

impl LatencyTracker {
    /// Records one send→response latency.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.samples += 1;
        let us = us as f64;
        self.ewma_us = if self.samples == 1 {
            us
        } else {
            ALPHA * us + (1.0 - ALPHA) * self.ewma_us
        };
    }

    /// Latencies recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Smoothed latency.
    pub fn ewma(&self) -> Duration {
        Duration::from_micros(self.ewma_us as u64)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) of recorded latencies, reported as
    /// the covering bucket's *upper* bound — deliberately conservative so
    /// a hedge never fires below genuinely observed latencies. `None`
    /// until any sample exists.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.samples == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.samples as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Duration::from_micros(1 << (i + 1)));
            }
        }
        Some(Duration::from_micros(1 << BUCKETS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_has_no_quantile() {
        let t = LatencyTracker::default();
        assert_eq!(t.quantile(0.95), None);
        assert_eq!(t.samples(), 0);
    }

    #[test]
    fn quantile_bounds_the_observed_tail() {
        let mut t = LatencyTracker::default();
        // 99 fast samples around 200 µs, one 50 ms straggler.
        for _ in 0..99 {
            t.record(Duration::from_micros(200));
        }
        t.record(Duration::from_millis(50));
        let p95 = t.quantile(0.95).unwrap();
        assert!(p95 >= Duration::from_micros(200));
        assert!(p95 < Duration::from_millis(1), "p95 excludes the straggler");
        let p100 = t.quantile(1.0).unwrap();
        assert!(
            p100 >= Duration::from_millis(50),
            "max covers the straggler"
        );
    }

    #[test]
    fn quantile_is_conservative_upper_bound() {
        let mut t = LatencyTracker::default();
        t.record(Duration::from_micros(300)); // bucket [256, 512)
        assert_eq!(t.quantile(0.5).unwrap(), Duration::from_micros(512));
    }

    #[test]
    fn ewma_tracks_shifts() {
        let mut t = LatencyTracker::default();
        for _ in 0..50 {
            t.record(Duration::from_micros(100));
        }
        let before = t.ewma();
        for _ in 0..50 {
            t.record(Duration::from_millis(10));
        }
        assert!(t.ewma() > before * 10);
    }
}
