//! The slave server: a TCP front-end over one node's store — a RAM-only
//! [`kvs_store::Table`] or a durable [`kvs_store::DurableTable`]
//! (see [`NodeStore`]).
//!
//! Layout per server:
//!
//! * one **accept loop** on an ephemeral loopback port;
//! * one **reader thread per connection**, deframing requests and offering
//!   them to the bounded work queue — a full queue answers with a `Busy`
//!   frame immediately instead of absorbing load silently;
//! * a fixed pool of **worker threads** (`workers_per_node`, the paper's
//!   per-node database parallelism) draining the queue: decode the
//!   request, read the store, encode the response, write it back with the
//!   stage timestamps (`in-queue` start/end, `in-db` start/end) stamped
//!   into the frame header.
//!
//! Shutdown is deterministic: [`SlaveHandle::shutdown`] stops the accept
//! loop, joins every connection reader (their sockets poll a stop flag),
//! drops the queue producers so workers drain and exit, and joins the
//! pool. No thread or socket outlives the call.

use crate::clock::wall_ns;
use crate::frame::{Frame, FrameKind, FLAG_COMPACT};
use crate::ioutil::{best_effort, join_logged};
use kvs_cluster::queue::{work_queue, QueueStats, TimedPush, WorkQueue, NO_DEADLINE};
use kvs_cluster::{Codec, QueryResponse, WriteAck, WriteRequest};
use kvs_store::{Cell, DurableTable, PartitionKey, Table};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Slave server configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Worker threads per server (the database executor width). The codec
    /// is not configured here: each frame declares its own encoding and
    /// the server answers in kind.
    pub workers_per_node: usize,
    /// Work-queue capacity; a full queue replies `Busy`.
    pub queue_depth: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            workers_per_node: 4,
            queue_depth: 64,
        }
    }
}

/// How long connection readers block before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// Clustering key of the reserved per-partition *version cell* that stores
/// the partition's last-write-wins timestamp. It rides the normal put
/// path, so it inherits WAL durability, SSTable persistence, and crash
/// recovery for free; readers filter it out of aggregation counts.
pub const VERSION_CLUSTERING: u64 = u64::MAX;
/// Kind byte of the version cell (never produced by workload generators).
pub const VERSION_KIND: u8 = 0xFF;

/// True for the reserved version cell (excluded from aggregations).
pub fn is_version_cell(cell: &Cell) -> bool {
    cell.clustering == VERSION_CLUSTERING && cell.kind == VERSION_KIND
}

/// The partition's LWW version recorded in `cells`, `0` if never written
/// through the replicated write path. Takes the max so a version cell
/// duplicated across memtable and SSTable generations still reads newest.
pub fn version_of(cells: &[Cell]) -> u64 {
    cells
        .iter()
        .filter(|c| is_version_cell(c))
        .filter_map(|c| c.payload.as_ref().try_into().ok().map(u64::from_be_bytes))
        .max()
        .unwrap_or(0)
}

/// Builds the version cell carrying `timestamp`.
pub fn version_cell(timestamp: u64) -> Cell {
    Cell::new(
        VERSION_CLUSTERING,
        VERSION_KIND,
        timestamp.to_be_bytes().to_vec(),
    )
}

struct Job {
    frame: Frame,
    conn: Arc<Mutex<TcpStream>>,
}

/// The storage engine behind one slave server: the in-memory [`Table`] of
/// the paper's RAM-resident experiments, or the [`DurableTable`] whose
/// data survives a kill via WAL + SSTables + manifest (and whose restart
/// runs *real* crash recovery instead of handing the old memory back).
pub enum NodeStore {
    /// RAM-only: dies with the process, handed back on shutdown.
    Ram(Table),
    /// WAL + on-disk SSTables: dropped on kill, recovered from disk.
    Durable(DurableTable),
}

impl NodeStore {
    /// Reads a whole partition. A durable-tier I/O error cannot reach the
    /// wire (the frame protocol has no error kind a master could
    /// distinguish from loss), so it is logged and served as an empty
    /// partition — the master's replica failover treats it like a miss.
    fn get(&mut self, pk: &PartitionKey) -> Vec<Cell> {
        match self {
            NodeStore::Ram(table) => table.get(pk).0,
            NodeStore::Durable(table) => match table.get(pk) {
                Ok((cells, _receipt)) => cells,
                Err(e) => {
                    eprintln!("kvs-net: durable read of {pk:?} failed: {e}");
                    Vec::new()
                }
            },
        }
    }

    /// Applies a replicated write under the last-write-wins rule: a
    /// strictly newer timestamp replaces the partition's version cell and
    /// lands every carried cell; an equal or older timestamp leaves the
    /// incumbent untouched (ties keep the incumbent, so hint replay is
    /// idempotent). Returns `(applied, version_after)`. A durable-tier
    /// error refuses the write (`applied = false`) with the pre-image
    /// version, and the coordinator will not count the ack.
    fn apply(&mut self, req: &WriteRequest) -> (bool, u64) {
        let current = version_of(&self.get(&req.partition));
        if req.timestamp <= current {
            return (false, current);
        }
        match self {
            NodeStore::Ram(table) => {
                for cell in &req.cells {
                    table.put(req.partition.clone(), cell.clone());
                }
                table.put(req.partition.clone(), version_cell(req.timestamp));
            }
            NodeStore::Durable(table) => {
                for cell in &req.cells {
                    if let Err(e) = table.put(req.partition.clone(), cell.clone()) {
                        eprintln!("kvs-net: durable write of {:?} failed: {e}", req.partition);
                        return (false, current);
                    }
                }
                if let Err(e) = table.put(req.partition.clone(), version_cell(req.timestamp)) {
                    eprintln!("kvs-net: version cell write failed: {e}");
                    return (false, current);
                }
                // The ack promises durability: the WAL must be on disk
                // before the coordinator counts this replica.
                if let Err(e) = table.sync_wal() {
                    eprintln!("kvs-net: WAL sync failed: {e}");
                    return (false, current);
                }
            }
        }
        (true, req.timestamp)
    }
}

/// A running slave server; dropping the handle without calling
/// [`SlaveHandle::shutdown`] leaks the server threads, so call it.
pub struct SlaveServer;

/// Handle to a spawned slave server.
pub struct SlaveHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: WorkQueue<Job>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    store: Arc<Mutex<NodeStore>>,
}

impl SlaveServer {
    /// Boots a server owning a RAM-only `table` on an ephemeral loopback
    /// port (see [`SlaveServer::spawn_store`] for the durable tier).
    pub fn spawn(table: Table, cfg: NetServerConfig) -> io::Result<SlaveHandle> {
        SlaveServer::spawn_store(NodeStore::Ram(table), cfg)
    }

    /// Boots a server owning `store` on an ephemeral loopback port.
    pub fn spawn_store(store: NodeStore, cfg: NetServerConfig) -> io::Result<SlaveHandle> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (queue, source) = work_queue::<Job>(cfg.queue_depth.max(1));
        let store = Arc::new(Mutex::new(store));

        let mut workers = Vec::with_capacity(cfg.workers_per_node.max(1));
        for _ in 0..cfg.workers_per_node.max(1) {
            let source = source.clone();
            let store = store.clone();
            workers.push(std::thread::spawn(move || {
                while let Some(job) = source.recv() {
                    serve(&store, job);
                }
            }));
        }

        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let stop = stop.clone();
            let queue = queue.clone();
            let conn_threads = conn_threads.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let (stream, _peer) = match listener.accept() {
                        Ok(pair) => pair,
                        Err(_) => continue,
                    };
                    if stop.load(Ordering::Acquire) {
                        break; // the shutdown wake-up connection
                    }
                    best_effort("set_nodelay", stream.set_nodelay(true));
                    // A socket without the poll timeout would pin its
                    // reader thread at shutdown; worth a log line.
                    best_effort("set_read_timeout", stream.set_read_timeout(Some(READ_POLL)));
                    let queue = queue.clone();
                    let stop = stop.clone();
                    let handle = std::thread::spawn(move || read_connection(stream, queue, stop));
                    conn_threads.lock().push(handle);
                }
            })
        };

        Ok(SlaveHandle {
            addr,
            stop,
            queue,
            accept_thread: Some(accept_thread),
            conn_threads,
            workers,
            store,
        })
    }
}

/// One connection's read loop: deframe, enqueue, reply `Busy` on overflow.
///
/// Reads into a growable buffer and decodes incrementally — the socket has
/// a short read timeout (so shutdown can interrupt an idle connection), and
/// a timeout must not lose the bytes of a partially received frame.
fn read_connection(stream: TcpStream, queue: WorkQueue<Job>, stop: Arc<AtomicBool>) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let conn = Arc::new(Mutex::new(stream));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match io::Read::read(&mut reader, &mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match Frame::decode(&buf) {
                        Ok(Some((frame, used))) => {
                            buf.drain(..used);
                            dispatch(frame, &queue, &conn);
                        }
                        Ok(None) => break, // need more bytes
                        Err(_) => return,  // corrupted stream: drop the conn
                    }
                }
            }
            Err(e) if would_block(&e) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Routes one decoded frame: requests, writes and RMWs go to the
/// deadline-aware queue. A request whose deadline already passed is
/// answered `Expired` without ever occupying a queue slot, a full queue
/// of live work gets an immediate `Busy` reply, and expired entries
/// evicted to make room are each answered `Expired`. Anything else is a
/// protocol violation, dropped.
fn dispatch(frame: Frame, queue: &WorkQueue<Job>, conn: &Arc<Mutex<TcpStream>>) {
    if frame.kind != FrameKind::Request
        && frame.kind != FrameKind::Write
        && frame.kind != FrameKind::Rmw
    {
        return;
    }
    let now = wall_ns();
    // Deadline 0 on the wire means "none"; the queue's never-expires
    // sentinel keeps such entries immortal.
    let deadline = if frame.deadline == 0 {
        NO_DEADLINE
    } else {
        frame.deadline
    };
    let job = Job {
        frame,
        conn: conn.clone(),
    };
    match queue.try_push_timed(job, deadline, now) {
        TimedPush::Accepted { evicted } => {
            for dead in evicted {
                reply_refusal(&dead, FrameKind::Expired);
            }
        }
        TimedPush::AlreadyExpired(job) => reply_refusal(&job, FrameKind::Expired),
        // Queue full: tell the master now rather than letting the request
        // age invisibly.
        TimedPush::Full(job) => reply_refusal(&job, FrameKind::Busy),
        TimedPush::Disconnected(_) => {} // shutting down
    }
}

/// Answers a request with a payload-less refusal (`Busy` or `Expired`).
fn reply_refusal(job: &Job, kind: FrameKind) {
    let refusal = Frame {
        kind,
        flags: job.frame.flags,
        id: job.frame.id,
        stamps: [job.frame.stamps[1], wall_ns(), 0, 0],
        deadline: job.frame.deadline,
        payload: bytes::Bytes::new(),
    };
    // The connection mutex *is* the per-connection write serializer:
    // refusals from readers and responses from workers must not interleave
    // mid-frame, so holding it across the write is the point (waived
    // KVS-L007). A failed write means the master hung up — best effort.
    best_effort("refusal write", refusal.write_to(&mut *job.conn.lock()));
}

// LINT-ZONE: nonblocking — readiness classification for the epoll rewrite.
fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Worker body: decode → store read/write → encode → reply with stage
/// stamps. Work whose deadline has passed while queued is shed *before*
/// the DB stage — the master gets an `Expired` answer instead of a result
/// it can no longer use.
fn serve(store: &Mutex<NodeStore>, job: Job) {
    let dequeued = wall_ns();
    if job.frame.deadline != 0 && dequeued >= job.frame.deadline {
        reply_refusal(&job, FrameKind::Expired);
        return;
    }
    match job.frame.kind {
        FrameKind::Request => serve_read(store, job, dequeued),
        FrameKind::Write => serve_write(store, job, dequeued, false),
        FrameKind::Rmw => serve_write(store, job, dequeued, true),
        // dispatch() never queues these; tolerate and drop.
        FrameKind::Response | FrameKind::WriteAck | FrameKind::Busy | FrameKind::Expired => {}
    }
}

/// The read path: aggregate the partition's per-kind counts (the version
/// cell is bookkeeping, not data — filtered out) and report the
/// partition's LWW version for coordinator-side staleness accounting.
fn serve_read(store: &Mutex<NodeStore>, job: Job, dequeued: u64) {
    let codec = if job.frame.flags & FLAG_COMPACT != 0 {
        Codec::compact()
    } else {
        Codec::verbose()
    };
    let Some(request) = codec.decode_request(job.frame.payload.clone()) else {
        return; // checksummed frame with an undecodable body: drop it
    };
    let cells = store.lock().get(&request.partition);
    let response = QueryResponse::from_kinds(
        request.request_id,
        cells.iter().filter(|c| !is_version_cell(c)).map(|c| c.kind),
    )
    .with_version(version_of(&cells));
    let db_end = wall_ns();
    let reply = Frame {
        kind: FrameKind::Response,
        flags: job.frame.flags,
        id: job.frame.id,
        stamps: [job.frame.stamps[1], dequeued, db_end, wall_ns()],
        deadline: job.frame.deadline,
        payload: codec.encode_response(&response),
    };
    // Same per-connection write serialization as `reply_refusal` (waived
    // KVS-L007); a failed write means the master hung up.
    best_effort("response write", reply.write_to(&mut *job.conn.lock()));
}

/// The write path: apply the batch under last-write-wins and acknowledge
/// with the partition's resulting version. An RMW reads the pre-image
/// first, preserving read-your-write ordering on the replica before the
/// apply decision.
fn serve_write(store: &Mutex<NodeStore>, job: Job, dequeued: u64, rmw: bool) {
    let codec = if job.frame.flags & FLAG_COMPACT != 0 {
        Codec::compact()
    } else {
        Codec::verbose()
    };
    let Some(write) = codec.decode_write(job.frame.payload.clone()) else {
        return; // checksummed frame with an undecodable body: drop it
    };
    let (applied, version) = {
        let mut guard = store.lock();
        if rmw {
            // The pre-image read is the "modify" input; the prototype's
            // aggregation workload only needs its cost, not its value.
            let _pre_image_cells = guard.get(&write.partition).len();
        }
        guard.apply(&write)
    };
    let ack = WriteAck {
        request_id: write.request_id,
        applied,
        version,
    };
    let db_end = wall_ns();
    let reply = Frame {
        kind: FrameKind::WriteAck,
        flags: job.frame.flags,
        id: job.frame.id,
        stamps: [job.frame.stamps[1], dequeued, db_end, wall_ns()],
        deadline: job.frame.deadline,
        payload: codec.encode_write_ack(&ack),
    };
    // Same per-connection write serialization as `reply_refusal` (waived
    // KVS-L007); a failed write means the master hung up.
    best_effort("write-ack write", reply.write_to(&mut *job.conn.lock()));
}

impl SlaveHandle {
    /// The server's loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Backpressure counters of this server's work queue.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Stops the server deterministically and returns the final queue
    /// stats. Joins the accept loop, every connection reader, and the
    /// worker pool — nothing survives the call.
    pub fn shutdown(self) -> QueueStats {
        self.shutdown_take_store().0
    }

    /// Like [`SlaveHandle::shutdown`], but also hands back the node's
    /// [`NodeStore`]. A chaos harness keeps a RAM table for the restart;
    /// a durable store is *dropped* on a kill — its restart must go
    /// through real crash recovery (see `LocalCluster::kill`/`restart`).
    pub fn shutdown_take_store(mut self) -> (QueueStats, NodeStore) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection. If even
        // loopback connect fails the accept loop may hang — say so.
        if let Err(e) = TcpStream::connect(self.addr) {
            eprintln!("kvs-net: shutdown wake-up connect failed: {e}");
        }
        if let Some(h) = self.accept_thread.take() {
            join_logged("accept thread", h);
        }
        let conns = std::mem::take(&mut *self.conn_threads.lock());
        for h in conns {
            join_logged("connection reader", h);
        }
        let stats = self.queue.stats();
        // Workers exit once every queue producer is gone.
        let SlaveHandle {
            queue,
            workers,
            store,
            ..
        } = self;
        drop(queue);
        for h in workers {
            join_logged("worker thread", h);
        }
        let store = Arc::try_unwrap(store)
            .unwrap_or_else(|_| panic!("store still shared after worker join"))
            .into_inner();
        (stats, store)
    }
}
