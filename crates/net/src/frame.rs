//! The wire frame: length-prefixed, checksummed, timestamped.
//!
//! Every message on a `kvs-net` connection travels inside one frame
//! (version 2, the current codec):
//!
//! ```text
//! offset  size  field
//!      0     2  magic        0x4B56 ("KV")
//!      2     1  version      2 (version 1 frames still decode, see below)
//!      3     1  kind         1 = request, 2 = response, 3 = busy,
//!                            4 = expired, 5 = write, 6 = write-ack,
//!                            7 = rmw
//!      4     1  flags        bit 0: payload encoded with the compact codec
//!      5     8  id           request id (present even in busy frames, so
//!                            the master can retry without decoding bodies)
//!     13     4  len          payload length in bytes
//!     17    32  stamps[4]    wall-clock nanoseconds since the UNIX epoch;
//!                            meaning depends on `kind` (see below)
//!     49     8  deadline     absolute wall-clock deadline in nanoseconds
//!                            since the UNIX epoch; 0 = no deadline
//!     57     4  checksum     CRC-32 (IEEE) over bytes [0, 57) + payload
//!     61   len  payload      codec-encoded body (empty for busy and
//!                            expired frames)
//! ```
//!
//! Version 1 frames are identical except the `deadline` field is absent
//! (checksum at offset 49, payload at 53); the decoder accepts them and
//! reports `deadline = 0`, so a v2 master interoperates with v1 peers.
//! The encoder always emits version 2.
//!
//! Integers are big-endian. The CRC covers the header (minus the checksum
//! field itself) and the payload, so any single-bit corruption anywhere
//! in the frame is detected.
//!
//! Timestamp conventions:
//! * request — `stamps[0]` query issue time, `stamps[1]` master send time,
//!   `stamps[2]` the master's monotone send sequence number (not a
//!   timestamp: it counts every request frame the master has written, so
//!   interposers like [`crate::chaos::ChaosProxy`] can audit per-connection
//!   send ordering);
//! * response — `stamps[0]` echoes the request's send time, `stamps[1]`
//!   worker dequeue (= in-db start), `stamps[2]` in-db end, `stamps[3]`
//!   slave send time;
//! * busy — `stamps[0]` echoes the request's send time;
//! * expired — `stamps[0]` echoes the request's send time, `stamps[1]`
//!   the slave-side wall clock when the deadline was found to have passed;
//! * write / rmw — same convention as request (`stamps[0]` issue,
//!   `stamps[1]` coordinator send, `stamps[2]` send sequence number); the
//!   LWW timestamp travels in the payload, not the stamps;
//! * write-ack — same convention as response (`stamps[0]` echoes the
//!   write's send time, `stamps[1]` worker dequeue, `stamps[2]` store
//!   apply end, `stamps[3]` slave send time).
//!
//! The carried wall-clock stamps are comparable across processes on the
//! same host (the loopback deployments this crate targets); the master
//! turns them into the four methodology stages.

use bytes::Bytes;
use std::io::{self, Read, Write};

/// Frame magic, "KV".
pub const MAGIC: u16 = 0x4B56;
/// Wire protocol version emitted by the encoder.
pub const VERSION: u8 = 2;
/// The previous protocol version, still accepted by the decoder.
pub const VERSION_V1: u8 = 1;
/// Fixed header size in bytes for the current version, checksum included.
pub const HEADER_LEN: usize = 61;
/// Fixed header size of version 1 frames (no deadline field).
pub const HEADER_LEN_V1: usize = 53;
/// Bytes of header both versions share: everything through the `len`
/// field, after which the version byte decides the full header size.
const COMMON_PREFIX: usize = 17;
/// Upper bound on payload size — malformed length prefixes fail fast
/// instead of provoking giant allocations.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Flag bit 0: the payload was encoded with the compact codec.
pub const FLAG_COMPACT: u8 = 0b0000_0001;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Master → slave query request.
    Request,
    /// Slave → master query response.
    Response,
    /// Slave → master refusal: the work queue was full. The master should
    /// back off and retry the id.
    Busy,
    /// Slave → master refusal: the request's deadline had already passed
    /// before the DB stage ran. The master should not retry the id — the
    /// deadline will not un-expire.
    Expired,
    /// Master → slave replicated write (payload: `WriteRequest` with an
    /// LWW timestamp).
    Write,
    /// Slave → master write acknowledgement (payload: `WriteAck`).
    WriteAck,
    /// Master → slave read-modify-write: the slave reads the partition
    /// pre-image, then applies the write under the same LWW rule. Same
    /// payload as [`FrameKind::Write`], answered with a write-ack.
    Rmw,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Busy => 3,
            FrameKind::Expired => 4,
            FrameKind::Write => 5,
            FrameKind::WriteAck => 6,
            FrameKind::Rmw => 7,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            3 => Some(FrameKind::Busy),
            4 => Some(FrameKind::Expired),
            5 => Some(FrameKind::Write),
            6 => Some(FrameKind::WriteAck),
            7 => Some(FrameKind::Rmw),
            _ => None,
        }
    }
}

/// Why a byte sequence is not a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// The CRC does not match: the frame was corrupted in flight.
    BadChecksum,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::TooLarge(n) => write!(f, "frame payload of {n} bytes exceeds the cap"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One wire frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Codec and future option bits.
    pub flags: u8,
    /// The request id this frame belongs to.
    pub id: u64,
    /// Wall-clock nanosecond stamps (see the module docs for semantics).
    pub stamps: [u64; 4],
    /// Absolute wall-clock deadline in nanoseconds since the UNIX epoch;
    /// `0` means the request has no deadline. Decoded v1 frames always
    /// report `0`.
    pub deadline: u64,
    /// The codec-encoded body.
    pub payload: Bytes,
}

fn header_len_for(version: u8) -> Result<usize, FrameError> {
    match version {
        VERSION_V1 => Ok(HEADER_LEN_V1),
        VERSION => Ok(HEADER_LEN),
        v => Err(FrameError::BadVersion(v)),
    }
}

impl Frame {
    /// Serializes the frame (always version 2), header + checksum +
    /// payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION);
        out.push(self.kind.to_byte());
        out.push(self.flags);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        for s in self.stamps {
            out.extend_from_slice(&s.to_be_bytes());
        }
        out.extend_from_slice(&self.deadline.to_be_bytes());
        let mut crc = Crc32::new();
        crc.update(&out);
        crc.update(&self.payload);
        out.extend_from_slice(&crc.finish().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Tries to decode one frame (version 1 or 2) from the front of `buf`.
    ///
    /// Returns `Ok(Some((frame, consumed)))` on success,
    /// `Ok(None)` when `buf` is a (possibly empty) prefix of a frame and
    /// more bytes are needed, and `Err` when the bytes can never become a
    /// valid frame. Never panics, whatever the input.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        // Validate what we can see so garbage fails fast even on a prefix.
        if buf.len() >= 2 && buf[..2] != MAGIC.to_be_bytes() {
            return Err(FrameError::BadMagic);
        }
        if buf.len() >= 3 {
            header_len_for(buf[2])?;
        }
        if buf.len() >= 4 && FrameKind::from_byte(buf[3]).is_none() {
            return Err(FrameError::BadKind(buf[3]));
        }
        if buf.len() < COMMON_PREFIX {
            return Ok(None);
        }
        let len = u32::from_be_bytes(buf[13..17].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(FrameError::TooLarge(len));
        }
        let header_len = header_len_for(buf[2]).expect("version validated above");
        if buf.len() < header_len {
            return Ok(None);
        }
        let kind = FrameKind::from_byte(buf[3]).expect("kind validated above");
        let flags = buf[4];
        let id = u64::from_be_bytes(buf[5..13].try_into().expect("8 bytes"));
        let total = header_len + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let mut stamps = [0u64; 4];
        for (i, s) in stamps.iter_mut().enumerate() {
            *s = u64::from_be_bytes(buf[17 + i * 8..25 + i * 8].try_into().expect("8 bytes"));
        }
        // Kept as two separate lets: `crc_off` is an offset derived only
        // from header constants, never from wire bytes, and defining it
        // in the same destructure as the wire-decoded deadline would
        // conflate the two (KVS-L017 tracks taint per definition).
        let crc_off = if buf[2] == VERSION_V1 {
            HEADER_LEN_V1 - 4
        } else {
            HEADER_LEN - 4
        };
        let deadline = if buf[2] == VERSION_V1 {
            0
        } else {
            u64::from_be_bytes(buf[49..57].try_into().expect("8 bytes"))
        };
        let declared = u32::from_be_bytes(buf[crc_off..crc_off + 4].try_into().expect("4 bytes"));
        let mut crc = Crc32::new();
        crc.update(&buf[..crc_off]);
        crc.update(&buf[header_len..total]);
        if crc.finish() != declared {
            return Err(FrameError::BadChecksum);
        }
        Ok(Some((
            Frame {
                kind,
                flags,
                id,
                stamps,
                deadline,
                payload: Bytes::copy_from_slice(&buf[header_len..total]),
            },
            total,
        )))
    }

    /// Writes the frame to a stream in one call.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads exactly one frame from a stream, blocking as needed.
    /// Malformed bytes surface as `InvalidData`.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        // Read the version-independent prefix first; the version byte
        // decides how much more header follows.
        let mut prefix = [0u8; COMMON_PREFIX];
        r.read_exact(&mut prefix)?;
        if let Err(e) = Frame::decode(&prefix) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, e));
        }
        let header_len = header_len_for(prefix[2]).expect("version validated above");
        let declared_len = u32::from_be_bytes(prefix[13..17].try_into().expect("4 bytes"));
        // Validate the wire-declared length BEFORE sizing any buffer
        // from it: `decode` on the prefix above checks it too, but this
        // path must bound the allocation on its own — a hostile peer
        // sends the length, and an unchecked `with_capacity` from it is
        // a remote OOM.
        if declared_len > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                FrameError::TooLarge(declared_len),
            ));
        }
        let len = declared_len as usize;
        let mut buf = Vec::with_capacity(header_len + len);
        buf.extend_from_slice(&prefix);
        buf.resize(header_len + len, 0);
        r.read_exact(&mut buf[COMMON_PREFIX..])?;
        match Frame::decode(&buf) {
            Ok(Some((frame, consumed))) => {
                debug_assert_eq!(consumed, buf.len());
                Ok(frame)
            }
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame decoder made no progress",
            )),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }
}

/// Incremental CRC-32 (IEEE 802.3, polynomial 0xEDB88320), computed
/// bitwise — fast enough for loopback frames and dependency-free.
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Crc32 { state: !0 }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u32;
            for _ in 0..8 {
                let mask = (self.state & 1).wrapping_neg();
                self.state = (self.state >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }

    fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            kind: FrameKind::Response,
            flags: FLAG_COMPACT,
            id: 0xDEAD_BEEF,
            stamps: [1, 2, 3, u64::MAX],
            deadline: 0x0102_0304_0506_0708,
            payload: Bytes::copy_from_slice(b"hello frames"),
        }
    }

    /// Hand-assembles a version 1 frame (53-byte header, no deadline).
    fn encode_v1(kind: u8, flags: u8, id: u64, stamps: [u64; 4], payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION_V1);
        out.push(kind);
        out.push(flags);
        out.extend_from_slice(&id.to_be_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        for s in stamps {
            out.extend_from_slice(&s.to_be_bytes());
        }
        let mut crc = Crc32::new();
        crc.update(&out);
        crc.update(payload);
        out.extend_from_slice(&crc.finish().to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 — the standard check value.
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let bytes = f.encode();
        let (decoded, consumed) = Frame::decode(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, f);
    }

    #[test]
    fn v1_frames_still_decode() {
        let wire = encode_v1(2, FLAG_COMPACT, 0xABCD, [10, 20, 30, 40], b"legacy");
        let (decoded, consumed) = Frame::decode(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(decoded.kind, FrameKind::Response);
        assert_eq!(decoded.flags, FLAG_COMPACT);
        assert_eq!(decoded.id, 0xABCD);
        assert_eq!(decoded.stamps, [10, 20, 30, 40]);
        assert_eq!(decoded.deadline, 0, "v1 frames carry no deadline");
        assert_eq!(&decoded.payload[..], b"legacy");
        // And through the streaming path, mixed with a v2 frame behind it.
        let mut stream = wire.clone();
        stream.extend_from_slice(&sample().encode());
        let mut cursor = &stream[..];
        let first = Frame::read_from(&mut cursor).unwrap();
        assert_eq!(first.id, 0xABCD);
        let second = Frame::read_from(&mut cursor).unwrap();
        assert_eq!(second, sample());
        assert!(cursor.is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // A hostile peer declares a payload beyond MAX_PAYLOAD. The
        // streaming path must reject the frame from the 17-byte prefix
        // alone — never sizing a buffer from the declared length.
        let mut wire = sample().encode();
        wire[13..17].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = &wire[..];
        let err = Frame::read_from(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("exceeds the cap"),
            "want TooLarge, got: {err}"
        );
        // One past the cap is rejected too; exactly at the cap the
        // declared length passes the bound (and then fails on missing
        // payload bytes, not on the length itself).
        wire[13..17].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        let err = Frame::read_from(&mut &wire[..]).unwrap_err();
        assert!(err.to_string().contains("exceeds the cap"), "got: {err}");
        wire[13..17].copy_from_slice(&MAX_PAYLOAD.to_be_bytes());
        let err = Frame::read_from(&mut &wire[..]).unwrap_err();
        assert!(!err.to_string().contains("exceeds the cap"), "got: {err}");
    }

    #[test]
    fn v1_prefixes_want_more_bytes() {
        let wire = encode_v1(1, 0, 9, [1, 2, 3, 4], b"p");
        for cut in 0..wire.len() {
            assert_eq!(
                Frame::decode(&wire[..cut]),
                Ok(None),
                "v1 prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = sample().encode();
        bytes[2] = 3;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadVersion(3)));
        assert_eq!(Frame::decode(&bytes[..3]), Err(FrameError::BadVersion(3)));
    }

    #[test]
    fn decode_from_concatenated_stream() {
        let a = sample();
        let b = Frame {
            kind: FrameKind::Busy,
            flags: 0,
            id: 7,
            stamps: [9, 0, 0, 0],
            deadline: 0,
            payload: Bytes::new(),
        };
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let (da, used) = Frame::decode(&stream).unwrap().unwrap();
        assert_eq!(da, a);
        let (db, used_b) = Frame::decode(&stream[used..]).unwrap().unwrap();
        assert_eq!(db, b);
        assert_eq!(used + used_b, stream.len());
    }

    #[test]
    fn every_prefix_wants_more_bytes() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Frame::decode(&bytes[..cut]),
                Ok(None),
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn single_byte_corruption_never_yields_a_frame() {
        // A flipped length byte may legitimately turn into "need more
        // bytes" (`Ok(None)`); what corruption must never produce is a
        // successfully decoded frame.
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                !matches!(Frame::decode(&bad), Ok(Some(_))),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn expired_kind_roundtrips() {
        let f = Frame {
            kind: FrameKind::Expired,
            flags: 0,
            id: 11,
            stamps: [100, 200, 0, 0],
            deadline: 150,
            payload: Bytes::new(),
        };
        let wire = f.encode();
        assert_eq!(wire.len(), HEADER_LEN);
        let (decoded, _) = Frame::decode(&wire).unwrap().unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn write_path_kinds_roundtrip() {
        for (kind, byte) in [
            (FrameKind::Write, 5u8),
            (FrameKind::WriteAck, 6),
            (FrameKind::Rmw, 7),
        ] {
            let f = Frame {
                kind,
                flags: FLAG_COMPACT,
                id: 21,
                stamps: [100, 200, 3, 0],
                deadline: 900,
                payload: Bytes::copy_from_slice(b"write body"),
            };
            let wire = f.encode();
            assert_eq!(wire[3], byte);
            let (decoded, consumed) = Frame::decode(&wire).unwrap().unwrap();
            assert_eq!(consumed, wire.len());
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = sample().encode();
        bytes[13..17].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::TooLarge(MAX_PAYLOAD + 1))
        );
        // Fails fast even before the full header has arrived.
        assert_eq!(
            Frame::decode(&bytes[..COMMON_PREFIX]),
            Err(FrameError::TooLarge(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn stream_read_write() {
        let mut wire = Vec::new();
        sample().write_to(&mut wire).unwrap();
        let mut cursor = &wire[..];
        let got = Frame::read_from(&mut cursor).unwrap();
        assert_eq!(got, sample());
        assert!(cursor.is_empty());
    }

    #[test]
    fn stream_read_empty_payload() {
        let busy = Frame {
            kind: FrameKind::Busy,
            flags: 0,
            id: 42,
            stamps: [5, 0, 0, 0],
            deadline: 0,
            payload: Bytes::new(),
        };
        let wire = busy.encode();
        assert_eq!(wire.len(), HEADER_LEN);
        let mut cursor = &wire[..];
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), busy);
    }
}
