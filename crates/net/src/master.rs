//! The network master: a connection pool over every slave, the paper's
//! "fire all requests, then drain responses" query loop, and the stage
//! bookkeeping that turns frame timestamps into a
//! [`kvs_cluster::RunResult`].
//!
//! Reliability model: one TCP connection per slave, a reader thread per
//! connection funneling frames into one channel, per-request deadlines,
//! and bounded retries. A `Busy` frame (slave queue full) schedules a
//! quick retry that does not consume the failure budget; a deadline
//! expiry re-sends the request at most [`NetConfig::max_retries`] times.
//! Either way a request that makes no progress within
//! `timeout × (max_retries + 1)` of wall clock fails the query.

use crate::clock::wall_ns;
use crate::frame::{Frame, FrameKind, FLAG_COMPACT};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use kvs_cluster::{Codec, CodecKind, QueryRequest, RunResult};
use kvs_simcore::{SimDuration, SimTime};
use kvs_stages::{analyze, Stage, TraceRecorder};
use kvs_store::PartitionKey;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Master-side configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Request/response serialization (advertised per frame; slaves answer
    /// in kind).
    pub codec: Codec,
    /// Per-request deadline before a retry is issued.
    pub timeout: Duration,
    /// How many times one request may be re-sent after a *timeout* before
    /// the query errors out. `Busy` replies are flow control, not
    /// failures: they retry without consuming this budget, bounded
    /// instead by the request's overall wall-clock allowance of
    /// `timeout × (max_retries + 1)`.
    pub max_retries: u32,
    /// Back-off before retrying a request a slave answered `Busy` to.
    pub busy_backoff: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            codec: Codec::compact(),
            timeout: Duration::from_secs(2),
            max_retries: 8,
            busy_backoff: Duration::from_millis(1),
        }
    }
}

/// What a network query run reports beyond the shared [`RunResult`]:
/// master-side per-message costs (the calibration inputs) and the retry
/// counters.
#[derive(Debug)]
pub struct NetRunReport {
    /// The standard run outcome (traces, stage report, aggregates).
    pub result: RunResult,
    /// Master CPU+syscall time spent encoding/framing/writing requests, µs.
    pub tx_micros: u64,
    /// Master CPU+syscall time spent decoding responses, µs.
    pub rx_micros: u64,
    /// Requests re-sent because a slave answered `Busy`.
    pub busy_retries: u64,
    /// Requests re-sent because their deadline expired.
    pub timeout_retries: u64,
}

impl NetRunReport {
    /// Measured master send cost per message, µs (the paper's `t_msg`).
    pub fn tx_us_per_msg(&self) -> f64 {
        self.tx_micros as f64 / self.result.messages.max(1) as f64
    }

    /// Measured master receive cost per message, µs.
    pub fn rx_us_per_msg(&self) -> f64 {
        self.rx_micros as f64 / self.result.messages.max(1) as f64
    }
}

struct Pending {
    node: u32,
    payload: Bytes,
    attempts: u32,
    sent_wall: u64,
    issued_wall: u64,
    /// Next retry instant (timeout, or busy back-off when `busy`).
    deadline: Instant,
    /// Hard wall-clock limit for this request across all retries.
    expires: Instant,
    /// The last resend trigger was a `Busy` frame (for counter accounting
    /// and the retry budget).
    busy: bool,
}

/// A connected master.
pub struct NetMaster {
    writers: Vec<TcpStream>,
    rx: Receiver<(u32, Frame)>,
    readers: Vec<JoinHandle<()>>,
    cfg: NetConfig,
}

impl NetMaster {
    /// Connects to every slave; `addrs[i]` must be node `i`'s server.
    pub fn connect(addrs: &[SocketAddr], cfg: NetConfig) -> io::Result<NetMaster> {
        let (tx, rx) = unbounded::<(u32, Frame)>();
        let mut writers = Vec::with_capacity(addrs.len());
        let mut readers = Vec::with_capacity(addrs.len());
        for (node, addr) in addrs.iter().enumerate() {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            let mut read_half = stream.try_clone()?;
            writers.push(stream);
            let tx = tx.clone();
            let node = node as u32;
            readers.push(std::thread::spawn(move || loop {
                match Frame::read_from(&mut read_half) {
                    Ok(frame) => {
                        if tx.send((node, frame)).is_err() {
                            return;
                        }
                    }
                    Err(_) => return, // connection closed or corrupted
                }
            }));
        }
        Ok(NetMaster {
            writers,
            rx,
            readers,
            cfg,
        })
    }

    /// Runs the aggregation query: issues one request per `(partition,
    /// node)` pair, then drains responses. All keys are known up front, as
    /// in the paper's simple case.
    pub fn run_query(&mut self, keys: &[(PartitionKey, u32)]) -> io::Result<NetRunReport> {
        self.run_with_arrivals(keys, None)
    }

    /// Like [`NetMaster::run_query`], but each request `i` is released
    /// only once `arrivals_ns[i]` nanoseconds have elapsed since the run
    /// started — the open-loop load generator's entry point. `None` means
    /// release everything immediately (closed batch).
    pub fn run_with_arrivals(
        &mut self,
        keys: &[(PartitionKey, u32)],
        arrivals_ns: Option<&[u64]>,
    ) -> io::Result<NetRunReport> {
        if let Some(a) = arrivals_ns {
            assert_eq!(a.len(), keys.len(), "one arrival offset per key");
        }
        let flags = match self.cfg.codec.kind {
            CodecKind::Compact => FLAG_COMPACT,
            CodecKind::Verbose => 0,
        };
        let origin_wall = wall_ns();
        let origin = Instant::now();
        let to_sim = |w: u64| SimTime::from_nanos(w.saturating_sub(origin_wall));

        let mut pending: HashMap<u64, Pending> = HashMap::with_capacity(keys.len());
        let mut tx_micros = 0u64;
        let mut rx_micros = 0u64;
        let mut busy_retries = 0u64;
        let mut timeout_retries = 0u64;
        let mut bytes_to_slaves = 0u64;
        let mut bytes_to_master = 0u64;
        let mut send_last = origin;

        // ---- Issue phase. ----
        for (i, (pk, node)) in keys.iter().enumerate() {
            if let Some(arrivals) = arrivals_ns {
                let due = Duration::from_nanos(arrivals[i]);
                loop {
                    let elapsed = origin.elapsed();
                    if elapsed >= due {
                        break;
                    }
                    let gap = due - elapsed;
                    if gap > Duration::from_micros(100) {
                        std::thread::sleep(gap - Duration::from_micros(50));
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            let issued_wall = match arrivals_ns {
                Some(a) => origin_wall + a[i],
                None => origin_wall,
            };
            let t0 = Instant::now();
            let payload = self.cfg.codec.encode_request(&QueryRequest {
                request_id: i as u64,
                partition: pk.clone(),
            });
            let sent_wall = wall_ns();
            let frame = Frame {
                kind: FrameKind::Request,
                flags,
                id: i as u64,
                stamps: [issued_wall, sent_wall, 0, 0],
                payload: payload.clone(),
            };
            self.write_frame(*node, &frame)?;
            tx_micros += t0.elapsed().as_micros() as u64;
            send_last = Instant::now();
            bytes_to_slaves += payload.len() as u64;
            pending.insert(
                i as u64,
                Pending {
                    node: *node,
                    payload,
                    attempts: 1,
                    sent_wall,
                    issued_wall,
                    deadline: send_last + self.cfg.timeout,
                    expires: send_last + self.cfg.timeout * (self.cfg.max_retries + 1),
                    busy: false,
                },
            );
        }

        // ---- Collect phase. ----
        let mut recorder = TraceRecorder::new();
        let mut counts: BTreeMap<u8, u64> = BTreeMap::new();
        let mut total_cells = 0u64;
        while !pending.is_empty() {
            let nearest = pending
                .values()
                .map(|p| p.deadline)
                .min()
                .expect("non-empty pending");
            let wait = nearest
                .saturating_duration_since(Instant::now())
                .max(Duration::from_micros(100));
            match self.rx.recv_timeout(wait) {
                Ok((node, frame)) => match frame.kind {
                    FrameKind::Response => {
                        let t0 = Instant::now();
                        let Some(response) = self.cfg.codec.decode_response(frame.payload.clone())
                        else {
                            continue; // checksummed but undecodable: let the retry path handle it
                        };
                        let done_wall = wall_ns();
                        rx_micros += t0.elapsed().as_micros() as u64;
                        let Some(p) = pending.remove(&frame.id) else {
                            continue; // duplicate (a retry raced its original)
                        };
                        bytes_to_master += frame.payload.len() as u64;
                        let id = frame.id;
                        recorder.begin(id, node, response.cells);
                        recorder.record(
                            id,
                            Stage::MasterToSlave,
                            to_sim(p.issued_wall),
                            to_sim(p.sent_wall),
                        );
                        recorder.record(
                            id,
                            Stage::InQueue,
                            to_sim(frame.stamps[0]),
                            to_sim(frame.stamps[1]),
                        );
                        recorder.record(
                            id,
                            Stage::InDb,
                            to_sim(frame.stamps[1]),
                            to_sim(frame.stamps[2]),
                        );
                        recorder.record(
                            id,
                            Stage::SlaveToMaster,
                            to_sim(frame.stamps[2]),
                            to_sim(done_wall),
                        );
                        for (&kind, &count) in &response.counts {
                            *counts.entry(kind).or_insert(0) += count;
                        }
                        total_cells += response.cells;
                    }
                    FrameKind::Busy => {
                        if let Some(p) = pending.get_mut(&frame.id) {
                            // Pull the deadline in: retry after a short
                            // back-off through the common expiry path.
                            p.busy = true;
                            p.deadline = Instant::now() + self.cfg.busy_backoff;
                        }
                    }
                    FrameKind::Request => {} // protocol violation; ignore
                },
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "every slave connection dropped mid-query",
                    ));
                }
            }

            // ---- Retry expired requests. ----
            let now = Instant::now();
            let expired: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let p = pending.get_mut(&id).expect("expired id present");
                // Busy resends are flow control and don't consume the
                // timeout budget, but every request has a hard wall-clock
                // allowance so a wedged slave still surfaces as an error.
                let exhausted = if p.busy {
                    now >= p.expires
                } else {
                    p.attempts > self.cfg.max_retries
                };
                if exhausted {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "request {id} to node {} failed after {} attempts",
                            p.node, p.attempts
                        ),
                    ));
                }
                if p.busy {
                    busy_retries += 1;
                } else {
                    timeout_retries += 1;
                    p.attempts += 1;
                }
                p.busy = false;
                let t0 = Instant::now();
                let sent_wall = wall_ns();
                let frame = Frame {
                    kind: FrameKind::Request,
                    flags,
                    id,
                    stamps: [p.issued_wall, sent_wall, 0, 0],
                    payload: p.payload.clone(),
                };
                let node = p.node;
                p.sent_wall = sent_wall;
                p.deadline = Instant::now() + self.cfg.timeout;
                bytes_to_slaves += p.payload.len() as u64;
                self.write_frame(node, &frame)?;
                tx_micros += t0.elapsed().as_micros() as u64;
            }
        }

        let traces = recorder.into_traces();
        let report = analyze(&traces);
        Ok(NetRunReport {
            result: RunResult {
                makespan: report.makespan,
                report,
                traces,
                counts_by_kind: counts,
                total_cells,
                messages: keys.len() as u64,
                bytes_to_slaves,
                bytes_to_master,
                issue_span: SimDuration::from_nanos(
                    send_last.saturating_duration_since(origin).as_nanos() as u64,
                ),
                failovers: 0,
                queue: None,
            },
            tx_micros,
            rx_micros,
            busy_retries,
            timeout_retries,
        })
    }

    fn write_frame(&mut self, node: u32, frame: &Frame) -> io::Result<()> {
        let writer = self.writers.get_mut(node as usize).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no connection for node {node}"),
            )
        })?;
        frame.write_to(writer)
    }

    /// Closes every connection and joins the reader threads.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        for w in &self.writers {
            let _ = w.shutdown(Shutdown::Both);
        }
        self.writers.clear();
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetMaster {
    fn drop(&mut self) {
        self.close();
    }
}
