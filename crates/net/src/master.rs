//! The network master: a connection pool over every slave, the paper's
//! "fire all requests, then drain responses" query loop, and the stage
//! bookkeeping that turns frame timestamps into a
//! [`kvs_cluster::RunResult`].
//!
//! Reliability model: one TCP connection per slave, a reader thread per
//! connection funneling frames into one channel, per-request deadlines,
//! and bounded retries. A `Busy` frame (slave queue full) is flow control,
//! never a failure: it schedules a quick retry that does not consume the
//! failure budget, and — because a `Busy` reply proves the slave alive —
//! it re-arms the request's wall-clock allowance. A deadline expiry
//! re-sends the request at most [`NetConfig::max_retries`] times; once
//! that budget is exhausted (or the connection drops, or a corrupted
//! frame forces a disconnect) the master *fails over* to the next live
//! replica of the key, marking the unresponsive node suspected-dead so
//! later picks avoid it. Only a request whose every replica is dead or
//! exhausted fails the query.

use crate::clock::wall_ns;
use crate::frame::{Frame, FrameKind, FLAG_COMPACT};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use kvs_cluster::{Codec, CodecKind, QueryRequest, ReplicaPolicy, RunResult};
use kvs_simcore::{SimDuration, SimTime};
use kvs_stages::{analyze, Stage, TraceRecorder};
use kvs_store::PartitionKey;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One sub-query route: a partition key plus the nodes holding a replica
/// of it, primary first (the order [`kvs_cluster::ClusterData`] placed
/// them in). The master picks among the replicas with
/// [`NetConfig::replica_policy`] and walks the list on failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The partition this sub-query aggregates.
    pub key: PartitionKey,
    /// Replica node indexes, primary first. Must be non-empty.
    pub replicas: Vec<u32>,
}

impl Route {
    /// A single-replica route (replication factor 1).
    pub fn single(key: PartitionKey, node: u32) -> Route {
        Route {
            key,
            replicas: vec![node],
        }
    }
}

/// Master-side configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Request/response serialization (advertised per frame; slaves answer
    /// in kind).
    pub codec: Codec,
    /// Per-request deadline before a retry is issued.
    pub timeout: Duration,
    /// How many times one request may be re-sent to the *same replica*
    /// after a timeout before the master gives up on that replica and
    /// fails over to the next one. `Busy` replies are flow control, not
    /// failures: they retry without consuming this budget, and each one
    /// re-arms the request's wall-clock allowance of
    /// `timeout × (max_retries + 1)` (the slave demonstrably lives).
    pub max_retries: u32,
    /// Back-off before retrying a request a slave answered `Busy` to.
    pub busy_backoff: Duration,
    /// How the master picks a replica for each sub-query (paper §VIII).
    pub replica_policy: ReplicaPolicy,
    /// Seed for the policy RNG (the `Random` policy); fixed seed ⇒
    /// deterministic replica choices.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            codec: Codec::compact(),
            timeout: Duration::from_secs(2),
            max_retries: 8,
            busy_backoff: Duration::from_millis(1),
            replica_policy: ReplicaPolicy::Primary,
            seed: 0x5EED,
        }
    }
}

/// What a network query run reports beyond the shared [`RunResult`]:
/// master-side per-message costs (the calibration inputs), the retry
/// counters, and the failover bookkeeping.
#[derive(Debug)]
pub struct NetRunReport {
    /// The standard run outcome (traces, stage report, aggregates).
    pub result: RunResult,
    /// Master CPU+syscall time spent encoding/framing/writing requests, µs.
    pub tx_micros: u64,
    /// Master CPU+syscall time spent decoding responses, µs.
    pub rx_micros: u64,
    /// Requests re-sent because a slave answered `Busy`.
    pub busy_retries: u64,
    /// Requests re-sent (to the same replica) because their deadline
    /// expired.
    pub timeout_retries: u64,
    /// Requests re-routed to another replica after their current one
    /// timed out, exhausted its retry budget, or dropped its connection.
    pub failovers: u64,
    /// Nodes the master stopped trusting during the run: their connection
    /// died, a corrupted frame forced a disconnect, or they exhausted a
    /// request's retry budget. Sorted, deduplicated.
    pub suspected_dead: Vec<u32>,
    /// Master↔slave connections torn down because a frame failed its CRC
    /// (after corruption the byte stream cannot be re-synchronized).
    pub crc_disconnects: u64,
    /// The aggregate retry cost: wall-clock time completed requests spent
    /// between their first send and the send that finally got a response
    /// (0 for a run with no retries). This is the share of the
    /// master-to-slave stage attributable to busy back-off, timeouts and
    /// failover detection.
    pub retry_wait_ms: f64,
}

impl NetRunReport {
    /// Measured master send cost per message, µs (the paper's `t_msg`).
    pub fn tx_us_per_msg(&self) -> f64 {
        self.tx_micros as f64 / self.result.messages.max(1) as f64
    }

    /// Measured master receive cost per message, µs.
    pub fn rx_us_per_msg(&self) -> f64 {
        self.rx_micros as f64 / self.result.messages.max(1) as f64
    }
}

/// Why a connection reader exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DownReason {
    /// EOF or a transport error: the peer is gone.
    Closed,
    /// A frame failed validation (CRC/framing): the stream is
    /// unrecoverable, so the connection was dropped.
    Corrupt,
}

/// What a reader thread reports to the collect loop.
enum Event {
    Frame(u32, Frame),
    Down(u32, DownReason),
}

struct Pending {
    /// Replica nodes of this key, primary first (the route).
    replicas: Vec<u32>,
    /// Index into `replicas` of the replica currently being tried.
    replica_ix: usize,
    payload: Bytes,
    attempts: u32,
    first_sent_wall: u64,
    sent_wall: u64,
    issued_wall: u64,
    /// Next retry instant (timeout, or busy back-off when `busy`).
    deadline: Instant,
    /// Hard wall-clock limit for this request on the current replica.
    /// Re-armed by `Busy` replies (liveness evidence) and on failover.
    expires: Instant,
    /// The last resend trigger was a `Busy` frame (for counter accounting
    /// and the retry budget).
    busy: bool,
}

impl Pending {
    fn node(&self) -> u32 {
        self.replicas[self.replica_ix]
    }
}

/// A connected master.
pub struct NetMaster {
    writers: Vec<Option<TcpStream>>,
    rx: Receiver<Event>,
    readers: Vec<JoinHandle<()>>,
    cfg: NetConfig,
    /// Nodes this master no longer trusts (dead connection, corrupt
    /// stream, or exhausted retry budget). Persists across queries.
    dead: BTreeSet<u32>,
    crc_disconnects: u64,
    /// Monotone per-master send sequence, stamped into request frames
    /// (`stamps[2]`) so interposers and tests can assert ordering.
    send_seq: u64,
    policy_rng: StdRng,
}

impl NetMaster {
    /// Connects to every slave; `addrs[i]` must be node `i`'s server.
    pub fn connect(addrs: &[SocketAddr], cfg: NetConfig) -> io::Result<NetMaster> {
        let (tx, rx) = unbounded::<Event>();
        let mut writers = Vec::with_capacity(addrs.len());
        let mut readers = Vec::with_capacity(addrs.len());
        for (node, addr) in addrs.iter().enumerate() {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            let mut read_half = stream.try_clone()?;
            writers.push(Some(stream));
            let tx = tx.clone();
            let node = node as u32;
            readers.push(std::thread::spawn(move || loop {
                match Frame::read_from(&mut read_half) {
                    Ok(frame) => {
                        if tx.send(Event::Frame(node, frame)).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let reason = if e.kind() == io::ErrorKind::InvalidData {
                            DownReason::Corrupt
                        } else {
                            DownReason::Closed
                        };
                        let _ = tx.send(Event::Down(node, reason));
                        return;
                    }
                }
            }));
        }
        Ok(NetMaster {
            writers,
            rx,
            readers,
            dead: BTreeSet::new(),
            crc_disconnects: 0,
            send_seq: 0,
            policy_rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        })
    }

    /// Nodes currently considered dead by this master.
    pub fn suspected_dead(&self) -> Vec<u32> {
        self.dead.iter().copied().collect()
    }

    /// Runs the aggregation query: issues one request per route, then
    /// drains responses, failing over between replicas as needed. All
    /// keys are known up front, as in the paper's simple case.
    pub fn run_query(&mut self, routes: &[Route]) -> io::Result<NetRunReport> {
        self.run_with_arrivals(routes, None)
    }

    /// Like [`NetMaster::run_query`], but each request `i` is released
    /// only once `arrivals_ns[i]` nanoseconds have elapsed since the run
    /// started — the open-loop load generator's entry point. `None` means
    /// release everything immediately (closed batch).
    pub fn run_with_arrivals(
        &mut self,
        routes: &[Route],
        arrivals_ns: Option<&[u64]>,
    ) -> io::Result<NetRunReport> {
        if let Some(a) = arrivals_ns {
            assert_eq!(a.len(), routes.len(), "one arrival offset per route");
        }
        let flags = match self.cfg.codec.kind {
            CodecKind::Compact => FLAG_COMPACT,
            CodecKind::Verbose => 0,
        };
        let origin_wall = wall_ns();
        let origin = Instant::now();
        let to_sim = |w: u64| SimTime::from_nanos(w.saturating_sub(origin_wall));
        let allowance = self.cfg.timeout * (self.cfg.max_retries + 1);

        let mut pending: HashMap<u64, Pending> = HashMap::with_capacity(routes.len());
        let mut ctr = Counters::default();
        let mut inflight: Vec<usize> = vec![0; self.writers.len()];
        let mut send_last = origin;

        // ---- Issue phase. ----
        for (i, route) in routes.iter().enumerate() {
            assert!(!route.replicas.is_empty(), "route {i} has no replicas");
            if let Some(arrivals) = arrivals_ns {
                let due = Duration::from_nanos(arrivals[i]);
                loop {
                    let elapsed = origin.elapsed();
                    if elapsed >= due {
                        break;
                    }
                    let gap = due - elapsed;
                    if gap > Duration::from_micros(100) {
                        std::thread::sleep(gap - Duration::from_micros(50));
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            let issued_wall = match arrivals_ns {
                Some(a) => origin_wall + a[i],
                None => origin_wall,
            };
            let t0 = Instant::now();
            let payload = self.cfg.codec.encode_request(&QueryRequest {
                request_id: i as u64,
                partition: route.key.clone(),
            });

            // Replica choice: the configured policy proposes, the dead
            // set disposes — a suspected-dead pick slides to the next
            // live replica (counted as a failover, like the sim's).
            let loads: Vec<usize> = route
                .replicas
                .iter()
                .map(|&n| inflight.get(n as usize).copied().unwrap_or(0))
                .collect();
            let picked = self.cfg.replica_policy.pick(
                route.replicas.len(),
                &loads,
                i as u64,
                &mut self.policy_rng,
            );
            let mut p = Pending {
                replicas: route.replicas.clone(),
                replica_ix: picked,
                payload,
                attempts: 1,
                first_sent_wall: 0,
                sent_wall: 0,
                issued_wall,
                deadline: Instant::now(),
                expires: Instant::now(),
                busy: false,
            };
            if self.dead.contains(&p.node()) {
                self.failover(i as u64, &mut p, &mut ctr)?;
            }

            let sent_wall = self.send_pending(i as u64, &mut p, flags, &mut ctr)?;
            p.first_sent_wall = sent_wall;
            ctr.tx_micros += t0.elapsed().as_micros() as u64;
            send_last = Instant::now();
            p.deadline = send_last + self.cfg.timeout;
            p.expires = send_last + allowance;
            *inflight
                .get_mut(p.node() as usize)
                .expect("node index in range") += 1;
            ctr.bytes_to_slaves += p.payload.len() as u64;
            pending.insert(i as u64, p);
        }

        // ---- Collect phase. ----
        let mut recorder = TraceRecorder::new();
        let mut counts: BTreeMap<u8, u64> = BTreeMap::new();
        let mut total_cells = 0u64;
        while !pending.is_empty() {
            let nearest = pending
                .values()
                .map(|p| p.deadline)
                .min()
                .expect("non-empty pending");
            let wait = nearest
                .saturating_duration_since(Instant::now())
                .max(Duration::from_micros(100));
            match self.rx.recv_timeout(wait) {
                Ok(Event::Frame(node, frame)) => match frame.kind {
                    FrameKind::Response => {
                        let t0 = Instant::now();
                        let Some(response) = self.cfg.codec.decode_response(frame.payload.clone())
                        else {
                            continue; // checksummed but undecodable: let the retry path handle it
                        };
                        let done_wall = wall_ns();
                        ctr.rx_micros += t0.elapsed().as_micros() as u64;
                        let Some(p) = pending.remove(&frame.id) else {
                            continue; // duplicate (a retry raced its original)
                        };
                        if let Some(slot) = inflight.get_mut(p.node() as usize) {
                            *slot = slot.saturating_sub(1);
                        }
                        ctr.bytes_to_master += frame.payload.len() as u64;
                        ctr.retry_wait_ns += p.sent_wall.saturating_sub(p.first_sent_wall);
                        let id = frame.id;
                        recorder.begin(id, node, response.cells);
                        recorder.record(
                            id,
                            Stage::MasterToSlave,
                            to_sim(p.issued_wall),
                            to_sim(p.sent_wall),
                        );
                        recorder.record(
                            id,
                            Stage::InQueue,
                            to_sim(frame.stamps[0]),
                            to_sim(frame.stamps[1]),
                        );
                        recorder.record(
                            id,
                            Stage::InDb,
                            to_sim(frame.stamps[1]),
                            to_sim(frame.stamps[2]),
                        );
                        recorder.record(
                            id,
                            Stage::SlaveToMaster,
                            to_sim(frame.stamps[2]),
                            to_sim(done_wall),
                        );
                        for (&kind, &count) in &response.counts {
                            *counts.entry(kind).or_insert(0) += count;
                        }
                        total_cells += response.cells;
                    }
                    FrameKind::Busy => {
                        if let Some(p) = pending.get_mut(&frame.id) {
                            // Pull the deadline in: retry after a short
                            // back-off through the common expiry path.
                            // The slave demonstrably lives, so re-arm the
                            // wall-clock allowance — Busy is flow
                            // control, never a failure (see the
                            // regression test in tests/busy_budget.rs).
                            p.busy = true;
                            let now = Instant::now();
                            p.deadline = now + self.cfg.busy_backoff;
                            p.expires = now + allowance;
                        }
                    }
                    FrameKind::Request => {} // protocol violation; ignore
                },
                Ok(Event::Down(node, reason)) => {
                    if reason == DownReason::Corrupt {
                        self.crc_disconnects += 1;
                        ctr.crc_disconnects += 1;
                    }
                    self.mark_dead(node);
                    // Everything in flight on that node fails over now
                    // rather than waiting out its timeout.
                    let stranded: Vec<u64> = pending
                        .iter()
                        .filter(|(_, p)| p.node() == node)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in stranded {
                        let mut p = pending.remove(&id).expect("stranded id present");
                        if let Some(slot) = inflight.get_mut(p.node() as usize) {
                            *slot = slot.saturating_sub(1);
                        }
                        self.failover(id, &mut p, &mut ctr)?;
                        self.send_pending(id, &mut p, flags, &mut ctr)?;
                        let now = Instant::now();
                        p.deadline = now + self.cfg.timeout;
                        p.expires = now + allowance;
                        p.attempts = 1;
                        p.busy = false;
                        ctr.bytes_to_slaves += p.payload.len() as u64;
                        if let Some(slot) = inflight.get_mut(p.node() as usize) {
                            *slot += 1;
                        }
                        pending.insert(id, p);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "every slave connection dropped mid-query",
                    ));
                }
            }

            // ---- Retry expired requests. ----
            let now = Instant::now();
            let expired: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let mut p = pending.remove(&id).expect("expired id present");
                if let Some(slot) = inflight.get_mut(p.node() as usize) {
                    *slot = slot.saturating_sub(1);
                }
                // Busy resends are flow control and don't consume the
                // retry budget; their allowance re-arms on every Busy
                // receipt, so hitting `expires` here means the slave went
                // silent after flow-controlling us. Timeout resends are
                // bounded by `max_retries` per replica. Either way,
                // exhaustion suspects the replica and fails over.
                let exhausted = if p.busy {
                    now >= p.expires
                } else {
                    p.attempts > self.cfg.max_retries
                };
                if exhausted {
                    self.mark_dead(p.node());
                    self.failover(id, &mut p, &mut ctr)?;
                    p.attempts = 1;
                } else if p.busy {
                    ctr.busy_retries += 1;
                } else {
                    ctr.timeout_retries += 1;
                    p.attempts += 1;
                }
                p.busy = false;
                let t0 = Instant::now();
                self.send_pending(id, &mut p, flags, &mut ctr)?;
                ctr.tx_micros += t0.elapsed().as_micros() as u64;
                let now = Instant::now();
                p.deadline = now + self.cfg.timeout;
                if exhausted {
                    p.expires = now + allowance;
                }
                ctr.bytes_to_slaves += p.payload.len() as u64;
                if let Some(slot) = inflight.get_mut(p.node() as usize) {
                    *slot += 1;
                }
                pending.insert(id, p);
            }
        }

        let traces = recorder.into_traces();
        let report = analyze(&traces);
        Ok(NetRunReport {
            result: RunResult {
                makespan: report.makespan,
                report,
                traces,
                counts_by_kind: counts,
                total_cells,
                messages: routes.len() as u64,
                bytes_to_slaves: ctr.bytes_to_slaves,
                bytes_to_master: ctr.bytes_to_master,
                issue_span: SimDuration::from_nanos(
                    send_last.saturating_duration_since(origin).as_nanos() as u64,
                ),
                failovers: ctr.failovers,
                queue: None,
            },
            tx_micros: ctr.tx_micros,
            rx_micros: ctr.rx_micros,
            busy_retries: ctr.busy_retries,
            timeout_retries: ctr.timeout_retries,
            failovers: ctr.failovers,
            suspected_dead: self.suspected_dead(),
            crc_disconnects: ctr.crc_disconnects,
            retry_wait_ms: ctr.retry_wait_ns as f64 / 1e6,
        })
    }

    /// Advances `p` to the next live replica, or errors when none remains.
    fn failover(&mut self, id: u64, p: &mut Pending, ctr: &mut Counters) -> io::Result<()> {
        let n = p.replicas.len();
        for step in 1..=n {
            let ix = (p.replica_ix + step) % n;
            if !self.dead.contains(&p.replicas[ix]) {
                p.replica_ix = ix;
                ctr.failovers += 1;
                return Ok(());
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!(
                "request {id} has no live replica left (tried {:?}, dead: {:?})",
                p.replicas, self.dead
            ),
        ))
    }

    /// Marks a node suspected-dead and drops its write half so no further
    /// frames go to it.
    fn mark_dead(&mut self, node: u32) {
        self.dead.insert(node);
        if let Some(slot) = self.writers.get_mut(node as usize) {
            if let Some(w) = slot.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
        }
    }

    /// Frames and writes `p`'s request to its current replica, failing
    /// over (possibly repeatedly) when the write itself fails. Returns
    /// the wall-clock send stamp.
    fn send_pending(
        &mut self,
        id: u64,
        p: &mut Pending,
        flags: u8,
        ctr: &mut Counters,
    ) -> io::Result<u64> {
        loop {
            let sent_wall = wall_ns();
            let seq = self.send_seq;
            self.send_seq += 1;
            let frame = Frame {
                kind: FrameKind::Request,
                flags,
                id,
                stamps: [p.issued_wall, sent_wall, seq, 0],
                payload: p.payload.clone(),
            };
            let node = p.node();
            match self.write_frame(node, &frame) {
                Ok(()) => {
                    p.sent_wall = sent_wall;
                    return Ok(sent_wall);
                }
                Err(_) => {
                    // The connection is unusable; suspect the node and
                    // walk to the next replica (or error out of replicas).
                    self.mark_dead(node);
                    self.failover(id, p, ctr)?;
                }
            }
        }
    }

    fn write_frame(&mut self, node: u32, frame: &Frame) -> io::Result<()> {
        let writer = self
            .writers
            .get_mut(node as usize)
            .and_then(|w| w.as_mut())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no connection for node {node}"),
                )
            })?;
        frame.write_to(writer)
    }

    /// Closes every connection and joins the reader threads.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        for w in self.writers.iter().flatten() {
            let _ = w.shutdown(Shutdown::Both);
        }
        self.writers.clear();
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetMaster {
    fn drop(&mut self) {
        self.close();
    }
}

/// Per-run mutable counters, bundled so helpers can borrow them alongside
/// `self` without fighting the borrow checker.
#[derive(Default)]
struct Counters {
    tx_micros: u64,
    rx_micros: u64,
    busy_retries: u64,
    timeout_retries: u64,
    failovers: u64,
    crc_disconnects: u64,
    retry_wait_ns: u64,
    bytes_to_slaves: u64,
    bytes_to_master: u64,
}
