//! The network master: a connection pool over every slave, the paper's
//! "fire all requests, then drain responses" query loop, and the stage
//! bookkeeping that turns frame timestamps into a
//! [`kvs_cluster::RunResult`].
//!
//! Reliability model: one TCP connection per slave, a reader thread per
//! connection funneling frames into one channel, per-request deadlines,
//! and bounded retries. A `Busy` frame (slave queue full) is flow control,
//! never a failure: it schedules a quick retry that does not consume the
//! failure budget, and — because a `Busy` reply proves the slave alive —
//! it re-arms the request's wall-clock allowance. A timeout re-sends the
//! request at most [`NetConfig::max_retries`] times; once that budget is
//! exhausted (or the connection drops, or a corrupted frame forces a
//! disconnect) the master *fails over* to the next replica of the key.
//!
//! Three mechanisms bound the tail beyond plain retries:
//!
//! * **Deadlines** ([`NetConfig::query_deadline`]) ride in the v2 frame
//!   header; slaves shed expired work before the DB stage and answer
//!   `Expired`, and the master enforces the same limit locally.
//! * **Hedged reads** ([`NetConfig::hedge`]): when a response is slower
//!   than a configured quantile of that node's online latency histogram,
//!   the request is re-issued to the best other replica;
//!   first-response-wins, the loser is cancelled (dropped from pending,
//!   its eventual answer deduplicated), and the extra load is accounted.
//! * **Phi-accrual failure detection** ([`crate::phi`]): suspicion is a
//!   continuous level fed by response inter-arrivals, used to order
//!   replicas on failover and to stop hedging toward dying nodes — not
//!   just a binary verdict after the full timeout window.
//!
//! In the default strict mode, a request whose every replica is dead or
//! exhausted (or whose deadline passed) fails the whole query, as PR 2
//! behaved. In degraded mode ([`QueryMode::Degraded`]) the query instead
//! completes with [`kvs_cluster::Coverage`]` < 1` and an exact
//! per-partition miss list — partial answers over errors.

use crate::clock::wall_ns;
use crate::frame::{Frame, FrameKind, FLAG_COMPACT};
use crate::latency::LatencyTracker;
use crate::phi::PhiAccrual;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use kvs_cluster::{Codec, CodecKind, Coverage, QueryRequest, ReplicaPolicy, RunResult};
use kvs_simcore::{SimDuration, SimTime};
use kvs_stages::{analyze, Stage, TraceRecorder};
use kvs_store::PartitionKey;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One sub-query route: a partition key plus the nodes holding a replica
/// of it, primary first (the order [`kvs_cluster::ClusterData`] placed
/// them in). The master picks among the replicas with
/// [`NetConfig::replica_policy`] and walks the list on failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The partition this sub-query aggregates.
    pub key: PartitionKey,
    /// Replica node indexes, primary first. Must be non-empty.
    pub replicas: Vec<u32>,
}

impl Route {
    /// A single-replica route (replication factor 1).
    pub fn single(key: PartitionKey, node: u32) -> Route {
        Route {
            key,
            replicas: vec![node],
        }
    }
}

/// Hedged-read configuration.
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// Latency quantile of the node's online histogram after which the
    /// hedge fires (e.g. `0.95`: hedge once the response is slower than
    /// 95% of that node's observed responses).
    pub quantile: f64,
    /// Floor on the hedge delay — also the delay used before the node has
    /// any latency samples. Keeps a cold start from hedging every request.
    pub min_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            quantile: 0.95,
            min_delay: Duration::from_millis(5),
        }
    }
}

/// What happens when a sub-query runs out of replicas (or deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Fail the whole query with an `io::Error` (PR 2's behavior).
    #[default]
    Strict,
    /// Complete with partial results: [`kvs_cluster::Coverage`]` < 1` and
    /// a per-partition miss list instead of an error.
    Degraded,
}

/// Master-side configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Request/response serialization (advertised per frame; slaves answer
    /// in kind).
    pub codec: Codec,
    /// Per-request deadline before a retry is issued.
    pub timeout: Duration,
    /// How many times one request may be re-sent to the *same replica*
    /// after a timeout before the master gives up on that replica and
    /// fails over to the next one. `Busy` replies are flow control, not
    /// failures: they retry without consuming this budget, and each one
    /// re-arms the request's wall-clock allowance of
    /// `timeout × (max_retries + 1)` (the slave demonstrably lives).
    pub max_retries: u32,
    /// Back-off before retrying a request a slave answered `Busy` to.
    pub busy_backoff: Duration,
    /// How the master picks a replica for each sub-query (paper §VIII).
    pub replica_policy: ReplicaPolicy,
    /// Seed for the policy RNG (the `Random` policy); fixed seed ⇒
    /// deterministic replica choices.
    pub seed: u64,
    /// Hedged replica reads; `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
    /// Per-request completion budget, measured from the request's issue
    /// time. Propagated to slaves in the frame header (they shed expired
    /// work before the DB stage) and enforced master-side. `None` means
    /// requests never expire.
    pub query_deadline: Option<Duration>,
    /// Strict (error) vs degraded (partial answers) behavior when a
    /// sub-query runs out of replicas or deadline.
    pub mode: QueryMode,
    /// Phi-accrual suspicion threshold: a node whose phi exceeds this is
    /// not hedged toward and is deprioritized on failover. The default 8
    /// means "this silence has probability ≤ 10⁻⁸ under the node's fitted
    /// arrival distribution".
    pub phi_threshold: f64,
    /// Extra connect attempts on `ConnectionRefused` — a freshly spawned
    /// local cluster may not be listening yet (the cold-start race).
    pub connect_retries: u32,
    /// Initial back-off between connect attempts; doubles each retry.
    pub connect_backoff: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            codec: Codec::compact(),
            timeout: Duration::from_secs(2),
            max_retries: 8,
            busy_backoff: Duration::from_millis(1),
            replica_policy: ReplicaPolicy::Primary,
            seed: 0x5EED,
            hedge: None,
            query_deadline: None,
            mode: QueryMode::Strict,
            phi_threshold: 8.0,
            connect_retries: 6,
            connect_backoff: Duration::from_millis(1),
        }
    }
}

/// One sub-query that completed without an answer (degraded mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissedPartition {
    /// The request id (its index into the route list).
    pub request_id: u64,
    /// The partition that went unanswered.
    pub key: PartitionKey,
    /// Its replica set — every one of these was dead, exhausted or past
    /// deadline when the master gave up.
    pub replicas: Vec<u32>,
}

/// What a network query run reports beyond the shared [`RunResult`]:
/// master-side per-message costs (the calibration inputs), the retry
/// counters, and the failover/hedge bookkeeping.
#[derive(Debug)]
pub struct NetRunReport {
    /// The standard run outcome (traces, stage report, aggregates).
    pub result: RunResult,
    /// Master CPU+syscall time spent encoding/framing/writing requests, µs.
    pub tx_micros: u64,
    /// Master CPU+syscall time spent decoding responses, µs.
    pub rx_micros: u64,
    /// Requests re-sent because a slave answered `Busy`.
    pub busy_retries: u64,
    /// Requests re-sent (to the same replica) because their deadline
    /// expired.
    pub timeout_retries: u64,
    /// Requests re-routed to another replica after their current one
    /// timed out, exhausted its retry budget, or dropped its connection.
    pub failovers: u64,
    /// Nodes the master stopped trusting during the run: their connection
    /// died, a corrupted frame forced a disconnect, they exhausted a
    /// request's retry budget, or their phi-accrual suspicion crossed
    /// [`NetConfig::phi_threshold`]. Sorted, deduplicated.
    pub suspected_dead: Vec<u32>,
    /// Master↔slave connections torn down because a frame failed its CRC
    /// (after corruption the byte stream cannot be re-synchronized).
    pub crc_disconnects: u64,
    /// The aggregate retry cost: wall-clock time completed requests spent
    /// between their first send and the send that finally got a response
    /// (0 for a run with no retries). This is the share of the
    /// master-to-slave stage attributable to busy back-off, timeouts and
    /// failover detection.
    pub retry_wait_ms: f64,
    /// Hedged (duplicate) requests issued to a second replica.
    pub hedges_sent: u64,
    /// Hedges whose duplicate answered before the original.
    pub hedges_won: u64,
    /// Sub-queries that completed unanswered (degraded mode only; always
    /// empty in strict mode, which errors instead). Sorted by request id.
    pub missed: Vec<MissedPartition>,
}

impl NetRunReport {
    /// Measured master send cost per message, µs (the paper's `t_msg`).
    pub fn tx_us_per_msg(&self) -> f64 {
        self.tx_micros as f64 / self.result.messages.max(1) as f64
    }

    /// Measured master receive cost per message, µs.
    pub fn rx_us_per_msg(&self) -> f64 {
        self.rx_micros as f64 / self.result.messages.max(1) as f64
    }

    /// Extra request load caused by hedging, as a fraction of the
    /// query's message count (`0.05` ⇒ 5% duplicate requests).
    pub fn hedge_extra_load(&self) -> f64 {
        self.hedges_sent as f64 / self.result.messages.max(1) as f64
    }
}

/// Why a connection reader exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DownReason {
    /// EOF or a transport error: the peer is gone.
    Closed,
    /// A frame failed validation (CRC/framing): the stream is
    /// unrecoverable, so the connection was dropped.
    Corrupt,
}

/// What a reader thread reports to the collect loop.
pub(crate) enum Event {
    Frame(u32, Frame),
    Down(u32, DownReason),
}

struct Pending {
    /// Replica nodes of this key, primary first (the route).
    replicas: Vec<u32>,
    /// Index into `replicas` of the replica currently being tried.
    replica_ix: usize,
    payload: Bytes,
    attempts: u32,
    first_sent_wall: u64,
    sent_wall: u64,
    issued_wall: u64,
    /// Next retry instant (timeout, or busy back-off when `busy`).
    deadline: Instant,
    /// Hard wall-clock limit for this request on the current replica.
    /// Re-armed by `Busy` replies (liveness evidence) and on failover.
    expires: Instant,
    /// The last resend trigger was a `Busy` frame (for counter accounting
    /// and the retry budget).
    busy: bool,
    /// The request's absolute deadline as carried on the wire (0 = none).
    deadline_wall: u64,
    /// Master-side view of the same deadline.
    hard_deadline: Option<Instant>,
    /// When to hedge, if hedging is armed and has not fired yet.
    hedge_at: Option<Instant>,
    /// Outstanding hedge target, if one was issued.
    hedge_node: Option<u32>,
    hedge_sent_wall: u64,
}

impl Pending {
    fn node(&self) -> u32 {
        self.replicas[self.replica_ix]
    }
}

/// Per-node health: continuous phi-accrual suspicion plus the hard
/// verdicts phi cannot express (a closed connection stays closed).
pub(crate) struct NodeHealth {
    phi: PhiAccrual,
    pub(crate) latency: LatencyTracker,
    /// The connection is gone (EOF, transport error, CRC disconnect, or a
    /// failed write). The write half is dropped; only a reconnect could
    /// clear this.
    pub(crate) hard_dead: bool,
    /// A request exhausted its retry budget against this node. Soft:
    /// any later frame from the node clears it.
    exhausted: bool,
    /// Phi crossed the threshold while the master was deciding where to
    /// send work. Latched for reporting; cleared by any frame.
    phi_suspect: bool,
}

impl NodeHealth {
    pub(crate) fn new() -> NodeHealth {
        NodeHealth {
            phi: PhiAccrual::default(),
            latency: LatencyTracker::default(),
            hard_dead: false,
            exhausted: false,
            phi_suspect: false,
        }
    }

    fn suspect(&self) -> bool {
        self.hard_dead || self.exhausted || self.phi_suspect
    }
}

/// A connected master.
pub struct NetMaster {
    pub(crate) writers: Vec<Option<TcpStream>>,
    pub(crate) rx: Receiver<Event>,
    /// Producer half of the event channel, kept so a reconnect
    /// ([`NetMaster::reconnect`]) can spawn a fresh reader thread.
    pub(crate) tx: Sender<Event>,
    readers: Vec<JoinHandle<()>>,
    pub(crate) cfg: NetConfig,
    /// Per-node failure-detector and latency state. Persists across
    /// queries, like the dead set it replaces.
    pub(crate) health: Vec<NodeHealth>,
    crc_disconnects: u64,
    /// Monotone per-master send sequence, stamped into request frames
    /// (`stamps[2]`) so interposers and tests can assert ordering.
    pub(crate) send_seq: u64,
    policy_rng: StdRng,
    /// Replicated-write-path state: hint queues, the read-repair write
    /// cache, per-partition acked versions (see `crate::write_path`).
    pub(crate) wstate: crate::write_path::WriteState,
}

/// `TcpStream::connect` with bounded retry on `ConnectionRefused`: a
/// freshly spawned local cluster (or a slave being restarted by a chaos
/// test) may not have reached `listen()` yet, and the first SYN bounces.
pub(crate) fn connect_with_retry(addr: &SocketAddr, cfg: &NetConfig) -> io::Result<TcpStream> {
    let mut backoff = cfg.connect_backoff.max(Duration::from_micros(100));
    let mut attempt = 0;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if e.kind() == io::ErrorKind::ConnectionRefused
                    && attempt < cfg.connect_retries =>
            {
                attempt += 1;
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Spawns one connection reader thread funneling frames into `tx`.
fn spawn_reader(node: u32, mut read_half: TcpStream, tx: Sender<Event>) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match Frame::read_from(&mut read_half) {
            Ok(frame) => {
                if tx.send(Event::Frame(node, frame)).is_err() {
                    return;
                }
            }
            Err(e) => {
                let reason = if e.kind() == io::ErrorKind::InvalidData {
                    DownReason::Corrupt
                } else {
                    DownReason::Closed
                };
                let _ = tx.send(Event::Down(node, reason));
                return;
            }
        }
    })
}

impl NetMaster {
    /// Connects to every slave; `addrs[i]` must be node `i`'s server.
    /// `ConnectionRefused` is retried [`NetConfig::connect_retries`] times
    /// with exponential back-off (the cold-start race against a cluster
    /// that is still binding its listeners).
    pub fn connect(addrs: &[SocketAddr], cfg: NetConfig) -> io::Result<NetMaster> {
        let (tx, rx) = unbounded::<Event>();
        let mut writers = Vec::with_capacity(addrs.len());
        let mut readers = Vec::with_capacity(addrs.len());
        for (node, addr) in addrs.iter().enumerate() {
            let stream = connect_with_retry(addr, &cfg)?;
            stream.set_nodelay(true)?;
            let read_half = stream.try_clone()?;
            writers.push(Some(stream));
            readers.push(spawn_reader(node as u32, read_half, tx.clone()));
        }
        Ok(NetMaster {
            writers,
            rx,
            tx,
            readers,
            health: (0..addrs.len()).map(|_| NodeHealth::new()).collect(),
            crc_disconnects: 0,
            send_seq: 0,
            policy_rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            wstate: crate::write_path::WriteState::default(),
        })
    }

    /// Re-establishes the connection to a restarted `node`: a fresh TCP
    /// stream, a fresh reader thread, and fresh failure-detector state
    /// (the old incarnation's suspicion does not transfer to the new
    /// process). The caller typically follows up with
    /// [`NetMaster::replay_hints`] to drain writes buffered while the
    /// node was dark.
    pub fn reconnect(&mut self, node: u32, addr: SocketAddr) -> io::Result<()> {
        let cfg = self.cfg;
        let stream = connect_with_retry(&addr, &cfg)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        if let Some(slot) = self.writers.get_mut(node as usize) {
            if let Some(old) = slot.take() {
                crate::ioutil::best_effort("close stale connection", old.shutdown(Shutdown::Both));
            }
            *slot = Some(stream);
        } else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("node {node} is outside the connected cluster"),
            ));
        }
        self.readers
            .push(spawn_reader(node, read_half, self.tx.clone()));
        if let Some(h) = self.health.get_mut(node as usize) {
            *h = NodeHealth::new();
        }
        Ok(())
    }

    /// Nodes currently suspected by this master: hard-dead connections,
    /// exhausted retry budgets, or phi-accrual suspicion above the
    /// configured threshold.
    pub fn suspected_dead(&self) -> Vec<u32> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.suspect())
            .map(|(n, _)| n as u32)
            .collect()
    }

    /// Current phi-accrual suspicion level of one node (0.0 for nodes the
    /// detector has too little data on).
    pub fn phi_of(&self, node: u32) -> f64 {
        self.health
            .get(node as usize)
            .map(|h| h.phi.phi(Instant::now()))
            .unwrap_or(0.0)
    }

    /// Any frame from `node` proves it alive: feed the phi detector and
    /// clear the soft suspicion verdicts.
    pub(crate) fn note_alive(&mut self, node: u32) {
        if let Some(h) = self.health.get_mut(node as usize) {
            h.phi.heartbeat(Instant::now());
            h.exhausted = false;
            h.phi_suspect = false;
        }
    }

    /// Hard verdicts only: the node cannot currently answer (closed
    /// connection) or demonstrably did not (exhausted budget).
    // LINT-ZONE: nonblocking — readiness-loop verdict, must never stall.
    pub(crate) fn hard_suspect(&self, node: u32) -> bool {
        self.health
            .get(node as usize)
            .map(|h| h.hard_dead || h.exhausted)
            .unwrap_or(true)
    }

    /// Phi of `node`, but only when its silence is *evidence*: a node the
    /// master has requests outstanding against and is actively draining
    /// responses from. An idle node (nothing in flight) is silent because
    /// nothing was asked of it; during the issue phase the collect loop
    /// is not running, so apparent silence is master-side lag. Both read
    /// as zero suspicion.
    // LINT-ZONE: nonblocking — runs inside the collect loop's hot path.
    fn live_phi(&self, node: u32, inflight: &[usize], now: Instant) -> f64 {
        if inflight.get(node as usize).copied().unwrap_or(0) == 0 {
            return 0.0;
        }
        self.health
            .get(node as usize)
            .map(|h| h.phi.phi(now))
            .unwrap_or(f64::INFINITY)
    }

    /// Runs the aggregation query: issues one request per route, then
    /// drains responses, failing over between replicas as needed. All
    /// keys are known up front, as in the paper's simple case.
    pub fn run_query(&mut self, routes: &[Route]) -> io::Result<NetRunReport> {
        self.run_with_arrivals(routes, None)
    }

    /// Like [`NetMaster::run_query`], but each request `i` is released
    /// only once `arrivals_ns[i]` nanoseconds have elapsed since the run
    /// started — the open-loop load generator's entry point. `None` means
    /// release everything immediately (closed batch).
    pub fn run_with_arrivals(
        &mut self,
        routes: &[Route],
        arrivals_ns: Option<&[u64]>,
    ) -> io::Result<NetRunReport> {
        if let Some(a) = arrivals_ns {
            assert_eq!(a.len(), routes.len(), "one arrival offset per route");
        }
        let flags = match self.cfg.codec.kind {
            CodecKind::Compact => FLAG_COMPACT,
            CodecKind::Verbose => 0,
        };
        let origin_wall = wall_ns();
        let origin = Instant::now();
        let to_sim = |w: u64| SimTime::from_nanos(w.saturating_sub(origin_wall));
        let allowance = self.cfg.timeout * (self.cfg.max_retries + 1);
        let degraded = self.cfg.mode == QueryMode::Degraded;
        let budget = self.cfg.query_deadline;
        let hedge_cfg = self.cfg.hedge;

        let mut pending: HashMap<u64, Pending> = HashMap::with_capacity(routes.len());
        let mut ctr = Counters::default();
        let mut inflight: Vec<usize> = vec![0; self.writers.len()];
        let mut misses: Vec<u64> = Vec::new();
        let mut send_last = origin;

        let mut recorder = TraceRecorder::new();
        let mut counts: BTreeMap<u8, u64> = BTreeMap::new();
        let mut total_cells = 0u64;
        let mut next_issue = 0usize;

        // Issue and collect interleave in one loop. A paced run must keep
        // draining responses and firing hedge/retry timers *between*
        // arrivals: issuing everything first and only then collecting
        // would leave every armed timer long overdue by the time the last
        // request is released, firing a storm of spurious hedges and
        // retries. An unpaced (batch) run issues everything on the first
        // pass and the loop degenerates to the plain collect loop.
        loop {
            // ---- Issue every route whose arrival time has come. ----
            while next_issue < routes.len() {
                if let Some(arrivals) = arrivals_ns {
                    if origin.elapsed() < Duration::from_nanos(arrivals[next_issue]) {
                        break;
                    }
                }
                let i = next_issue;
                next_issue += 1;
                let route = &routes[i];
                assert!(!route.replicas.is_empty(), "route {i} has no replicas");
                let arrival_ns = arrivals_ns.map(|a| a[i]).unwrap_or(0);
                let issued_wall = origin_wall + arrival_ns;
                let t0 = Instant::now();
                let payload = self.cfg.codec.encode_request(&QueryRequest {
                    request_id: i as u64,
                    partition: route.key.clone(),
                });

                // Replica choice: the configured policy proposes, the health
                // table disposes — a suspected pick slides to the least
                // suspect live replica (counted as a failover, like the
                // sim's).
                let loads: Vec<usize> = route
                    .replicas
                    .iter()
                    .map(|&n| inflight.get(n as usize).copied().unwrap_or(0))
                    .collect();
                let picked = self.cfg.replica_policy.pick(
                    route.replicas.len(),
                    &loads,
                    i as u64,
                    &mut self.policy_rng,
                );
                let mut p = Pending {
                    replicas: route.replicas.clone(),
                    replica_ix: picked,
                    payload,
                    attempts: 1,
                    first_sent_wall: 0,
                    sent_wall: 0,
                    issued_wall,
                    deadline: Instant::now(),
                    expires: Instant::now(),
                    busy: false,
                    deadline_wall: budget
                        .map(|b| issued_wall + b.as_nanos() as u64)
                        .unwrap_or(0),
                    hard_deadline: budget.map(|b| origin + Duration::from_nanos(arrival_ns) + b),
                    hedge_at: None,
                    hedge_node: None,
                    hedge_sent_wall: 0,
                };
                if self.hard_suspect(p.node())
                    && !self.failover_to_live(&mut p, &mut ctr, &inflight)
                {
                    if degraded {
                        misses.push(i as u64);
                        continue;
                    }
                    return Err(self.no_replica_error(i as u64, &p));
                }

                let Some(sent_wall) =
                    self.send_pending(i as u64, &mut p, flags, &mut ctr, &inflight)
                else {
                    if degraded {
                        misses.push(i as u64);
                        continue;
                    }
                    return Err(self.no_replica_error(i as u64, &p));
                };
                p.first_sent_wall = sent_wall;
                ctr.tx_micros += t0.elapsed().as_micros() as u64;
                send_last = Instant::now();
                p.deadline = send_last + self.cfg.timeout;
                p.expires = send_last + allowance;
                if let Some(h) = hedge_cfg {
                    if p.replicas.len() > 1 {
                        p.hedge_at = Some(send_last + self.hedge_delay(p.node(), &h));
                    }
                }
                if let Some(slot) = inflight.get_mut(p.node() as usize) {
                    *slot += 1;
                }
                ctr.bytes_to_slaves += p.payload.len() as u64;
                pending.insert(i as u64, p);
            }
            if next_issue == routes.len() && pending.is_empty() {
                break;
            }

            // ---- Wait for whichever comes first: a frame, the next
            // arrival to release, or the nearest pending timer. ----
            let mut nearest = pending
                .values()
                .map(|p| {
                    let mut t = p.deadline;
                    if let Some(at) = p.hedge_at {
                        t = t.min(at);
                    }
                    if let Some(hd) = p.hard_deadline {
                        t = t.min(hd);
                    }
                    t
                })
                .min();
            if let (Some(arrivals), true) = (arrivals_ns, next_issue < routes.len()) {
                let due = origin + Duration::from_nanos(arrivals[next_issue]);
                nearest = Some(nearest.map_or(due, |n: Instant| n.min(due)));
            }
            // `nearest` is `None` only when nothing is pending and nothing
            // is left to issue — the loop break above; a plain poll
            // interval keeps even that impossible case live.
            let wait = match nearest {
                Some(at) => at
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_micros(100)),
                None => Duration::from_micros(100),
            };
            match self.rx.recv_timeout(wait) {
                Ok(Event::Frame(node, frame)) => {
                    self.note_alive(node);
                    match frame.kind {
                        FrameKind::Response => {
                            let t0 = Instant::now();
                            let Some(response) =
                                self.cfg.codec.decode_response(frame.payload.clone())
                            else {
                                continue; // checksummed but undecodable: let the retry path handle it
                            };
                            let done_wall = wall_ns();
                            ctr.rx_micros += t0.elapsed().as_micros() as u64;
                            let Some(p) = pending.remove(&frame.id) else {
                                continue; // duplicate (a retry or a lost hedge raced the winner)
                            };
                            // First response wins; both outstanding
                            // attempts are released here, so the loser is
                            // cancelled: never retried, its eventual
                            // answer dropped as a duplicate above.
                            if let Some(slot) = inflight.get_mut(p.node() as usize) {
                                *slot = slot.saturating_sub(1);
                            }
                            let hedge_answered = p.hedge_node == Some(node) && node != p.node();
                            if let Some(hn) = p.hedge_node {
                                if let Some(slot) = inflight.get_mut(hn as usize) {
                                    *slot = slot.saturating_sub(1);
                                }
                                if hedge_answered {
                                    ctr.hedges_won += 1;
                                }
                            }
                            let sent = if hedge_answered {
                                p.hedge_sent_wall
                            } else {
                                p.sent_wall
                            };
                            if let Some(h) = self.health.get_mut(node as usize) {
                                h.latency
                                    .record(Duration::from_nanos(done_wall.saturating_sub(sent)));
                            }
                            ctr.bytes_to_master += frame.payload.len() as u64;
                            ctr.retry_wait_ns += p.sent_wall.saturating_sub(p.first_sent_wall);
                            let id = frame.id;
                            recorder.begin(id, node, response.cells);
                            recorder.record(
                                id,
                                Stage::MasterToSlave,
                                to_sim(p.issued_wall),
                                to_sim(sent),
                            );
                            recorder.record(
                                id,
                                Stage::InQueue,
                                to_sim(frame.stamps[0]),
                                to_sim(frame.stamps[1]),
                            );
                            recorder.record(
                                id,
                                Stage::InDb,
                                to_sim(frame.stamps[1]),
                                to_sim(frame.stamps[2]),
                            );
                            recorder.record(
                                id,
                                Stage::SlaveToMaster,
                                to_sim(frame.stamps[2]),
                                to_sim(done_wall),
                            );
                            for (&kind, &count) in &response.counts {
                                *counts.entry(kind).or_insert(0) += count;
                            }
                            total_cells += response.cells;
                        }
                        FrameKind::Busy => {
                            if let Some(p) = pending.get_mut(&frame.id) {
                                if p.hedge_node == Some(node) && node != p.node() {
                                    // The hedge target is saturated;
                                    // hedging toward it buys nothing.
                                    // Cancel the hedge, keep the original.
                                    p.hedge_node = None;
                                    if let Some(slot) = inflight.get_mut(node as usize) {
                                        *slot = slot.saturating_sub(1);
                                    }
                                } else {
                                    // Pull the deadline in: retry after a
                                    // short back-off through the common
                                    // expiry path. The slave demonstrably
                                    // lives, so re-arm the wall-clock
                                    // allowance — Busy is flow control,
                                    // never a failure (see the regression
                                    // test in tests/busy_budget.rs).
                                    p.busy = true;
                                    let now = Instant::now();
                                    p.deadline = now + self.cfg.busy_backoff;
                                    p.expires = now + allowance;
                                }
                            }
                        }
                        FrameKind::Expired => {
                            // The slave shed this request: its deadline
                            // passed before the DB stage. The deadline
                            // will not un-expire, so retrying is useless.
                            if let Some(p) = pending.remove(&frame.id) {
                                if let Some(slot) = inflight.get_mut(p.node() as usize) {
                                    *slot = slot.saturating_sub(1);
                                }
                                if let Some(hn) = p.hedge_node {
                                    if let Some(slot) = inflight.get_mut(hn as usize) {
                                        *slot = slot.saturating_sub(1);
                                    }
                                }
                                if !degraded {
                                    return Err(io::Error::new(
                                        io::ErrorKind::TimedOut,
                                        format!(
                                            "request {} expired at node {node} before service",
                                            frame.id
                                        ),
                                    ));
                                }
                                misses.push(frame.id);
                            }
                        }
                        // Protocol violations (a slave never sends these)
                        // and write-path acks owned by `run_mixed`: ignore.
                        FrameKind::Request
                        | FrameKind::Write
                        | FrameKind::WriteAck
                        | FrameKind::Rmw => {}
                    }
                }
                Ok(Event::Down(node, reason)) => {
                    if reason == DownReason::Corrupt {
                        self.crc_disconnects += 1;
                        ctr.crc_disconnects += 1;
                    }
                    self.mark_dead(node);
                    // Outstanding hedges on the dead node are lost.
                    for p in pending.values_mut() {
                        if p.hedge_node == Some(node) {
                            p.hedge_node = None;
                            if let Some(slot) = inflight.get_mut(node as usize) {
                                *slot = slot.saturating_sub(1);
                            }
                        }
                    }
                    // Everything in flight on that node fails over now
                    // rather than waiting out its timeout.
                    let stranded: Vec<u64> = pending
                        .iter()
                        .filter(|(_, p)| p.node() == node)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in stranded {
                        let Some(mut p) = pending.remove(&id) else {
                            continue;
                        };
                        if let Some(slot) = inflight.get_mut(p.node() as usize) {
                            *slot = slot.saturating_sub(1);
                        }
                        if !self.failover_to_live(&mut p, &mut ctr, &inflight) {
                            if degraded {
                                misses.push(id);
                                continue;
                            }
                            return Err(self.no_replica_error(id, &p));
                        }
                        let Some(_) = self.send_pending(id, &mut p, flags, &mut ctr, &inflight)
                        else {
                            if degraded {
                                misses.push(id);
                                continue;
                            }
                            return Err(self.no_replica_error(id, &p));
                        };
                        let now = Instant::now();
                        p.deadline = now + self.cfg.timeout;
                        p.expires = now + allowance;
                        p.attempts = 1;
                        p.busy = false;
                        ctr.bytes_to_slaves += p.payload.len() as u64;
                        if let Some(slot) = inflight.get_mut(p.node() as usize) {
                            *slot += 1;
                        }
                        pending.insert(id, p);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    if degraded {
                        // Every connection is gone: nothing pending can be
                        // answered. Record the losses and finish with what
                        // we have.
                        misses.extend(pending.keys().copied());
                        misses.extend((next_issue..routes.len()).map(|i| i as u64));
                        pending.clear();
                        break;
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "every slave connection dropped mid-query",
                    ));
                }
            }

            // ---- Enforce hard deadlines. ----
            let now = Instant::now();
            let overdue: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.hard_deadline.is_some_and(|d| d <= now))
                .map(|(&id, _)| id)
                .collect();
            for id in overdue {
                let Some(p) = pending.remove(&id) else {
                    continue;
                };
                if let Some(slot) = inflight.get_mut(p.node() as usize) {
                    *slot = slot.saturating_sub(1);
                }
                if let Some(hn) = p.hedge_node {
                    if let Some(slot) = inflight.get_mut(hn as usize) {
                        *slot = slot.saturating_sub(1);
                    }
                }
                if !degraded {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("request {id} missed its deadline"),
                    ));
                }
                misses.push(id);
            }

            // ---- Fire due hedges. ----
            let now = Instant::now();
            let due: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.hedge_at.is_some_and(|t| t <= now) && p.hedge_node.is_none())
                .map(|(&id, _)| id)
                .collect();
            for id in due {
                let Some(p) = pending.get_mut(&id) else {
                    continue;
                };
                p.hedge_at = None;
                let Some(node) = self.pick_hedge_target(p, now, &inflight) else {
                    continue;
                };
                let sent_wall = wall_ns();
                let seq = self.send_seq;
                self.send_seq += 1;
                let frame = Frame {
                    kind: FrameKind::Request,
                    flags,
                    id,
                    stamps: [p.issued_wall, sent_wall, seq, 0],
                    deadline: p.deadline_wall,
                    payload: p.payload.clone(),
                };
                if self.write_frame(node, &frame).is_ok() {
                    ctr.hedges_sent += 1;
                    ctr.bytes_to_slaves += p.payload.len() as u64;
                    p.hedge_node = Some(node);
                    p.hedge_sent_wall = sent_wall;
                    if let Some(slot) = inflight.get_mut(node as usize) {
                        *slot += 1;
                    }
                } else {
                    self.mark_dead(node);
                }
            }

            // ---- Retry expired requests. ----
            let now = Instant::now();
            let expired: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let Some(mut p) = pending.remove(&id) else {
                    continue;
                };
                if let Some(slot) = inflight.get_mut(p.node() as usize) {
                    *slot = slot.saturating_sub(1);
                }
                // Busy resends are flow control and don't consume the
                // retry budget; their allowance re-arms on every Busy
                // receipt, so hitting `expires` here means the slave went
                // silent after flow-controlling us. Timeout resends are
                // bounded by `max_retries` per replica. Either way,
                // exhaustion suspects the replica and fails over.
                let exhausted = if p.busy {
                    now >= p.expires
                } else {
                    p.attempts > self.cfg.max_retries
                };
                if exhausted {
                    self.mark_exhausted(p.node());
                    if !self.failover_to_live(&mut p, &mut ctr, &inflight) {
                        if degraded {
                            misses.push(id);
                            continue;
                        }
                        return Err(self.no_replica_error(id, &p));
                    }
                    p.attempts = 1;
                } else if p.busy {
                    ctr.busy_retries += 1;
                } else {
                    ctr.timeout_retries += 1;
                    p.attempts += 1;
                }
                p.busy = false;
                let t0 = Instant::now();
                let Some(_) = self.send_pending(id, &mut p, flags, &mut ctr, &inflight) else {
                    if degraded {
                        misses.push(id);
                        continue;
                    }
                    return Err(self.no_replica_error(id, &p));
                };
                ctr.tx_micros += t0.elapsed().as_micros() as u64;
                let now = Instant::now();
                p.deadline = now + self.cfg.timeout;
                if exhausted {
                    p.expires = now + allowance;
                }
                ctr.bytes_to_slaves += p.payload.len() as u64;
                if let Some(slot) = inflight.get_mut(p.node() as usize) {
                    *slot += 1;
                }
                pending.insert(id, p);
            }
        }

        misses.sort_unstable();
        misses.dedup();
        let missed: Vec<MissedPartition> = misses
            .iter()
            .map(|&id| {
                let route = &routes[id as usize];
                MissedPartition {
                    request_id: id,
                    key: route.key.clone(),
                    replicas: route.replicas.clone(),
                }
            })
            .collect();
        let coverage = Coverage {
            answered: routes.len() as u64 - misses.len() as u64,
            total: routes.len() as u64,
        };
        let traces = recorder.into_traces();
        let report = analyze(&traces);
        Ok(NetRunReport {
            result: RunResult {
                makespan: report.makespan,
                report,
                traces,
                counts_by_kind: counts,
                total_cells,
                messages: routes.len() as u64,
                bytes_to_slaves: ctr.bytes_to_slaves,
                bytes_to_master: ctr.bytes_to_master,
                issue_span: SimDuration::from_nanos(
                    send_last.saturating_duration_since(origin).as_nanos() as u64,
                ),
                failovers: ctr.failovers,
                coverage,
                missed: misses,
                hedges_sent: ctr.hedges_sent,
                hedges_won: ctr.hedges_won,
                queue: None,
            },
            tx_micros: ctr.tx_micros,
            rx_micros: ctr.rx_micros,
            busy_retries: ctr.busy_retries,
            timeout_retries: ctr.timeout_retries,
            failovers: ctr.failovers,
            suspected_dead: self.suspected_dead(),
            crc_disconnects: ctr.crc_disconnects,
            retry_wait_ms: ctr.retry_wait_ns as f64 / 1e6,
            hedges_sent: ctr.hedges_sent,
            hedges_won: ctr.hedges_won,
            missed,
        })
    }

    /// The per-node hedge trigger: the configured quantile of the node's
    /// online latency histogram, floored at `min_delay` (which also covers
    /// the cold start, before any sample exists). Adapts online: on a slow
    /// machine the quantile inflates and hedges fire later instead of
    /// storming healthy-but-slow replicas.
    fn hedge_delay(&self, node: u32, h: &HedgeConfig) -> Duration {
        let observed = self
            .health
            .get(node as usize)
            .and_then(|n| n.latency.quantile(h.quantile))
            .unwrap_or(Duration::ZERO);
        observed.max(h.min_delay)
    }

    /// Picks the least-suspect other replica to hedge toward, or `None`
    /// when every alternative is hard-suspect or past the phi threshold —
    /// hedging toward a dying node only doubles the damage.
    fn pick_hedge_target(&mut self, p: &Pending, now: Instant, inflight: &[usize]) -> Option<u32> {
        let n = p.replicas.len();
        let threshold = self.cfg.phi_threshold;
        let mut best: Option<(u32, f64)> = None;
        for step in 1..n {
            let ix = (p.replica_ix + step) % n;
            let node = p.replicas[ix];
            if self.hard_suspect(node) {
                continue;
            }
            let phi = self.live_phi(node, inflight, now);
            if phi > threshold {
                if let Some(h) = self.health.get_mut(node as usize) {
                    h.phi_suspect = true;
                }
                continue;
            }
            if best.is_none_or(|(_, b)| phi < b) {
                best = Some((node, phi));
            }
        }
        best.map(|(node, _)| node)
    }

    /// Advances `p` to the least-suspect other replica — phi-accrual
    /// orders the candidates, hard verdicts exclude them. Returns `false`
    /// when no live replica remains (the caller decides: error in strict
    /// mode, a recorded miss in degraded mode).
    fn failover_to_live(
        &mut self,
        p: &mut Pending,
        ctr: &mut Counters,
        inflight: &[usize],
    ) -> bool {
        let now = Instant::now();
        let n = p.replicas.len();
        let mut best: Option<(usize, f64)> = None;
        for step in 1..n {
            let ix = (p.replica_ix + step) % n;
            let node = p.replicas[ix];
            if self.hard_suspect(node) {
                continue;
            }
            let phi = self.live_phi(node, inflight, now);
            // Least suspicion wins; ring order breaks ties.
            if best.is_none_or(|(_, b)| phi < b) {
                best = Some((ix, phi));
            }
        }
        match best {
            Some((ix, _)) => {
                p.replica_ix = ix;
                ctr.failovers += 1;
                true
            }
            None => false,
        }
    }

    fn no_replica_error(&self, id: u64, p: &Pending) -> io::Error {
        io::Error::new(
            io::ErrorKind::TimedOut,
            format!(
                "request {id} has no live replica left (tried {:?}, suspected: {:?})",
                p.replicas,
                self.suspected_dead()
            ),
        )
    }

    /// Marks a node hard-dead and drops its write half so no further
    /// frames go to it.
    pub(crate) fn mark_dead(&mut self, node: u32) {
        if let Some(h) = self.health.get_mut(node as usize) {
            h.hard_dead = true;
        }
        if let Some(slot) = self.writers.get_mut(node as usize) {
            if let Some(w) = slot.take() {
                crate::ioutil::best_effort(
                    "close dead node connection",
                    w.shutdown(Shutdown::Both),
                );
            }
        }
    }

    /// Soft suspicion: the node exhausted a request's retry budget. The
    /// connection stays open — a blackholed node may still be reading —
    /// and any later frame from it clears the verdict.
    fn mark_exhausted(&mut self, node: u32) {
        if let Some(h) = self.health.get_mut(node as usize) {
            h.exhausted = true;
        }
    }

    /// Frames and writes `p`'s request to its current replica, failing
    /// over (possibly repeatedly) when the write itself fails. Returns
    /// the wall-clock send stamp, or `None` when no live replica remains.
    fn send_pending(
        &mut self,
        id: u64,
        p: &mut Pending,
        flags: u8,
        ctr: &mut Counters,
        inflight: &[usize],
    ) -> Option<u64> {
        loop {
            let sent_wall = wall_ns();
            let seq = self.send_seq;
            self.send_seq += 1;
            let frame = Frame {
                kind: FrameKind::Request,
                flags,
                id,
                stamps: [p.issued_wall, sent_wall, seq, 0],
                deadline: p.deadline_wall,
                payload: p.payload.clone(),
            };
            let node = p.node();
            match self.write_frame(node, &frame) {
                Ok(()) => {
                    p.sent_wall = sent_wall;
                    return Some(sent_wall);
                }
                Err(_) => {
                    // The connection is unusable; suspect the node and
                    // walk to the next replica (or run out of them).
                    self.mark_dead(node);
                    if !self.failover_to_live(p, ctr, inflight) {
                        return None;
                    }
                }
            }
        }
    }

    pub(crate) fn write_frame(&mut self, node: u32, frame: &Frame) -> io::Result<()> {
        let writer = self
            .writers
            .get_mut(node as usize)
            .and_then(|w| w.as_mut())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no connection for node {node}"),
                )
            })?;
        frame.write_to(writer)
    }

    /// Closes every connection and joins the reader threads.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        for w in self.writers.iter().flatten() {
            crate::ioutil::best_effort("close connection", w.shutdown(Shutdown::Both));
        }
        self.writers.clear();
        for h in self.readers.drain(..) {
            crate::ioutil::join_logged("reader thread", h);
        }
    }
}

impl Drop for NetMaster {
    fn drop(&mut self) {
        self.close();
    }
}

/// Per-run mutable counters, bundled so helpers can borrow them alongside
/// `self` without fighting the borrow checker.
#[derive(Default)]
struct Counters {
    tx_micros: u64,
    rx_micros: u64,
    busy_retries: u64,
    timeout_retries: u64,
    failovers: u64,
    crc_disconnects: u64,
    retry_wait_ns: u64,
    bytes_to_slaves: u64,
    bytes_to_master: u64,
    hedges_sent: u64,
    hedges_won: u64,
}
