//! A synthetic stand-in for the Alya bronchi inhalation dataset.
//!
//! The real dataset is the particle output of a CFD simulation of an
//! inhalation: particles follow the airflow down a branching airway tree
//! and deposit on its walls. For the indexing experiments only the *spatial
//! distribution* matters — particles concentrate along a self-similar
//! branching structure, so octree cubes have wildly different populations.
//! We reproduce that by growing a procedural bronchial tree (recursive
//! bifurcation with shrinking radii) and scattering particles along its
//! branches with radial Gaussian spread.

use rand::Rng;
use rand_distr::{Distribution, Normal};

/// One simulated particle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Stable id (becomes the store's clustering key).
    pub id: u64,
    /// Position in the unit cube `[0,1)³`.
    pub pos: [f64; 3],
    /// Particle class (species / deposition state) — the attribute the
    /// paper's "count by type" aggregation groups on.
    pub kind: u8,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct AlyaConfig {
    /// Number of particles to generate.
    pub particles: usize,
    /// Bifurcation depth of the airway tree (7 gives ~255 branches).
    pub tree_depth: usize,
    /// Branch length shrink factor per generation.
    pub length_ratio: f64,
    /// Radial spread of particles around the branch centreline.
    pub radial_sigma: f64,
    /// Number of particle classes.
    pub kinds: u8,
}

impl Default for AlyaConfig {
    fn default() -> Self {
        AlyaConfig {
            particles: 1_000_000,
            tree_depth: 7,
            length_ratio: 0.72,
            radial_sigma: 0.01,
            kinds: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Branch {
    start: [f64; 3],
    end: [f64; 3],
    generation: usize,
}

/// Grows the airway tree and scatters particles along it.
pub fn generate<R: Rng + ?Sized>(config: &AlyaConfig, rng: &mut R) -> Vec<Particle> {
    let branches = grow_tree(config, rng);
    scatter(config, &branches, rng)
}

/// Recursive bifurcation: trachea at the top of the unit cube, children
/// splay outward with random azimuth, lengths shrinking per generation.
fn grow_tree<R: Rng + ?Sized>(config: &AlyaConfig, rng: &mut R) -> Vec<Branch> {
    let mut branches = Vec::new();
    let trachea = Branch {
        start: [0.5, 0.5, 0.95],
        end: [0.5, 0.5, 0.95 - 0.22],
        generation: 0,
    };
    let mut frontier = vec![trachea];
    branches.push(trachea);
    for generation in 1..=config.tree_depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for parent in &frontier {
            let dir = direction(parent);
            let len = norm(&dir) * config.length_ratio;
            for side in [-1.0, 1.0] {
                // Branching angle ≈ 35° ± noise, random azimuth around the
                // parent axis.
                let polar = (35.0 + rng.gen_range(-8.0..8.0)) * std::f64::consts::PI / 180.0;
                let azimuth = rng.gen_range(0.0..std::f64::consts::TAU);
                let child_dir = rotate(dir, polar * side, azimuth);
                let end = [
                    clamp01(parent.end[0] + child_dir[0] / norm(&child_dir) * len),
                    clamp01(parent.end[1] + child_dir[1] / norm(&child_dir) * len),
                    clamp01(parent.end[2] + child_dir[2] / norm(&child_dir) * len),
                ];
                let child = Branch {
                    start: parent.end,
                    end,
                    generation,
                };
                branches.push(child);
                next.push(child);
            }
        }
        frontier = next;
    }
    branches
}

/// Scatters particles along branches. Deeper generations receive more
/// particles per branch-volume (deposition concentrates distally), which is
/// what makes cube populations skewed.
fn scatter<R: Rng + ?Sized>(
    config: &AlyaConfig,
    branches: &[Branch],
    rng: &mut R,
) -> Vec<Particle> {
    assert!(!branches.is_empty(), "tree has no branches");
    // Weight ∝ 1.25^generation: distal accumulation.
    let weights: Vec<f64> = branches
        .iter()
        .map(|b| 1.25f64.powi(b.generation as i32))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total_w;
            Some(*acc)
        })
        .collect();
    let radial = Normal::new(0.0, config.radial_sigma).expect("valid sigma");
    let mut out = Vec::with_capacity(config.particles);
    for id in 0..config.particles as u64 {
        let u: f64 = rng.gen();
        let idx = cumulative
            .partition_point(|&c| c < u)
            .min(branches.len() - 1);
        let b = &branches[idx];
        let t: f64 = rng.gen();
        let pos = [
            clamp01(b.start[0] + (b.end[0] - b.start[0]) * t + radial.sample(rng)),
            clamp01(b.start[1] + (b.end[1] - b.start[1]) * t + radial.sample(rng)),
            clamp01(b.start[2] + (b.end[2] - b.start[2]) * t + radial.sample(rng)),
        ];
        out.push(Particle {
            id,
            pos,
            kind: (rng.gen_range(0..config.kinds.max(1) as u32)) as u8,
        });
    }
    out
}

fn direction(b: &Branch) -> [f64; 3] {
    [
        b.end[0] - b.start[0],
        b.end[1] - b.start[1],
        b.end[2] - b.start[2],
    ]
}

fn norm(v: &[f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt().max(1e-12)
}

/// Rotates `dir` away from its own axis by `polar`, then around it by
/// `azimuth` — enough anatomy for a plausible splay, not a CFD mesh.
fn rotate(dir: [f64; 3], polar: f64, azimuth: f64) -> [f64; 3] {
    let n = norm(&dir);
    let d = [dir[0] / n, dir[1] / n, dir[2] / n];
    // Build an orthonormal basis (d, u, v).
    let pick = if d[0].abs() < 0.9 {
        [1.0, 0.0, 0.0]
    } else {
        [0.0, 1.0, 0.0]
    };
    let u = cross(d, pick);
    let un = norm(&u);
    let u = [u[0] / un, u[1] / un, u[2] / un];
    let v = cross(d, u);
    let (sp, cp) = polar.sin_cos();
    let (sa, ca) = azimuth.sin_cos();
    [
        d[0] * cp + (u[0] * ca + v[0] * sa) * sp,
        d[1] * cp + (u[1] * ca + v[1] * sa) * sp,
        d[2] * cp + (u[2] * ca + v[2] * sa) * sp,
    ]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0 - 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn small_config() -> AlyaConfig {
        AlyaConfig {
            particles: 20_000,
            tree_depth: 6,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_count_in_unit_cube() {
        let particles = generate(&small_config(), &mut rng(1));
        assert_eq!(particles.len(), 20_000);
        for p in &particles {
            for c in p.pos {
                assert!((0.0..1.0).contains(&c), "out of cube: {:?}", p.pos);
            }
            assert!(p.kind < 4);
        }
        // Ids are unique and dense.
        let mut ids: Vec<u64> = particles.iter().map(|p| p.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 20_000);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&small_config(), &mut rng(7));
        let b = generate(&small_config(), &mut rng(7));
        assert_eq!(a, b);
        let c = generate(&small_config(), &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn particles_are_spatially_clustered() {
        // Clustered data occupies far fewer octree leaf boxes than uniform
        // data would. Compare occupied 16³ grid boxes.
        let particles = generate(&small_config(), &mut rng(2));
        let mut occupied = std::collections::HashSet::new();
        for p in &particles {
            let key = (
                (p.pos[0] * 16.0) as u32,
                (p.pos[1] * 16.0) as u32,
                (p.pos[2] * 16.0) as u32,
            );
            occupied.insert(key);
        }
        // Uniform 20k points would occupy ~4000 of 4096 boxes (99 %+).
        assert!(
            occupied.len() < 2_500,
            "{} boxes occupied — not clustered",
            occupied.len()
        );
        assert!(occupied.len() > 50, "implausibly collapsed");
    }

    #[test]
    fn tree_has_expected_branch_count() {
        let cfg = small_config();
        let branches = grow_tree(&cfg, &mut rng(3));
        // 1 trachea + Σ 2^g for g in 1..=depth.
        let expected: usize = 1 + (1..=cfg.tree_depth).map(|g| 1usize << g).sum::<usize>();
        assert_eq!(branches.len(), expected);
    }

    #[test]
    fn all_kinds_are_represented() {
        let particles = generate(&small_config(), &mut rng(4));
        let mut seen = [false; 4];
        for p in &particles {
            seen[p.kind as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
