//! The paper's three data models (§V): one million elements partitioned at
//! three granularities.
//!
//! > coarse-grained: 100 partitions, of 10,000 elements each.
//! > medium-grained: 1,000 partitions of 1,000 elements each.
//! > fine-grained: 10,000 partitions of 100 elements each.

use kvs_store::{Cell, PartitionKey};

/// The paper's total dataset size.
pub const PAPER_TOTAL_ELEMENTS: u64 = 1_000_000;

/// One of the paper's partition granularities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataModel {
    /// 100 × 10 000.
    Coarse,
    /// 1 000 × 1 000.
    Medium,
    /// 10 000 × 100.
    Fine,
}

impl DataModel {
    /// All three, in the paper's order.
    pub const ALL: [DataModel; 3] = [DataModel::Coarse, DataModel::Medium, DataModel::Fine];

    /// The paper's name for the model.
    pub fn label(self) -> &'static str {
        match self {
            DataModel::Coarse => "coarse-grained",
            DataModel::Medium => "medium-grained",
            DataModel::Fine => "fine-grained",
        }
    }

    /// Number of partitions (keys) at the paper's dataset size.
    pub fn partitions(self) -> u64 {
        match self {
            DataModel::Coarse => 100,
            DataModel::Medium => 1_000,
            DataModel::Fine => 10_000,
        }
    }

    /// Elements per partition at the paper's dataset size.
    pub fn cells_per_partition(self) -> u64 {
        PAPER_TOTAL_ELEMENTS / self.partitions()
    }

    /// Partition count for an arbitrary dataset size, keeping the paper's
    /// elements-per-partition ratio.
    pub fn partitions_for(self, total_elements: u64) -> u64 {
        (total_elements / self.cells_per_partition()).max(1)
    }

    /// Builds the partition set for `total_elements` elements: partition
    /// `p` gets clustering keys `p·k .. (p+1)·k` with kinds cycling
    /// `0..kinds`. Partition keys are namespaced per model so all three
    /// models can coexist in one table, as in the paper ("the three tests
    /// ran on the same database table"). Datasets that do not divide into
    /// whole partitions are rounded down; datasets smaller than one
    /// partition produce a single short partition.
    pub fn build_partitions(
        self,
        total_elements: u64,
        kinds: u8,
    ) -> Vec<(PartitionKey, Vec<Cell>)> {
        let per = self.cells_per_partition();
        let partitions = self.partitions_for(total_elements);
        (0..partitions)
            .map(|p| {
                let start = p * per;
                let end = ((p + 1) * per).min(total_elements.max(start + 1));
                let cells: Vec<Cell> = (start..end)
                    .map(|id| Cell::synthetic(id, (id % kinds.max(1) as u64) as u8))
                    .collect();
                (self.partition_key(p), cells)
            })
            .collect()
    }

    /// The partition key of this model's `p`-th partition.
    pub fn partition_key(self, p: u64) -> PartitionKey {
        let prefix: u8 = match self {
            DataModel::Coarse => b'C',
            DataModel::Medium => b'M',
            DataModel::Fine => b'F',
        };
        let mut bytes = Vec::with_capacity(9);
        bytes.push(prefix);
        bytes.extend_from_slice(&p.to_be_bytes());
        PartitionKey::new(bytes)
    }

    /// The full key list the master issues for this model's query.
    pub fn query_keys(self, total_elements: u64) -> Vec<PartitionKey> {
        (0..self.partitions_for(total_elements))
            .map(|p| self.partition_key(p))
            .collect()
    }
}

/// Builds an arbitrary-granularity partition set: `partitions` partitions
/// over `total_elements`, sizes differing by at most one cell (the first
/// `total % partitions` partitions take the extra cell — dumping the whole
/// remainder on one partition would manufacture a straggler). This is what
/// the optimizer's recommendations (e.g. Figure 9's 6 068 rows) need to be
/// *run*, not just predicted. Keys carry a `G` namespace.
pub fn custom_partitions(
    total_elements: u64,
    partitions: u64,
    kinds: u8,
) -> Vec<(PartitionKey, Vec<Cell>)> {
    assert!(partitions >= 1, "need at least one partition");
    assert!(
        total_elements >= partitions,
        "more partitions than elements"
    );
    let per = total_elements / partitions;
    let extra = total_elements % partitions;
    let mut next_id = 0u64;
    (0..partitions)
        .map(|p| {
            let size = per + if p < extra { 1 } else { 0 };
            let cells = (next_id..next_id + size)
                .map(|id| Cell::synthetic(id, (id % kinds.max(1) as u64) as u8))
                .collect();
            next_id += size;
            let mut key = Vec::with_capacity(9);
            key.push(b'G');
            key.extend_from_slice(&p.to_be_bytes());
            (PartitionKey::new(key), cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        assert_eq!(DataModel::Coarse.partitions(), 100);
        assert_eq!(DataModel::Coarse.cells_per_partition(), 10_000);
        assert_eq!(DataModel::Medium.partitions(), 1_000);
        assert_eq!(DataModel::Medium.cells_per_partition(), 1_000);
        assert_eq!(DataModel::Fine.partitions(), 10_000);
        assert_eq!(DataModel::Fine.cells_per_partition(), 100);
        // All three cover the same million elements.
        for m in DataModel::ALL {
            assert_eq!(
                m.partitions() * m.cells_per_partition(),
                PAPER_TOTAL_ELEMENTS
            );
        }
    }

    #[test]
    fn scaled_down_build_preserves_ratio() {
        let parts = DataModel::Medium.build_partitions(10_000, 4);
        assert_eq!(parts.len(), 10);
        for (_, cells) in &parts {
            assert_eq!(cells.len(), 1_000);
        }
    }

    #[test]
    fn build_covers_all_elements_exactly_once() {
        let parts = DataModel::Fine.build_partitions(5_000, 4);
        let mut ids: Vec<u64> = parts
            .iter()
            .flat_map(|(_, cells)| cells.iter().map(|c| c.clustering))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids.len(), 5_000);
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1), "ids not dense");
    }

    #[test]
    fn kinds_are_balanced() {
        let parts = DataModel::Coarse.build_partitions(40_000, 4);
        let mut counts = [0u64; 4];
        for (_, cells) in &parts {
            for c in cells {
                counts[c.kind as usize] += 1;
            }
        }
        assert_eq!(counts, [10_000; 4]);
    }

    #[test]
    fn keys_are_distinct_across_models() {
        let mut all = std::collections::BTreeSet::new();
        for m in DataModel::ALL {
            for key in m.query_keys(10_000) {
                assert!(all.insert(key), "key collision between models");
            }
        }
    }

    #[test]
    fn query_keys_match_build() {
        let parts = DataModel::Medium.build_partitions(20_000, 2);
        let keys = DataModel::Medium.query_keys(20_000);
        assert_eq!(parts.len(), keys.len());
        for ((pk, _), key) in parts.iter().zip(&keys) {
            assert_eq!(pk, key);
        }
    }

    #[test]
    fn custom_partitions_cover_everything_exactly_once() {
        for (total, parts) in [(10_000u64, 33u64), (999, 999), (5_000, 1), (1_000, 7)] {
            let built = custom_partitions(total, parts, 4);
            assert_eq!(built.len() as u64, parts);
            let mut ids: Vec<u64> = built
                .iter()
                .flat_map(|(_, cells)| cells.iter().map(|c| c.clustering))
                .collect();
            ids.sort_unstable();
            assert_eq!(ids.len() as u64, total, "{total}/{parts}");
            assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
            // No straggler partitions: sizes differ by at most one cell.
            let sizes: Vec<usize> = built.iter().map(|(_, c)| c.len()).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "{total}/{parts}: sizes {min}..{max}");
        }
    }

    #[test]
    #[should_panic(expected = "more partitions than elements")]
    fn custom_partitions_reject_overpartitioning() {
        let _ = custom_partitions(5, 10, 2);
    }

    #[test]
    fn tiny_datasets_round_to_one_partition() {
        assert_eq!(DataModel::Coarse.partitions_for(5), 1);
        let parts = DataModel::Coarse.build_partitions(5, 2);
        assert_eq!(parts.len(), 1);
    }
}
