//! Surrogate-model DHT scenario (Lübke et al., PAPERS.md).
//!
//! An HPC simulation loop repeatedly needs an expensive kernel evaluated
//! at a point of a continuous input space. A surrogate cache keys the
//! kernel's coefficients by the *discretized* input: on a hit the stored
//! coefficients are reused; on a miss the kernel runs (charged at
//! [`SurrogateConfig::compute_ms`]) and its result is inserted. Because
//! simulation trajectories revisit neighbourhoods, the hit-rate climbs
//! as the table fills — the scenario measures that curve, and the
//! store's [`ReadReceipt`] accounting splits lookup cost into
//! RAM-vs-disk the same way the durable tier's drill does.
//!
//! The input trajectory is a bounded random walk over the unit cube with
//! occasional uniform restarts (a crude but standard stand-in for
//! parameter-sweep locality). Every random draw comes from one seeded
//! generator and the draw sequence does not depend on hit/miss results,
//! so a replayed seed reproduces the exact key — and therefore hit/miss
//! — sequence ([`walk_keys`] exposes it without touching a store).

use crate::keydist::scatter;
use kvs_store::{Cell, CostModel, PartitionKey, ReadReceipt, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key prefix for surrogate grid entries (avoids colliding with the
/// `PartitionKey::from_id` namespace used by the query workloads).
pub const GRID_KEY_PREFIX: u8 = b'G';

/// Cell kind tag for stored surrogate coefficients.
pub const COEFF_KIND: u8 = 7;

/// Discretization grid over the unit cube `[0,1)^dims`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Input-space dimensionality.
    pub dims: u32,
    /// Cells per axis.
    pub cells_per_dim: u64,
}

impl GridSpec {
    /// Total number of grid cells (`cells_per_dim ^ dims`).
    pub fn cell_count(&self) -> u64 {
        self.cells_per_dim.pow(self.dims)
    }

    /// Grid cell id of a point (mixed-radix over the axes).
    ///
    /// # Panics
    /// If a coordinate is outside `[0, 1)`.
    pub fn key_of(&self, point: &[f64]) -> u64 {
        assert_eq!(point.len(), self.dims as usize);
        let mut id = 0u64;
        for &x in point {
            assert!((0.0..1.0).contains(&x), "point coordinate {x} out of [0,1)");
            let axis = ((x * self.cells_per_dim as f64) as u64).min(self.cells_per_dim - 1);
            id = id * self.cells_per_dim + axis;
        }
        id
    }

    /// Partition key of a grid cell id.
    pub fn partition_key(id: u64) -> PartitionKey {
        let mut bytes = Vec::with_capacity(9);
        bytes.push(GRID_KEY_PREFIX);
        bytes.extend_from_slice(&id.to_be_bytes());
        PartitionKey::new(bytes)
    }
}

/// Parameters of one surrogate-DHT run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateConfig {
    /// Discretization grid.
    pub grid: GridSpec,
    /// Simulation steps (one lookup each).
    pub steps: u64,
    /// Max per-axis move per step, in unit-cube units.
    pub walk_step: f64,
    /// Probability a step restarts uniformly instead of walking.
    pub jump_probability: f64,
    /// Simulated cost of running the expensive kernel on a miss, ms.
    pub compute_ms: f64,
    /// Coefficient cells stored per surrogate entry.
    pub coeff_cells: u64,
    /// Steps per hit-rate window of the reported curve.
    pub window: u64,
}

impl SurrogateConfig {
    /// A small configuration that still shows the hit-rate climb: a 2-D
    /// 32×32 grid (1024 cells) walked for 4096 steps.
    pub fn smoke() -> Self {
        SurrogateConfig {
            grid: GridSpec {
                dims: 2,
                cells_per_dim: 32,
            },
            steps: 4096,
            walk_step: 0.05,
            jump_probability: 0.02,
            // A kernel worth caching: ~100× a warm lookup.
            compute_ms: 120.0,
            coeff_cells: 16,
            window: 256,
        }
    }
}

/// One simulation step of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateStep {
    /// Grid cell id the step queried.
    pub key: u64,
    /// Whether the surrogate table already held the entry.
    pub hit: bool,
    /// Simulated time the step paid (lookup, plus kernel on a miss), ms.
    pub service_ms: f64,
}

/// Aggregate result of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateOutcome {
    /// Per-step records, in order.
    pub steps: Vec<SurrogateStep>,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses (kernel executions).
    pub misses: u64,
    /// Distinct grid cells inserted.
    pub unique_keys: u64,
    /// Hit-rate per [`SurrogateConfig::window`]-step window.
    pub hit_curve: Vec<f64>,
    /// Aggregate read accounting across every lookup (disk-vs-cache
    /// split comes from `disk_blocks_read` / `disk_block_cache_hits`).
    pub receipt: ReadReceipt,
    /// Total simulated time, ms.
    pub total_ms: f64,
}

impl SurrogateOutcome {
    /// Overall hit-rate.
    pub fn hit_rate(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.hits as f64 / self.steps.len() as f64
        }
    }
}

/// A store the surrogate loop can run against. `fetch` must not create
/// the entry; `store` must make a subsequent `fetch` return its cells.
pub trait SurrogateBackend {
    /// Reads a partition, returning its cells and the work receipt.
    fn fetch(&mut self, pk: &PartitionKey) -> (Vec<Cell>, ReadReceipt);
    /// Inserts the coefficient cells of a partition.
    fn store(&mut self, pk: PartitionKey, cells: Vec<Cell>);
}

impl SurrogateBackend for Table {
    fn fetch(&mut self, pk: &PartitionKey) -> (Vec<Cell>, ReadReceipt) {
        self.get(pk)
    }

    fn store(&mut self, pk: PartitionKey, cells: Vec<Cell>) {
        self.put_all(&pk, cells);
    }
}

#[cfg(feature = "durable")]
impl SurrogateBackend for kvs_store::DurableTable {
    fn fetch(&mut self, pk: &PartitionKey) -> (Vec<Cell>, ReadReceipt) {
        self.get(pk).expect("surrogate durable read")
    }

    fn store(&mut self, pk: PartitionKey, cells: Vec<Cell>) {
        for cell in cells {
            self.put(pk.clone(), cell).expect("surrogate durable write");
        }
    }
}

/// Coefficient cells stored for grid cell `key` — synthetic payloads
/// whose clustering keys are scattered so SSTable layouts look like real
/// multi-column rows rather than a single dense run.
fn coeff_cells(key: u64, count: u64) -> Vec<Cell> {
    (0..count)
        .map(|c| Cell::synthetic(scatter(key.wrapping_add(c), u64::MAX), COEFF_KIND))
        .collect()
}

/// The deterministic grid-cell sequence of a run — the walk alone,
/// without a store. `run_surrogate` with the same `(cfg, seed)` queries
/// exactly these keys in this order.
pub fn walk_keys(cfg: &SurrogateConfig, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos = vec![0.0f64; cfg.grid.dims as usize];
    let mut out = Vec::with_capacity(cfg.steps as usize);
    for x in pos.iter_mut() {
        *x = rng.gen::<f64>();
    }
    for _ in 0..cfg.steps {
        out.push(cfg.grid.key_of(&pos));
        step_walk(cfg, &mut rng, &mut pos);
    }
    out
}

fn step_walk(cfg: &SurrogateConfig, rng: &mut StdRng, pos: &mut [f64]) {
    if rng.gen_bool(cfg.jump_probability) {
        for x in pos.iter_mut() {
            *x = rng.gen::<f64>();
        }
        return;
    }
    for x in pos.iter_mut() {
        let delta = (rng.gen::<f64>() * 2.0 - 1.0) * cfg.walk_step;
        // Reflect at the cube faces so the walk stays bounded without
        // piling probability mass on the boundary the way clamping does.
        let mut next = *x + delta;
        if next < 0.0 {
            next = -next;
        }
        if next >= 1.0 {
            next = 2.0 - next - f64::EPSILON;
        }
        *x = next.clamp(0.0, f64::from_bits(1.0f64.to_bits() - 1));
    }
}

/// Runs the surrogate loop against `backend`, charging lookup time via
/// `cost` and kernel time via [`SurrogateConfig::compute_ms`].
pub fn run_surrogate<B: SurrogateBackend>(
    cfg: &SurrogateConfig,
    backend: &mut B,
    cost: &CostModel,
    seed: u64,
) -> SurrogateOutcome {
    let keys = walk_keys(cfg, seed);
    let mut steps = Vec::with_capacity(keys.len());
    let mut receipt = ReadReceipt::default();
    let (mut hits, mut misses, mut unique_keys) = (0u64, 0u64, 0u64);
    let mut total_ms = 0.0;
    for key in keys {
        let pk = GridSpec::partition_key(key);
        let (cells, r) = backend.fetch(&pk);
        receipt.absorb(&r);
        let hit = !cells.is_empty();
        let mut service_ms = cost.service_ms(&r);
        if hit {
            hits += 1;
        } else {
            misses += 1;
            service_ms += cfg.compute_ms;
            backend.store(pk, coeff_cells(key, cfg.coeff_cells));
            unique_keys += 1;
        }
        total_ms += service_ms;
        steps.push(SurrogateStep {
            key,
            hit,
            service_ms,
        });
    }
    let hit_curve = steps
        .chunks(cfg.window.max(1) as usize)
        .map(|w| w.iter().filter(|s| s.hit).count() as f64 / w.len() as f64)
        .collect();
    SurrogateOutcome {
        steps,
        hits,
        misses,
        unique_keys,
        hit_curve,
        receipt,
        total_ms,
    }
}

/// Read-only probe: whether each grid cell currently exists in
/// `backend`. Used by the monotonicity property test — probing never
/// inserts, so hit counts against a fixed key list are a pure function
/// of the backend's contents.
pub fn probe_hits<B: SurrogateBackend>(backend: &mut B, keys: &[u64]) -> Vec<bool> {
    keys.iter()
        .map(|&k| !backend.fetch(&GridSpec::partition_key(k)).0.is_empty())
        .collect()
}

/// Inserts grid cells `0..count` directly (pre-filling for sweeps).
pub fn prefill<B: SurrogateBackend>(backend: &mut B, cfg: &SurrogateConfig, count: u64) {
    for key in 0..count.min(cfg.grid.cell_count()) {
        backend.store(
            GridSpec::partition_key(key),
            coeff_cells(key, cfg.coeff_cells),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::with_defaults()
    }

    #[test]
    fn grid_key_is_mixed_radix_and_bounded() {
        let g = GridSpec {
            dims: 2,
            cells_per_dim: 10,
        };
        assert_eq!(g.cell_count(), 100);
        assert_eq!(g.key_of(&[0.0, 0.0]), 0);
        assert_eq!(g.key_of(&[0.15, 0.95]), 19);
        assert_eq!(g.key_of(&[0.999, 0.999]), 99);
    }

    #[test]
    fn walk_is_deterministic_and_local() {
        let cfg = SurrogateConfig::smoke();
        let a = walk_keys(&cfg, 9);
        let b = walk_keys(&cfg, 9);
        assert_eq!(a, b);
        assert_ne!(a, walk_keys(&cfg, 10));
        // Locality: consecutive steps mostly stay in the same cell or a
        // neighbour, so distinct-key count is far below step count.
        let distinct: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        assert!(distinct.len() < a.len() / 2, "{} distinct", distinct.len());
    }

    #[test]
    fn replay_reproduces_hit_miss_sequence() {
        let cfg = SurrogateConfig::smoke();
        let cost = CostModel::paper_cassandra().deterministic();
        let a = run_surrogate(&cfg, &mut table(), &cost, 77);
        let b = run_surrogate(&cfg, &mut table(), &cost, 77);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.hit_curve, b.hit_curve);
    }

    #[test]
    fn hit_rate_climbs_as_table_fills() {
        let cfg = SurrogateConfig::smoke();
        let cost = CostModel::paper_cassandra().deterministic();
        let out = run_surrogate(&cfg, &mut table(), &cost, 3);
        assert_eq!(out.hits + out.misses, cfg.steps);
        assert_eq!(out.unique_keys, out.misses);
        let first = out.hit_curve.first().copied().unwrap();
        let last = out.hit_curve.last().copied().unwrap();
        assert!(
            last > first + 0.1,
            "hit-rate never climbed: first {first} last {last}"
        );
    }

    #[test]
    fn misses_pay_the_kernel() {
        let cfg = SurrogateConfig::smoke();
        let cost = CostModel::paper_cassandra().deterministic();
        let out = run_surrogate(&cfg, &mut table(), &cost, 5);
        for s in &out.steps {
            if s.hit {
                assert!(s.service_ms < cfg.compute_ms, "{}", s.service_ms);
            } else {
                assert!(s.service_ms >= cfg.compute_ms, "{}", s.service_ms);
            }
        }
    }

    #[test]
    fn probe_is_read_only() {
        let cfg = SurrogateConfig::smoke();
        let mut t = table();
        prefill(&mut t, &cfg, 8);
        let keys: Vec<u64> = (0..16).collect();
        let first = probe_hits(&mut t, &keys);
        let again = probe_hits(&mut t, &keys);
        assert_eq!(first, again);
        assert_eq!(first.iter().filter(|h| **h).count(), 8);
    }
}
