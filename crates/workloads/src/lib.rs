#![warn(missing_docs)]

//! # kvs-workloads
//!
//! Synthetic datasets and data models for the experiments.
//!
//! The paper indexes the output of the Alya multi-physics simulator — "how
//! particles are dragged into the bronchi during an inhalation" — with the
//! authors' D8tree, a *denormalized* octree on top of a key-value store.
//! We have neither Alya nor its dataset, so:
//!
//! * [`alya`] generates a synthetic particle cloud advected through a
//!   procedurally grown bronchial tree — spatially clustered exactly the
//!   way a deposition study's output is, which is what matters for cube
//!   size skew;
//! * [`d8tree`] implements the D8tree mechanism: every element is
//!   replicated into the cube containing it at *every* level of the octree,
//!   so a query can be answered at any granularity — "we can arbitrarily
//!   decide the number of keys we need to access" (§III);
//! * [`datamodels`] pins the paper's three workloads (coarse 100 × 10 000,
//!   medium 1 000 × 1 000, fine 10 000 × 100 over one million elements);
//! * [`sampling`] provides the stratified row-size samples behind the
//!   Figure 6 and Figure 7 calibrations.
//!
//! Beyond the paper's own query, the crate carries the seeded workload
//! driver (ROADMAP item 4):
//!
//! * [`keydist`] — zipfian (precomputed zeta tables), uniform and latest
//!   key skews plus the growing sequential-insert [`keydist::KeySpace`];
//! * [`ycsb`] — YCSB-style operation mixes lowered to the sub-requests
//!   the sim and socket executors issue;
//! * [`surrogate`] — the surrogate-model DHT scenario: hit-rate and
//!   latency of a compute cache as a simulation walk fills it.
//!
//! Everything here is deterministic: no clocks, no ambient RNG — every
//! generator takes an explicit seed (KVS-L001 treats this crate as a
//! deterministic zone).

pub mod alya;
pub mod d8tree;
pub mod datamodels;
pub mod keydist;
pub mod queries;
pub mod sampling;
pub mod surrogate;
pub mod ycsb;

pub use alya::{AlyaConfig, Particle};
pub use d8tree::{CubeId, D8Tree};
pub use datamodels::DataModel;
pub use keydist::{DistKind, KeyChooser, KeySpace, Latest, Zipfian};
pub use queries::SpatialQuery;
pub use surrogate::{SurrogateBackend, SurrogateConfig, SurrogateOutcome};
pub use ycsb::{generate_ops, lower_ops, standard_mixes, Leg, LegKind, MixSpec, Op, OpKind};
