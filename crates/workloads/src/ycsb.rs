//! YCSB-style operation mixes and their expansion into sub-requests.
//!
//! A [`MixSpec`] names an operation blend (read / update /
//! read-modify-write / short scan / insert percentages), a key skew
//! ([`DistKind`]) and a scan-length cap; [`generate_ops`] turns one into
//! a deterministic operation sequence over a [`KeySpace`] that grows as
//! inserts land. [`expand_requests`] then lowers each operation to the
//! partition sub-requests the two executors (`cluster::sim` and
//! `kvs-net`'s `NetMaster`) actually issue.
//!
//! ## Lowering to typed legs (reads stay reads, writes are writes)
//!
//! Frame v2 carries write kinds (`Write`, `Rmw` — see `kvs-net`'s
//! `write_path`), so mutating operations lower to *real* write frames
//! ([`lower_ops`]):
//!
//! * a **read** issues one `Read` leg to its partition;
//! * an **update** issues one `Write` leg — a replicated LWW write of
//!   fresh cells to the updated partition;
//! * a **read-modify-write** issues one `Rmw` leg: a single frame whose
//!   replica reads the partition pre-image under the same lock before
//!   applying, then acknowledges like a write;
//! * an **insert** activates the next sequential key — the keyspace
//!   growth is visible to the `latest`/`zipfian` skews immediately — and
//!   issues one `Write` leg to the newly active partition. Data for the
//!   full final keyspace is pre-provisioned by the harness
//!   ([`max_keyspace`] bounds it), so routes exist from the start;
//! * a **scan** of length `L` issues `L` `Read` legs to consecutively
//!   numbered partitions (the contiguous token-range read a real scan
//!   performs), clamped so it never runs off the live keyspace.
//!
//! [`expand_requests`] is the *read-path projection* of the same stream:
//! every leg priced as a request, RMW as its two sequential rounds. The
//! deterministic executor (`cluster::sim`) uses it because the paper's
//! cost model prices the aggregation read; the socket executor issues
//! the typed legs.

use crate::keydist::{DistKind, KeyChooser, KeySpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One workload operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Point read of one partition.
    Read,
    /// Full-row update (read-path emulated, see module docs).
    Update,
    /// Atomic read-modify-write of one partition.
    ReadModifyWrite,
    /// Short range scan starting at a key.
    Scan,
    /// Sequential insert of the next key.
    Insert,
}

impl OpKind {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Update => "update",
            OpKind::ReadModifyWrite => "rmw",
            OpKind::Scan => "scan",
            OpKind::Insert => "insert",
        }
    }
}

/// One concrete operation of a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// What the operation does.
    pub kind: OpKind,
    /// Target key id (scan: first key of the range).
    pub key: u64,
    /// Number of keys a scan covers (1 for every other kind).
    pub scan_len: u64,
}

/// Operation blend in percent. Must sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpWeights {
    /// Point reads.
    pub read: u32,
    /// Updates.
    pub update: u32,
    /// Read-modify-writes.
    pub rmw: u32,
    /// Short scans.
    pub scan: u32,
    /// Sequential inserts.
    pub insert: u32,
}

impl OpWeights {
    fn total(&self) -> u32 {
        self.read + self.update + self.rmw + self.scan + self.insert
    }
}

/// A named YCSB-style mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSpec {
    /// Stable mix name (JSON key, docs table row).
    pub name: &'static str,
    /// Key skew the non-insert operations draw from.
    pub dist: DistKind,
    /// Operation blend.
    pub weights: OpWeights,
    /// Inclusive cap on scan length (ignored when `weights.scan == 0`).
    pub max_scan_len: u64,
}

/// The four mixes the drill runs, patterned on the YCSB core workloads
/// the HiBench Cassandra report exercises:
///
/// | mix                 | blend                    | skew            | YCSB kin |
/// |---------------------|--------------------------|-----------------|----------|
/// | `read_heavy`        | 95% read / 5% insert     | latest (0.99)   | D        |
/// | `update_heavy`      | 50% read / 50% update    | zipfian (0.99)  | A        |
/// | `read_modify_write` | 50% read / 50% RMW       | zipfian (0.99)  | F        |
/// | `short_scans`       | 95% scan / 5% insert     | uniform, ≤ 8    | E        |
///
/// Between them they cover all three skews plus the sequential-insert
/// keyspace growth (`read_heavy` and `short_scans` both grow it).
pub fn standard_mixes() -> [MixSpec; 4] {
    [
        MixSpec {
            name: "read_heavy",
            dist: DistKind::Latest { theta: 0.99 },
            weights: OpWeights {
                read: 95,
                update: 0,
                rmw: 0,
                scan: 0,
                insert: 5,
            },
            max_scan_len: 1,
        },
        MixSpec {
            name: "update_heavy",
            dist: DistKind::Zipfian { theta: 0.99 },
            weights: OpWeights {
                read: 50,
                update: 50,
                rmw: 0,
                scan: 0,
                insert: 0,
            },
            max_scan_len: 1,
        },
        MixSpec {
            name: "read_modify_write",
            dist: DistKind::Zipfian { theta: 0.99 },
            weights: OpWeights {
                read: 50,
                update: 0,
                rmw: 50,
                scan: 0,
                insert: 0,
            },
            max_scan_len: 1,
        },
        MixSpec {
            name: "short_scans",
            dist: DistKind::Uniform,
            weights: OpWeights {
                read: 0,
                update: 0,
                rmw: 0,
                scan: 95,
                insert: 5,
            },
            max_scan_len: 8,
        },
    ]
}

/// Upper bound on the keyspace after `ops` operations of any mix start
/// from `initial_keys` — the harness pre-provisions this many partitions
/// so every insert's route exists from the start (see module docs).
pub fn max_keyspace(initial_keys: u64, ops: u64) -> u64 {
    initial_keys + ops
}

/// Generates the deterministic operation sequence of `spec`: `ops`
/// operations over a keyspace starting at `initial_keys` ids. Identical
/// `(spec, initial_keys, ops, seed)` → identical sequence.
///
/// # Panics
/// If the weights don't sum to 100, `initial_keys == 0`, or a scan mix
/// has `max_scan_len == 0`.
pub fn generate_ops(spec: &MixSpec, initial_keys: u64, ops: u64, seed: u64) -> Vec<Op> {
    assert_eq!(
        spec.weights.total(),
        100,
        "mix {} weights must sum to 100",
        spec.name
    );
    assert!(
        spec.weights.scan == 0 || spec.max_scan_len > 0,
        "scan mix with zero max_scan_len"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keyspace = KeySpace::new(initial_keys);
    let mut chooser = KeyChooser::new(spec.dist, initial_keys);
    let w = spec.weights;
    let (t_read, t_update, t_rmw, t_scan) = (
        w.read,
        w.read + w.update,
        w.read + w.update + w.rmw,
        w.read + w.update + w.rmw + w.scan,
    );
    let mut out = Vec::with_capacity(ops as usize);
    for _ in 0..ops {
        let roll = rng.gen_range(0..100u32);
        let op = if roll < t_read {
            Op {
                kind: OpKind::Read,
                key: chooser.next(&mut rng, keyspace.len()),
                scan_len: 1,
            }
        } else if roll < t_update {
            Op {
                kind: OpKind::Update,
                key: chooser.next(&mut rng, keyspace.len()),
                scan_len: 1,
            }
        } else if roll < t_rmw {
            Op {
                kind: OpKind::ReadModifyWrite,
                key: chooser.next(&mut rng, keyspace.len()),
                scan_len: 1,
            }
        } else if roll < t_scan {
            let live = keyspace.len();
            let start = chooser.next(&mut rng, live);
            let want = rng.gen_range(1..=spec.max_scan_len);
            Op {
                kind: OpKind::Scan,
                key: start,
                // Clamp at the end of the live keyspace instead of
                // wrapping: a token-range scan reads forward only.
                scan_len: want.min(live - start),
            }
        } else {
            Op {
                kind: OpKind::Insert,
                key: keyspace.insert(),
                scan_len: 1,
            }
        };
        out.push(op);
    }
    out
}

/// The frame-level shape of one lowered sub-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegKind {
    /// Read-path request (point read, or one leg of a scan fan-out).
    Read,
    /// Replicated last-write-wins write (update, insert).
    Write,
    /// Single-frame read-modify-write (pre-image read, then apply).
    Rmw,
}

/// One lowered sub-request of an operation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leg {
    /// Index of the operation this leg belongs to.
    pub op_ix: usize,
    /// Target key id.
    pub key: u64,
    /// Which frame kind the leg issues.
    pub kind: LegKind,
}

/// Lowers operations to typed legs in issue order (see module docs):
/// reads and scans produce `Read` legs (one per covered key), updates
/// and inserts one `Write` leg, read-modify-writes one `Rmw` leg.
pub fn lower_ops(ops: &[Op]) -> Vec<Leg> {
    let mut out = Vec::with_capacity(ops.len());
    for (ix, op) in ops.iter().enumerate() {
        match op.kind {
            OpKind::Read => out.push(Leg {
                op_ix: ix,
                key: op.key,
                kind: LegKind::Read,
            }),
            OpKind::Update | OpKind::Insert => out.push(Leg {
                op_ix: ix,
                key: op.key,
                kind: LegKind::Write,
            }),
            OpKind::ReadModifyWrite => out.push(Leg {
                op_ix: ix,
                key: op.key,
                kind: LegKind::Rmw,
            }),
            OpKind::Scan => {
                for k in op.key..op.key + op.scan_len {
                    out.push(Leg {
                        op_ix: ix,
                        key: k,
                        kind: LegKind::Read,
                    });
                }
            }
        }
    }
    out
}

/// Lowers operations to the *read-path projection*: `(op index, key id)`
/// per request, in issue order, with every leg shaped as a read request.
/// Reads/updates/inserts issue one request, read-modify-writes two (the
/// read round, then the write round's round trip), scans one per covered
/// key. The deterministic executor prices this projection; the socket
/// executor issues [`lower_ops`]' typed legs instead.
pub fn expand_requests(ops: &[Op]) -> Vec<(usize, u64)> {
    let mut out = Vec::with_capacity(ops.len());
    for (ix, op) in ops.iter().enumerate() {
        match op.kind {
            OpKind::Read | OpKind::Update | OpKind::Insert => out.push((ix, op.key)),
            OpKind::ReadModifyWrite => {
                out.push((ix, op.key));
                out.push((ix, op.key));
            }
            OpKind::Scan => {
                for k in op.key..op.key + op.scan_len {
                    out.push((ix, k));
                }
            }
        }
    }
    out
}

/// Per-kind operation counts of a generated stream (reporting helper).
pub fn op_counts(ops: &[Op]) -> [(&'static str, u64); 5] {
    let mut counts = [
        ("read", 0u64),
        ("update", 0),
        ("rmw", 0),
        ("scan", 0),
        ("insert", 0),
    ];
    for op in ops {
        let ix = match op.kind {
            OpKind::Read => 0,
            OpKind::Update => 1,
            OpKind::ReadModifyWrite => 2,
            OpKind::Scan => 3,
            OpKind::Insert => 4,
        };
        counts[ix].1 += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mixes_are_well_formed() {
        for spec in standard_mixes() {
            assert_eq!(spec.weights.total(), 100, "{}", spec.name);
            assert!(spec.max_scan_len >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for spec in standard_mixes() {
            let a = generate_ops(&spec, 256, 1_000, 42);
            let b = generate_ops(&spec, 256, 1_000, 42);
            assert_eq!(a, b, "{} not deterministic", spec.name);
            let c = generate_ops(&spec, 256, 1_000, 43);
            assert_ne!(a, c, "{} ignores the seed", spec.name);
        }
    }

    #[test]
    fn keys_stay_inside_the_provisioned_space() {
        for spec in standard_mixes() {
            let ops = generate_ops(&spec, 128, 2_000, 7);
            let bound = max_keyspace(128, 2_000);
            for op in &ops {
                assert!(op.key + op.scan_len <= bound, "{:?} out of bounds", op);
            }
        }
    }

    #[test]
    fn inserts_are_sequential_and_grow_the_space() {
        let spec = standard_mixes()[0]; // read_heavy: 5% inserts
        let ops = generate_ops(&spec, 100, 4_000, 11);
        let inserts: Vec<u64> = ops
            .iter()
            .filter(|o| o.kind == OpKind::Insert)
            .map(|o| o.key)
            .collect();
        // Dense ids starting right after the initial space.
        for (i, &k) in inserts.iter().enumerate() {
            assert_eq!(k, 100 + i as u64);
        }
        // ~5% of 4000 — loose binomial bounds.
        assert!(
            (120..=280).contains(&inserts.len()),
            "{} inserts",
            inserts.len()
        );
        // Reads reach the grown region (latest skew chases inserts).
        assert!(
            ops.iter().any(|o| o.kind == OpKind::Read && o.key >= 100),
            "no read ever touched an inserted key"
        );
    }

    #[test]
    fn rmw_expands_to_two_requests_scans_to_len() {
        let ops = vec![
            Op {
                kind: OpKind::Read,
                key: 3,
                scan_len: 1,
            },
            Op {
                kind: OpKind::ReadModifyWrite,
                key: 5,
                scan_len: 1,
            },
            Op {
                kind: OpKind::Scan,
                key: 10,
                scan_len: 3,
            },
        ];
        let reqs = expand_requests(&ops);
        assert_eq!(
            reqs,
            vec![(0, 3), (1, 5), (1, 5), (2, 10), (2, 11), (2, 12)]
        );
    }

    #[test]
    fn lowering_produces_typed_legs() {
        let ops = vec![
            Op {
                kind: OpKind::Read,
                key: 3,
                scan_len: 1,
            },
            Op {
                kind: OpKind::Update,
                key: 4,
                scan_len: 1,
            },
            Op {
                kind: OpKind::ReadModifyWrite,
                key: 5,
                scan_len: 1,
            },
            Op {
                kind: OpKind::Insert,
                key: 6,
                scan_len: 1,
            },
            Op {
                kind: OpKind::Scan,
                key: 10,
                scan_len: 3,
            },
        ];
        let legs = lower_ops(&ops);
        let expect = |op_ix, key, kind| Leg { op_ix, key, kind };
        assert_eq!(
            legs,
            vec![
                expect(0, 3, LegKind::Read),
                expect(1, 4, LegKind::Write),
                expect(2, 5, LegKind::Rmw),
                expect(3, 6, LegKind::Write),
                expect(4, 10, LegKind::Read),
                expect(4, 11, LegKind::Read),
                expect(4, 12, LegKind::Read),
            ]
        );
    }

    #[test]
    fn lowering_and_projection_agree_on_read_only_streams() {
        let spec = standard_mixes()[3]; // short_scans: no writes
        let ops = generate_ops(&spec, 64, 500, 9);
        let legs = lower_ops(&ops);
        let reqs = expand_requests(&ops);
        assert_eq!(legs.len(), reqs.len());
        for (leg, &(op_ix, key)) in legs.iter().zip(&reqs) {
            assert_eq!((leg.op_ix, leg.key), (op_ix, key));
            let expected = if ops[op_ix].kind == OpKind::Insert {
                LegKind::Write
            } else {
                LegKind::Read
            };
            assert_eq!(leg.kind, expected);
        }
    }

    #[test]
    fn scans_never_run_off_the_live_space() {
        let spec = standard_mixes()[3];
        let ops = generate_ops(&spec, 64, 3_000, 5);
        let mut live = 64u64;
        for op in &ops {
            if op.kind == OpKind::Insert {
                live += 1;
            }
            if op.kind == OpKind::Scan {
                assert!(op.scan_len >= 1);
                assert!(op.key + op.scan_len <= live);
            }
        }
    }

    #[test]
    fn op_counts_match_weights_roughly() {
        let spec = standard_mixes()[1]; // update_heavy 50/50
        let ops = generate_ops(&spec, 256, 10_000, 3);
        let counts = op_counts(&ops);
        let reads = counts[0].1 as f64;
        let updates = counts[1].1 as f64;
        assert!((reads / 10_000.0 - 0.5).abs() < 0.03);
        assert!((updates / 10_000.0 - 0.5).abs() < 0.03);
    }
}
