//! Key-distribution generators for the YCSB-style workload driver.
//!
//! The paper's live traffic is a single D8tree aggregation query; the
//! HiBench Cassandra study (PAPERS.md) shows that the read/update/scan
//! *mixes* and the key *skew* are what separate key-value workloads in
//! practice. This module provides the three YCSB skews — [`Zipfian`]
//! (with an incrementally extended zeta table), uniform, and
//! [`Latest`] — plus a [`KeySpace`] that grows under sequential inserts,
//! so the `latest` and `zipfian` skews can track a keyspace that fills
//! while the workload runs.
//!
//! Everything here is deterministic for a fixed seed: generators take an
//! explicit `&mut impl Rng` (no ambient RNG — KVS-L001), and the zeta
//! table extension is pure summation, so identical `(seed, parameters)`
//! always yield identical key sequences.

use rand::Rng;

/// Incrementally extended table of zeta partial sums
/// `ζ(n, θ) = Σ_{i=1..n} i^{-θ}`.
///
/// The YCSB zipfian sampler needs `ζ(n, θ)` for the *current* keyspace
/// size `n`; recomputing the sum from scratch every time the keyspace
/// grows is O(n) per insert. The table instead keeps the running sum plus
/// checkpoints every [`ZetaTable::CHECKPOINT_EVERY`] items, so growing is
/// O(new items) and *shrinking back* (or evaluating at any historical
/// `n`) restarts from the nearest checkpoint instead of from 1.
#[derive(Debug, Clone)]
pub struct ZetaTable {
    theta: f64,
    /// Largest `n` the running sum covers.
    n: u64,
    /// `ζ(self.n, θ)`.
    value: f64,
    /// `(n, ζ(n, θ))` at every checkpoint boundary, ascending in `n`.
    checkpoints: Vec<(u64, f64)>,
}

impl ZetaTable {
    /// Checkpoint spacing: one stored partial sum per this many items.
    pub const CHECKPOINT_EVERY: u64 = 1024;

    /// An empty table for exponent `theta`.
    ///
    /// # Panics
    /// If `theta` is not in `[0, 1)` (the YCSB sampler's valid range).
    pub fn new(theta: f64) -> ZetaTable {
        assert!((0.0..1.0).contains(&theta), "theta {theta} outside [0,1)");
        ZetaTable {
            theta,
            n: 0,
            value: 0.0,
            checkpoints: Vec::new(),
        }
    }

    /// The exponent this table was built for.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of checkpoints currently stored.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// `ζ(n, θ)`, extending or rewinding the table as needed.
    ///
    /// # Panics
    /// If `n == 0` (the zipfian needs at least one item).
    pub fn zeta(&mut self, n: u64) -> f64 {
        assert!(n > 0, "zeta of an empty keyspace");
        if n < self.n {
            // Rewind: restart the running sum from the nearest checkpoint
            // at or below n, then re-extend.
            let ix = self.checkpoints.partition_point(|&(cn, _)| cn <= n);
            let (start_n, start_v) = if ix == 0 {
                (0u64, 0.0)
            } else {
                self.checkpoints[ix - 1]
            };
            self.checkpoints.truncate(ix);
            self.n = start_n;
            self.value = start_v;
        }
        while self.n < n {
            self.n += 1;
            self.value += (self.n as f64).powf(-self.theta);
            if self.n.is_multiple_of(Self::CHECKPOINT_EVERY) {
                self.checkpoints.push((self.n, self.value));
            }
        }
        self.value
    }
}

/// The YCSB zipfian generator: ranks `0..items` with
/// `P(rank = i) = (i+1)^{-θ} / ζ(items, θ)` — rank 0 is the most popular.
///
/// Uses Gray et al.'s closed-form approximate inverse CDF (the algorithm
/// YCSB ships), so sampling is O(1) after the zeta table is built, and
/// the keyspace can grow mid-run via [`Zipfian::set_items`] without
/// restarting the sequence.
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zeta: ZetaTable,
    zeta_n: f64,
    zeta_2: f64,
    eta: f64,
}

impl Zipfian {
    /// A zipfian over `items` ranks with exponent `theta`.
    ///
    /// # Panics
    /// If `items == 0` or `theta` is outside `[0, 1)`.
    pub fn new(items: u64, theta: f64) -> Zipfian {
        assert!(items > 0, "zipfian over an empty keyspace");
        let mut zeta = ZetaTable::new(theta);
        let zeta_n = zeta.zeta(items);
        let zeta_2 = zeta.zeta(2.min(items));
        // zeta(2) rewound the table; restore the full sum.
        let zeta_n_check = zeta.zeta(items);
        debug_assert!((zeta_n - zeta_n_check).abs() < 1e-9);
        let mut z = Zipfian {
            items,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zeta,
            zeta_n,
            zeta_2,
            eta: 0.0,
        };
        z.eta = z.compute_eta();
        z
    }

    fn compute_eta(&self) -> f64 {
        (1.0 - (2.0 / self.items as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta_2 / self.zeta_n)
    }

    /// Current keyspace size.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Grows (or rewinds) the keyspace to `items`; the zeta table extends
    /// incrementally, so calling this every operation is cheap.
    ///
    /// # Panics
    /// If `items == 0`.
    pub fn set_items(&mut self, items: u64) {
        if items == self.items {
            return;
        }
        assert!(items > 0, "zipfian over an empty keyspace");
        self.items = items;
        self.zeta_n = self.zeta.zeta(items);
        self.eta = self.compute_eta();
    }

    /// Draws a rank in `0..items` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        if self.items == 1 {
            // Consume a draw anyway so sequences stay aligned across
            // keyspace sizes.
            let _u: f64 = rng.gen();
            return 0;
        }
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }

    /// The closed-form probability of `rank` — the expectation the
    /// statistical tests compare empirical frequencies against.
    pub fn rank_probability(&self, rank: u64) -> f64 {
        assert!(rank < self.items, "rank {rank} outside 0..{}", self.items);
        ((rank + 1) as f64).powf(-self.theta) / self.zeta_n
    }

    /// Closed-form CDF at `rank` (inclusive): `P(X ≤ rank)`.
    pub fn rank_cdf(&mut self, rank: u64) -> f64 {
        assert!(rank < self.items, "rank {rank} outside 0..{}", self.items);
        let zn = self.zeta_n;
        let partial = self.zeta.zeta(rank + 1);
        // Evaluating a prefix rewound the table; restore the full sum.
        self.zeta_n = self.zeta.zeta(self.items);
        partial / zn
    }
}

/// Spreads zipfian *ranks* over the key *ids* so the hottest keys are not
/// all clustered at the low end of the partition space (YCSB's
/// "scrambled zipfian"). Stable FNV-1a hash — same `(rank, items)`
/// always maps to the same key.
pub fn scatter(rank: u64, items: u64) -> u64 {
    assert!(items > 0, "scatter over an empty keyspace");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rank.to_be_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h % items
}

/// The "latest" skew (YCSB workload D): a zipfian over recency, so the
/// most recently inserted key is the most popular. Tracks a growing
/// keyspace — pass the current size to every [`Latest::sample`].
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    /// A latest-skew generator over an initial keyspace of `items`.
    pub fn new(items: u64, theta: f64) -> Latest {
        Latest {
            zipf: Zipfian::new(items, theta),
        }
    }

    /// Draws a key id in `0..items`, skewed toward `items - 1` (the
    /// newest key).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, items: u64) -> u64 {
        self.zipf.set_items(items);
        items - 1 - self.zipf.sample(rng)
    }
}

/// A keyspace of dense integer ids `0..len` that grows under sequential
/// inserts — the "sequential-insert keyspace" the read-latest and scan
/// mixes exercise. Ids are never recycled and the space never shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySpace {
    len: u64,
}

impl KeySpace {
    /// A keyspace preloaded with ids `0..initial`.
    ///
    /// # Panics
    /// If `initial == 0` — an empty keyspace has nothing to read.
    pub fn new(initial: u64) -> KeySpace {
        assert!(initial > 0, "keyspace must start non-empty");
        KeySpace { len: initial }
    }

    /// Number of live keys (also the next id to be inserted).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Always false — see [`KeySpace::new`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Appends the next sequential key and returns its id.
    pub fn insert(&mut self) -> u64 {
        let id = self.len;
        self.len += 1;
        id
    }
}

/// Which skew a mix draws its keys from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistKind {
    /// Every live key equally likely.
    Uniform,
    /// Zipfian over scattered key ids (hot set spread across partitions).
    Zipfian {
        /// Skew exponent in `[0, 1)`; YCSB's default is 0.99.
        theta: f64,
    },
    /// Zipfian over recency: newest keys hottest.
    Latest {
        /// Skew exponent in `[0, 1)`.
        theta: f64,
    },
}

impl DistKind {
    /// Short stable name (used in BENCH JSON and docs tables).
    pub fn name(&self) -> &'static str {
        match self {
            DistKind::Uniform => "uniform",
            DistKind::Zipfian { .. } => "zipfian",
            DistKind::Latest { .. } => "latest",
        }
    }
}

/// Runtime state for drawing keys from a [`DistKind`] against a (possibly
/// growing) [`KeySpace`].
#[derive(Debug, Clone)]
pub struct KeyChooser {
    kind: DistKind,
    zipf: Option<Zipfian>,
    latest: Option<Latest>,
}

impl KeyChooser {
    /// A chooser for `kind` over an initial keyspace of `items`.
    pub fn new(kind: DistKind, items: u64) -> KeyChooser {
        let (zipf, latest) = match kind {
            DistKind::Uniform => (None, None),
            DistKind::Zipfian { theta } => (Some(Zipfian::new(items, theta)), None),
            DistKind::Latest { theta } => (None, Some(Latest::new(items, theta))),
        };
        KeyChooser { kind, zipf, latest }
    }

    /// The distribution this chooser draws from.
    pub fn kind(&self) -> DistKind {
        self.kind
    }

    /// Draws a key id in `0..items`.
    ///
    /// # Panics
    /// If `items == 0`.
    pub fn next<R: Rng + ?Sized>(&mut self, rng: &mut R, items: u64) -> u64 {
        assert!(items > 0, "choosing from an empty keyspace");
        match self.kind {
            DistKind::Uniform => rng.gen_range(0..items),
            DistKind::Zipfian { .. } => {
                let z = self.zipf.as_mut().expect("zipfian state");
                z.set_items(items);
                scatter(z.sample(rng), items)
            }
            DistKind::Latest { .. } => self
                .latest
                .as_mut()
                .expect("latest state")
                .sample(rng, items),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeta_extends_and_rewinds() {
        let mut t = ZetaTable::new(0.5);
        let z10 = t.zeta(10);
        let z5000 = t.zeta(5_000);
        assert!(z5000 > z10);
        assert!(t.checkpoints() >= 4, "no checkpoints recorded");
        // Rewinding must reproduce the earlier value exactly.
        assert_eq!(t.zeta(10), z10);
        assert_eq!(t.zeta(5_000), z5000);
        // Against a from-scratch sum.
        let direct: f64 = (1..=5_000u64).map(|i| (i as f64).powf(-0.5)).sum();
        assert!((z5000 - direct).abs() < 1e-9);
    }

    #[test]
    fn zipfian_rank_zero_most_popular() {
        let mut z = Zipfian::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u64; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 20_000 / 100, "rank 0 not hot");
    }

    #[test]
    fn zipfian_growth_keeps_determinism() {
        let seq = |grow_at: u64| {
            let mut z = Zipfian::new(50, 0.8);
            let mut rng = StdRng::seed_from_u64(9);
            let mut out = Vec::new();
            for i in 0..200u64 {
                if i == grow_at {
                    z.set_items(80);
                }
                out.push(z.sample(&mut rng));
            }
            out
        };
        assert_eq!(seq(100), seq(100));
        assert_ne!(seq(100), seq(10), "growth point must matter");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipfian::new(500, 0.99);
        let total: f64 = (0..500).map(|r| z.rank_probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let mut z = Zipfian::new(100, 0.7);
        let mut prev = 0.0;
        for r in 0..100 {
            let c = z.rank_cdf(r);
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-9);
        // The sampler still works after CDF evaluations (table restored).
        let mut rng = StdRng::seed_from_u64(2);
        assert!(z.sample(&mut rng) < 100);
    }

    #[test]
    fn latest_prefers_the_newest_key() {
        let mut l = Latest::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut newest = 0u64;
        for _ in 0..5_000 {
            if l.sample(&mut rng, 100) == 99 {
                newest += 1;
            }
        }
        assert!(newest > 500, "newest key drawn only {newest}/5000 times");
    }

    #[test]
    fn keyspace_grows_sequentially() {
        let mut ks = KeySpace::new(10);
        assert_eq!(ks.insert(), 10);
        assert_eq!(ks.insert(), 11);
        assert_eq!(ks.len(), 12);
        assert!(!ks.is_empty());
    }

    #[test]
    fn scatter_is_stable_and_in_range() {
        for rank in 0..1_000u64 {
            let a = scatter(rank, 333);
            assert!(a < 333);
            assert_eq!(a, scatter(rank, 333));
        }
    }

    #[test]
    fn chooser_covers_all_kinds() {
        let mut rng = StdRng::seed_from_u64(4);
        for kind in [
            DistKind::Uniform,
            DistKind::Zipfian { theta: 0.9 },
            DistKind::Latest { theta: 0.9 },
        ] {
            let mut c = KeyChooser::new(kind, 64);
            for _ in 0..100 {
                assert!(c.next(&mut rng, 64) < 64);
            }
            // Growing keyspace mid-stream.
            for _ in 0..100 {
                assert!(c.next(&mut rng, 128) < 128);
            }
        }
    }
}
