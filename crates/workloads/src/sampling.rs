//! Stratified row-size sampling (the Figure 6 / Figure 7 calibration
//! inputs).
//!
//! §VI-a: "we made a stratified sampling of the rows in our dataset so that
//! we could get the same number of random samples for each range of row
//! size" (Figure 6), and "another stratified sampling of 20 groups, each of
//! them with a row size range of 500 elements" (Figure 7).

use kvs_store::{Cell, PartitionKey};
use rand::Rng;

/// Draws `per_stratum` random row sizes from each of `strata` equal-width
/// size bands spanning `[min_size, max_size]`.
pub fn stratified_sizes<R: Rng + ?Sized>(
    min_size: u64,
    max_size: u64,
    strata: usize,
    per_stratum: usize,
    rng: &mut R,
) -> Vec<u64> {
    assert!(max_size > min_size, "empty size range");
    assert!(strata > 0 && per_stratum > 0);
    let width = (max_size - min_size) as f64 / strata as f64;
    let mut out = Vec::with_capacity(strata * per_stratum);
    for s in 0..strata {
        let lo = min_size as f64 + s as f64 * width;
        let hi = (lo + width).min(max_size as f64);
        for _ in 0..per_stratum {
            out.push(rng.gen_range(lo..hi).round().max(1.0) as u64);
        }
    }
    out
}

/// The paper's Figure 7 grouping: `groups` bands of `band_width` elements
/// each ("the first group has keys with sizes one to five hundred, the
/// second from five hundred to one thousand, and so on"), `per_group`
/// random sizes in each. Returns one `Vec<u64>` per group.
pub fn figure7_groups<R: Rng + ?Sized>(
    groups: usize,
    band_width: u64,
    per_group: usize,
    rng: &mut R,
) -> Vec<Vec<u64>> {
    assert!(groups > 0 && band_width > 0 && per_group > 0);
    (0..groups)
        .map(|g| {
            let lo = (g as u64 * band_width).max(1);
            let hi = (g as u64 + 1) * band_width;
            (0..per_group).map(|_| rng.gen_range(lo..=hi)).collect()
        })
        .collect()
}

/// Materializes one partition per requested size (keys namespaced with an
/// `S` prefix so they never collide with the data models).
pub fn partitions_with_sizes(sizes: &[u64], kinds: u8) -> Vec<(PartitionKey, Vec<Cell>)> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let mut key = Vec::with_capacity(9);
            key.push(b'S');
            key.extend_from_slice(&(i as u64).to_be_bytes());
            let cells = (0..size)
                .map(|c| Cell::synthetic(c, (c % kinds.max(1) as u64) as u8))
                .collect();
            (PartitionKey::new(key), cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn stratified_sizes_cover_every_band() {
        let sizes = stratified_sizes(1, 10_000, 20, 5, &mut rng(1));
        assert_eq!(sizes.len(), 100);
        let width = 9_999.0 / 20.0;
        for (i, chunk) in sizes.chunks(5).enumerate() {
            let lo = 1.0 + i as f64 * width - 1.0; // rounding slack
            let hi = 1.0 + (i as f64 + 1.0) * width + 1.0;
            for &s in chunk {
                assert!(
                    (s as f64) >= lo && (s as f64) <= hi,
                    "size {s} outside stratum {i}"
                );
            }
        }
    }

    #[test]
    fn figure7_groups_match_paper_shape() {
        let groups = figure7_groups(20, 500, 8, &mut rng(2));
        assert_eq!(groups.len(), 20);
        for (g, sizes) in groups.iter().enumerate() {
            assert_eq!(sizes.len(), 8);
            let lo = (g as u64 * 500).max(1);
            let hi = (g as u64 + 1) * 500;
            for &s in sizes {
                assert!((lo..=hi).contains(&s), "group {g}: size {s}");
            }
        }
        // Group 19 spans 9 500..10 000 — "up to ten thousand items per row".
        assert!(groups[19].iter().all(|&s| s > 9_000));
    }

    #[test]
    fn partitions_have_requested_sizes() {
        let sizes = vec![3u64, 1, 10];
        let parts = partitions_with_sizes(&sizes, 4);
        assert_eq!(parts.len(), 3);
        for ((_, cells), &size) in parts.iter().zip(&sizes) {
            assert_eq!(cells.len() as u64, size);
        }
        // Distinct keys.
        let keys: std::collections::BTreeSet<_> = parts.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = stratified_sizes(1, 1_000, 5, 4, &mut rng(3));
        let b = stratified_sizes(1, 1_000, 5, 4, &mut rng(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty size range")]
    fn degenerate_range_rejected() {
        let _ = stratified_sizes(10, 10, 2, 2, &mut rng(4));
    }
}
