//! Spatial query workloads over the D8tree.
//!
//! The paper's D8tree case study serves multidimensional range queries;
//! this module generates the query side of that workload: axis-aligned
//! boxes with controllable size and spatial skew (analysis sessions hammer
//! the regions where the particles actually are — the "working set might
//! rapidly change over time" situation of §VIII).

use crate::alya::Particle;
use crate::d8tree::D8Tree;
use kvs_store::PartitionKey;
use rand::Rng;

/// An axis-aligned query box in the unit cube.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialQuery {
    /// Lower corner.
    pub lo: [f64; 3],
    /// Upper corner.
    pub hi: [f64; 3],
}

impl SpatialQuery {
    /// A box of edge length `edge` centred at `center`, clamped to the
    /// unit cube.
    pub fn centered(center: [f64; 3], edge: f64) -> Self {
        let h = (edge / 2.0).clamp(0.0, 0.5);
        let lo = [
            (center[0] - h).max(0.0),
            (center[1] - h).max(0.0),
            (center[2] - h).max(0.0),
        ];
        let hi = [
            (center[0] + h).min(1.0),
            (center[1] + h).min(1.0),
            (center[2] + h).min(1.0),
        ];
        SpatialQuery { lo, hi }
    }

    /// The box's volume.
    pub fn volume(&self) -> f64 {
        (0..3).map(|d| (self.hi[d] - self.lo[d]).max(0.0)).product()
    }

    /// The partition keys a query must read at octree `level`.
    pub fn keys_at_level(&self, tree: &D8Tree, level: u8) -> Vec<PartitionKey> {
        tree.query_region(level, self.lo, self.hi)
            .into_iter()
            .map(|cube| cube.partition_key())
            .collect()
    }
}

/// Generates `count` boxes of edge `edge` with uniformly random centres.
pub fn uniform_queries<R: Rng + ?Sized>(count: usize, edge: f64, rng: &mut R) -> Vec<SpatialQuery> {
    (0..count)
        .map(|_| {
            let center = [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()];
            SpatialQuery::centered(center, edge)
        })
        .collect()
}

/// Generates `count` boxes centred on randomly drawn *particles* — queries
/// that follow the data, the realistic analysis pattern (and the one that
/// produces hot keys).
pub fn data_following_queries<R: Rng + ?Sized>(
    count: usize,
    edge: f64,
    particles: &[Particle],
    rng: &mut R,
) -> Vec<SpatialQuery> {
    assert!(!particles.is_empty(), "need particles to follow");
    (0..count)
        .map(|_| {
            let p = &particles[rng.gen_range(0..particles.len())];
            SpatialQuery::centered(p.pos, edge)
        })
        .collect()
}

/// Workload statistics: how many keys and elements a query batch touches
/// at a level (the paper's granularity trade-off, per query).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryLoad {
    /// Mean keys read per query.
    pub mean_keys: f64,
    /// Max keys read by any query.
    pub max_keys: usize,
    /// Mean elements scanned per query.
    pub mean_elements: f64,
}

/// Measures a query batch against the tree at `level`.
pub fn measure_load(tree: &D8Tree, level: u8, queries: &[SpatialQuery]) -> QueryLoad {
    assert!(!queries.is_empty(), "empty query batch");
    let mut total_keys = 0usize;
    let mut max_keys = 0usize;
    let mut total_elements = 0usize;
    for q in queries {
        let cubes = tree.query_region(level, q.lo, q.hi);
        total_keys += cubes.len();
        max_keys = max_keys.max(cubes.len());
        for cube in cubes {
            total_elements += tree
                .level_cubes(level)
                .find(|(c, _)| *c == cube)
                .map(|(_, ids)| ids.len())
                .unwrap_or(0);
        }
    }
    QueryLoad {
        mean_keys: total_keys as f64 / queries.len() as f64,
        max_keys,
        mean_elements: total_elements as f64 / queries.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alya::{generate, AlyaConfig};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn small_world() -> (Vec<Particle>, D8Tree) {
        let particles = generate(
            &AlyaConfig {
                particles: 5_000,
                tree_depth: 5,
                ..Default::default()
            },
            &mut rng(1),
        );
        let tree = D8Tree::build(&particles, 4);
        (particles, tree)
    }

    #[test]
    fn centered_boxes_clamp_to_unit_cube() {
        let q = SpatialQuery::centered([0.05, 0.5, 0.98], 0.2);
        assert_eq!(q.lo[0], 0.0);
        assert!((q.hi[2] - 1.0).abs() < 1e-12);
        assert!(q.volume() > 0.0 && q.volume() <= 0.2f64.powi(3) + 1e-12);
    }

    #[test]
    fn uniform_queries_have_requested_shape() {
        let qs = uniform_queries(50, 0.25, &mut rng(2));
        assert_eq!(qs.len(), 50);
        for q in &qs {
            for d in 0..3 {
                assert!(q.hi[d] - q.lo[d] <= 0.25 + 1e-12);
                assert!(q.hi[d] >= q.lo[d]);
            }
        }
    }

    #[test]
    fn data_following_queries_hit_more_data() {
        let (particles, tree) = small_world();
        let uniform = uniform_queries(40, 0.15, &mut rng(3));
        let following = data_following_queries(40, 0.15, &particles, &mut rng(4));
        let u = measure_load(&tree, 4, &uniform);
        let f = measure_load(&tree, 4, &following);
        assert!(
            f.mean_elements > u.mean_elements * 2.0,
            "data-following queries should be denser: {} vs {}",
            f.mean_elements,
            u.mean_elements
        );
    }

    #[test]
    fn deeper_levels_need_more_keys_per_query() {
        let (particles, tree) = small_world();
        let qs = data_following_queries(20, 0.3, &particles, &mut rng(5));
        let shallow = measure_load(&tree, 2, &qs);
        let deep = measure_load(&tree, 4, &qs);
        assert!(
            deep.mean_keys > shallow.mean_keys,
            "deep {} vs shallow {}",
            deep.mean_keys,
            shallow.mean_keys
        );
    }

    #[test]
    fn keys_at_level_match_query_region() {
        let (particles, tree) = small_world();
        let q = data_following_queries(1, 0.2, &particles, &mut rng(6))[0];
        let keys = q.keys_at_level(&tree, 3);
        let cubes = tree.query_region(3, q.lo, q.hi);
        assert_eq!(keys.len(), cubes.len());
        assert!(!keys.is_empty(), "a data-centred box must hit cubes");
    }

    #[test]
    #[should_panic(expected = "need particles")]
    fn following_empty_particles_panics() {
        let _ = data_following_queries(1, 0.1, &[], &mut rng(7));
    }
}
