//! The D8tree: a denormalized octree over a key-value store (paper §III,
//! and the authors' ICDCN'16 paper).
//!
//! The core idea: every element is *replicated* into the cube that contains
//! it at **each level** of the octree. A multidimensional query can then be
//! answered at any granularity — few large cubes (few keys, big rows) or
//! many small cubes (many keys, small rows): "we can arbitrarily decide the
//! number of keys we need to access to run a query". The whole paper is
//! about choosing that granularity.

use crate::alya::Particle;
use kvs_store::{Cell, PartitionKey};
use std::collections::BTreeMap;

/// Identifies one cube: an octree level plus a Morton (Z-order) code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CubeId {
    /// Octree level (0 = the root cube spanning the whole domain).
    pub level: u8,
    /// Morton code of the cube within its level (3·level significant bits).
    pub code: u64,
}

impl CubeId {
    /// The store partition key for this cube (`level` byte + big-endian
    /// code, so cubes sort by level then Z-order).
    pub fn partition_key(&self) -> PartitionKey {
        let mut bytes = Vec::with_capacity(9);
        bytes.push(self.level);
        bytes.extend_from_slice(&self.code.to_be_bytes());
        PartitionKey::new(bytes)
    }

    /// The cube's axis-aligned bounds in the unit cube.
    pub fn bounds(&self) -> ([f64; 3], [f64; 3]) {
        let cells = 1u64 << self.level;
        let size = 1.0 / cells as f64;
        let (x, y, z) = demorton(self.code, self.level);
        let lo = [x as f64 * size, y as f64 * size, z as f64 * size];
        let hi = [lo[0] + size, lo[1] + size, lo[2] + size];
        (lo, hi)
    }
}

/// The built index: per level, cube → element ids.
#[derive(Debug)]
pub struct D8Tree {
    max_level: u8,
    levels: Vec<BTreeMap<u64, Vec<u64>>>,
    elements: usize,
}

impl D8Tree {
    /// Indexes `particles` into all levels `0..=max_level`.
    ///
    /// # Panics
    /// If `max_level > 20` (a 2⁶⁰-cube level is a configuration bug).
    pub fn build(particles: &[Particle], max_level: u8) -> Self {
        assert!(max_level <= 20, "max_level too deep");
        let mut levels: Vec<BTreeMap<u64, Vec<u64>>> =
            (0..=max_level).map(|_| BTreeMap::new()).collect();
        for p in particles {
            for level in 0..=max_level {
                let code = morton_at(p.pos, level);
                levels[level as usize].entry(code).or_default().push(p.id);
            }
        }
        D8Tree {
            max_level,
            levels,
            elements: particles.len(),
        }
    }

    /// The deepest indexed level.
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// Total indexed elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Number of distinct (non-empty) cubes at `level`.
    pub fn cubes_at(&self, level: u8) -> usize {
        self.levels[level as usize].len()
    }

    /// Iterates `(cube, element ids)` at a level.
    pub fn level_cubes(&self, level: u8) -> impl Iterator<Item = (CubeId, &[u64])> + '_ {
        self.levels[level as usize]
            .iter()
            .map(move |(&code, ids)| (CubeId { level, code }, ids.as_slice()))
    }

    /// The cubes whose population falls in `[min, max]`, searched across
    /// all levels — the paper's "pre-query phase. We selected all the cubes
    /// with sizes that matched the three workloads".
    pub fn cubes_with_size(&self, min: usize, max: usize) -> Vec<(CubeId, usize)> {
        let mut out = Vec::new();
        for level in 0..=self.max_level {
            for (cube, ids) in self.level_cubes(level) {
                if (min..=max).contains(&ids.len()) {
                    out.push((cube, ids.len()));
                }
            }
        }
        out
    }

    /// Per-level population histogram: `(level, cubes, min, mean, max)`.
    pub fn level_stats(&self) -> Vec<(u8, usize, usize, f64, usize)> {
        (0..=self.max_level)
            .map(|level| {
                let sizes: Vec<usize> = self.level_cubes(level).map(|(_, ids)| ids.len()).collect();
                let cubes = sizes.len();
                let min = sizes.iter().copied().min().unwrap_or(0);
                let max = sizes.iter().copied().max().unwrap_or(0);
                let mean = if cubes == 0 {
                    0.0
                } else {
                    sizes.iter().sum::<usize>() as f64 / cubes as f64
                };
                (level, cubes, min, mean, max)
            })
            .collect()
    }

    /// Cube ids at `level` intersecting the axis-aligned box `[lo, hi]` —
    /// the read set of a spatial range query at that granularity.
    pub fn query_region(&self, level: u8, lo: [f64; 3], hi: [f64; 3]) -> Vec<CubeId> {
        self.level_cubes(level)
            .filter(|(cube, _)| {
                let (clo, chi) = cube.bounds();
                (0..3).all(|d| chi[d] > lo[d] && clo[d] < hi[d])
            })
            .map(|(cube, _)| cube)
            .collect()
    }

    /// Materializes the cubes at `level` as store partitions: one partition
    /// per cube, one cell per element (clustering key = element id).
    pub fn level_partitions(
        &self,
        level: u8,
        particles: &[Particle],
    ) -> Vec<(PartitionKey, Vec<Cell>)> {
        let by_id: BTreeMap<u64, &Particle> = particles.iter().map(|p| (p.id, p)).collect();
        self.level_cubes(level)
            .map(|(cube, ids)| {
                let cells = ids
                    .iter()
                    .map(|id| {
                        let p = by_id.get(id).expect("indexed element exists");
                        particle_cell(p)
                    })
                    .collect();
                (cube.partition_key(), cells)
            })
            .collect()
    }
}

/// Encodes a particle as a store cell: position as 3 little-endian f64 plus
/// filler, keeping the workspace's standard 46-byte encoded size.
pub fn particle_cell(p: &Particle) -> Cell {
    let mut payload = Vec::with_capacity(kvs_store::schema::DEFAULT_PAYLOAD_BYTES);
    for c in p.pos {
        payload.extend_from_slice(&c.to_le_bytes());
    }
    payload.resize(kvs_store::schema::DEFAULT_PAYLOAD_BYTES, 0xAB);
    Cell::new(p.id, p.kind, payload)
}

/// Morton code of a position at a level (interleaves the top `level` bits
/// of each coordinate).
pub fn morton_at(pos: [f64; 3], level: u8) -> u64 {
    if level == 0 {
        return 0;
    }
    let cells = 1u64 << level;
    let mut code = 0u64;
    let coords: Vec<u64> = pos
        .iter()
        .map(|&c| ((c.clamp(0.0, 1.0 - 1e-12) * cells as f64) as u64).min(cells - 1))
        .collect();
    for bit in 0..level as u64 {
        for (d, &c) in coords.iter().enumerate() {
            code |= ((c >> bit) & 1) << (bit * 3 + d as u64);
        }
    }
    code
}

/// Inverse of [`morton_at`]: the integer cell coordinates of a code.
fn demorton(code: u64, level: u8) -> (u64, u64, u64) {
    let mut x = 0u64;
    let mut y = 0u64;
    let mut z = 0u64;
    for bit in 0..level as u64 {
        x |= ((code >> (bit * 3)) & 1) << bit;
        y |= ((code >> (bit * 3 + 1)) & 1) << bit;
        z |= ((code >> (bit * 3 + 2)) & 1) << bit;
    }
    (x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alya::{generate, AlyaConfig};
    use rand::SeedableRng;

    fn particles(n: usize) -> Vec<Particle> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        generate(
            &AlyaConfig {
                particles: n,
                tree_depth: 6,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn every_level_indexes_every_element() {
        let ps = particles(5_000);
        let tree = D8Tree::build(&ps, 5);
        for level in 0..=5u8 {
            let total: usize = tree.level_cubes(level).map(|(_, ids)| ids.len()).sum();
            assert_eq!(total, 5_000, "level {level} lost elements");
        }
        assert_eq!(tree.elements(), 5_000);
    }

    #[test]
    fn denormalization_grows_key_count_with_level() {
        let ps = particles(20_000);
        let tree = D8Tree::build(&ps, 6);
        let mut prev = 0;
        for level in 0..=6u8 {
            let cubes = tree.cubes_at(level);
            assert!(cubes >= prev, "level {level}: {cubes} < {prev}");
            prev = cubes;
        }
        assert_eq!(tree.cubes_at(0), 1, "root level is one cube");
        assert!(tree.cubes_at(6) > 100);
    }

    #[test]
    fn morton_roundtrips() {
        for level in 1..=8u8 {
            let max_code = 1u64 << (3 * level as u64);
            for code in [0u64, 1, 5, 63, max_code - 1]
                .into_iter()
                .filter(|&c| c < max_code)
            {
                let (x, y, z) = demorton(code, level);
                let cells = 1u64 << level;
                assert!(x < cells && y < cells && z < cells);
                // Rebuild via a position at the cell centre.
                let size = 1.0 / cells as f64;
                let pos = [
                    (x as f64 + 0.5) * size,
                    (y as f64 + 0.5) * size,
                    (z as f64 + 0.5) * size,
                ];
                assert_eq!(morton_at(pos, level), code, "level {level} code {code}");
            }
        }
    }

    #[test]
    fn bounds_contain_their_elements() {
        let ps = particles(2_000);
        let tree = D8Tree::build(&ps, 4);
        let by_id: BTreeMap<u64, &Particle> = ps.iter().map(|p| (p.id, p)).collect();
        for (cube, ids) in tree.level_cubes(4) {
            let (lo, hi) = cube.bounds();
            for id in ids {
                let p = by_id[id];
                for d in 0..3 {
                    assert!(
                        p.pos[d] >= lo[d] - 1e-9 && p.pos[d] <= hi[d] + 1e-9,
                        "element {id} outside its cube"
                    );
                }
            }
        }
    }

    #[test]
    fn cube_size_selection_matches_filter() {
        let ps = particles(30_000);
        let tree = D8Tree::build(&ps, 6);
        let picked = tree.cubes_with_size(50, 200);
        assert!(!picked.is_empty());
        for (_, size) in &picked {
            assert!((50..=200).contains(size));
        }
    }

    #[test]
    fn clustered_data_has_skewed_cube_sizes() {
        let ps = particles(30_000);
        let tree = D8Tree::build(&ps, 5);
        let stats = tree.level_stats();
        let (_, cubes, min, mean, max) = stats[5];
        assert!(cubes > 10);
        // Bronchial clustering ⇒ max ≫ mean ≫ min.
        assert!(
            (max as f64) > mean * 4.0,
            "max {max} vs mean {mean} — no skew"
        );
        assert!((min as f64) < mean, "min {min} vs mean {mean}");
    }

    #[test]
    fn query_region_finds_intersecting_cubes() {
        let ps = particles(10_000);
        let tree = D8Tree::build(&ps, 4);
        let all = tree.query_region(4, [0.0; 3], [1.0; 3]);
        assert_eq!(all.len(), tree.cubes_at(4));
        let some = tree.query_region(4, [0.4, 0.4, 0.4], [0.6, 0.6, 0.6]);
        assert!(some.len() < all.len());
        let none = tree.query_region(4, [2.0; 3], [3.0; 3]);
        assert!(none.is_empty());
    }

    #[test]
    fn partitions_materialize_with_standard_cells() {
        let ps = particles(3_000);
        let tree = D8Tree::build(&ps, 3);
        let parts = tree.level_partitions(3, &ps);
        assert_eq!(parts.len(), tree.cubes_at(3));
        let total: usize = parts.iter().map(|(_, cells)| cells.len()).sum();
        assert_eq!(total, 3_000);
        for (_, cells) in &parts {
            for cell in cells {
                assert_eq!(cell.encoded_len(), 46, "non-standard cell size");
            }
        }
    }

    #[test]
    fn partition_keys_are_unique_across_levels() {
        let ps = particles(1_000);
        let tree = D8Tree::build(&ps, 3);
        let mut keys = std::collections::BTreeSet::new();
        for level in 0..=3u8 {
            for (cube, _) in tree.level_cubes(level) {
                assert!(keys.insert(cube.partition_key()), "duplicate key {cube:?}");
            }
        }
    }
}
