//! Property tests for the surrogate-model DHT scenario.
//!
//! Two properties the satellite task pins down, plus the exactness law
//! that makes the scenario analyzable at all: a step misses iff its grid
//! key has never been seen before, so the hit/miss sequence is a pure
//! function of the walk.

use kvs_store::{CostModel, Table};
use kvs_workloads::surrogate::{
    prefill, probe_hits, run_surrogate, walk_keys, GridSpec, SurrogateConfig,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A small configuration so each proptest case stays cheap.
fn small_cfg() -> SurrogateConfig {
    SurrogateConfig {
        grid: GridSpec {
            dims: 2,
            cells_per_dim: 16,
        },
        steps: 512,
        walk_step: 0.07,
        jump_probability: 0.03,
        compute_ms: 50.0,
        coeff_cells: 4,
        window: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hit-rate is non-decreasing in the inserted-key count: against a
    /// fixed query list, a table pre-filled with MORE keys hits at every
    /// position the smaller table hit (the prefix sets are nested), so
    /// the rate can only climb.
    #[test]
    fn hit_rate_monotone_in_inserted_keys(seed in any::<u64>(), lo in 0u64..128,
                                          extra in 1u64..128) {
        let cfg = small_cfg();
        let queries = walk_keys(&cfg, seed);
        let hi = lo + extra;

        let mut small = Table::with_defaults();
        prefill(&mut small, &cfg, lo);
        let small_hits = probe_hits(&mut small, &queries);

        let mut large = Table::with_defaults();
        prefill(&mut large, &cfg, hi);
        let large_hits = probe_hits(&mut large, &queries);

        for (i, (&s, &l)) in small_hits.iter().zip(&large_hits).enumerate() {
            prop_assert!(!s || l, "query {i} hit with {lo} keys but missed with {hi}");
        }
        let rate = |hits: &[bool]| hits.iter().filter(|h| **h).count() as f64 / hits.len() as f64;
        prop_assert!(rate(&large_hits) >= rate(&small_hits));
    }

    /// A replayed seed reproduces the exact hit/miss sequence (and the
    /// per-step service charges with a deterministic cost model).
    #[test]
    fn replayed_seed_reproduces_hits(seed in any::<u64>()) {
        let cfg = small_cfg();
        let cost = CostModel::paper_cassandra().deterministic();
        let a = run_surrogate(&cfg, &mut Table::with_defaults(), &cost, seed);
        let b = run_surrogate(&cfg, &mut Table::with_defaults(), &cost, seed);
        prop_assert_eq!(&a.steps, &b.steps);
        prop_assert_eq!(a.hits, b.hits);
        prop_assert_eq!(&a.hit_curve, &b.hit_curve);
    }

    /// Exactness: starting from an empty table, step i hits iff its key
    /// appeared at an earlier step — the scenario is a pure function of
    /// the walk, which is what lets `walk_keys` predict a run offline.
    #[test]
    fn miss_iff_first_occurrence(seed in any::<u64>()) {
        let cfg = small_cfg();
        let cost = CostModel::paper_cassandra().deterministic();
        let out = run_surrogate(&cfg, &mut Table::with_defaults(), &cost, seed);
        let keys = walk_keys(&cfg, seed);
        prop_assert_eq!(out.steps.len(), keys.len());
        let mut seen = BTreeSet::new();
        for (step, &key) in out.steps.iter().zip(&keys) {
            prop_assert_eq!(step.key, key);
            prop_assert_eq!(step.hit, seen.contains(&key));
            seen.insert(key);
        }
        prop_assert_eq!(out.unique_keys, seen.len() as u64);
    }
}
