//! Statistical acceptance tests for the key-distribution generators.
//!
//! Every test draws from an explicitly seeded `StdRng` (the crate is a
//! KVS-L001 deterministic zone — no ambient RNG), so each one checks a
//! *fixed* sample against its closed-form expectation: chi-square and
//! KS-style bounds for uniform, head-frequency and CDF-distance bounds
//! for zipfian/latest (Gray et al.'s approximate inverse CDF is close
//! but not exact, so those tolerances are a little looser than the
//! textbook critical values), plus the theta sweep showing zipfian
//! collapses to uniform as theta → 0.

use kvs_workloads::keydist::{scatter, DistKind, KeyChooser, Latest, Zipfian};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Chi-square statistic of observed counts vs expected probabilities.
fn chi_square(observed: &[u64], expected_p: &[f64]) -> f64 {
    let n: u64 = observed.iter().sum();
    observed
        .iter()
        .zip(expected_p)
        .map(|(&o, &p)| {
            let e = p * n as f64;
            (o as f64 - e).powi(2) / e
        })
        .sum()
}

/// A generous chi-square critical value (≈ p < 1e-4 for the given
/// degrees of freedom) — the seeds are fixed, so this guards against
/// real generator bugs, not sampling noise.
fn chi_square_bound(df: usize) -> f64 {
    df as f64 + 4.0 * (2.0 * df as f64).sqrt() + 4.0
}

/// Empirical rank counts from `samples` draws of a closure.
fn counts(items: u64, samples: u64, mut draw: impl FnMut() -> u64) -> Vec<u64> {
    let mut c = vec![0u64; items as usize];
    for _ in 0..samples {
        c[draw() as usize] += 1;
    }
    c
}

/// Max |empirical CDF − model CDF| over ranks (a KS-style distance; the
/// draws are discrete so the classic KS critical values are conservative
/// upper bounds).
fn cdf_distance(observed: &[u64], mut model_cdf: impl FnMut(u64) -> f64) -> f64 {
    let n: u64 = observed.iter().sum();
    let mut acc = 0u64;
    let mut worst = 0.0f64;
    for (rank, &c) in observed.iter().enumerate() {
        acc += c;
        let emp = acc as f64 / n as f64;
        worst = worst.max((emp - model_cdf(rank as u64)).abs());
    }
    worst
}

#[test]
fn uniform_passes_chi_square_and_ks() {
    const ITEMS: u64 = 64;
    const SAMPLES: u64 = 200_000;
    let mut rng = StdRng::seed_from_u64(0x51A7);
    let mut chooser = KeyChooser::new(DistKind::Uniform, ITEMS);
    let c = counts(ITEMS, SAMPLES, || chooser.next(&mut rng, ITEMS));
    let p = vec![1.0 / ITEMS as f64; ITEMS as usize];

    let chi2 = chi_square(&c, &p);
    assert!(
        chi2 < chi_square_bound(ITEMS as usize - 1),
        "uniform chi-square {chi2:.1} exceeds {:.1}",
        chi_square_bound(ITEMS as usize - 1)
    );
    // KS bound at alpha ≈ 0.001: 1.95 / sqrt(n).
    let d = cdf_distance(&c, |r| (r + 1) as f64 / ITEMS as f64);
    let bound = 1.95 / (SAMPLES as f64).sqrt();
    assert!(d < bound, "uniform KS distance {d:.5} exceeds {bound:.5}");
}

#[test]
fn zipfian_theta_zero_is_exactly_uniform() {
    // At theta = 0 Gray's approximation degenerates to rank = n·u, so
    // the textbook chi-square bound applies with no approximation slack.
    const ITEMS: u64 = 64;
    const SAMPLES: u64 = 200_000;
    let mut rng = StdRng::seed_from_u64(0x21F0);
    let mut z = Zipfian::new(ITEMS, 0.0);
    let c = counts(ITEMS, SAMPLES, || z.sample(&mut rng));
    let p = vec![1.0 / ITEMS as f64; ITEMS as usize];
    let chi2 = chi_square(&c, &p);
    assert!(
        chi2 < chi_square_bound(ITEMS as usize - 1),
        "theta=0 chi-square {chi2:.1}"
    );
}

#[test]
fn zipfian_head_frequencies_track_the_closed_form() {
    const ITEMS: u64 = 1_000;
    const SAMPLES: u64 = 300_000;
    let mut rng = StdRng::seed_from_u64(0x21F1);
    let mut z = Zipfian::new(ITEMS, 0.99);
    let c = counts(ITEMS, SAMPLES, || z.sample(&mut rng));

    // Ranks 0 and 1 are special-cased exactly in Gray's sampler, so
    // they must match the closed form tightly; ranks ≥ 2 come from the
    // continuous inverse-CDF approximation, whose known bias peaks at
    // rank 2 (≈ +18%) and decays to under 1% by rank ~13 — bound those
    // at 25% so a real pmf bug still fails while the documented
    // approximation error passes.
    for rank in 0..20u64 {
        let expect = z.rank_probability(rank) * SAMPLES as f64;
        let got = c[rank as usize] as f64;
        let rel = (got - expect).abs() / expect;
        let tolerance = if rank < 2 { 0.02 } else { 0.25 };
        assert!(
            rel < tolerance,
            "rank {rank}: observed {got:.0} vs expected {expect:.0} ({:.1}% off)",
            rel * 100.0
        );
    }
    // Whole-distribution shape: empirical CDF within 2.5% of the model
    // everywhere (measured worst case of the approximation: ≈ 1.7%,
    // mid-head).
    let mut model = Zipfian::new(ITEMS, 0.99);
    let d = cdf_distance(&c, |r| model.rank_cdf(r));
    assert!(d < 0.025, "zipfian CDF distance {d:.4}");
    // And the head really is the head.
    assert!(c[0] > c[10], "rank 0 not hotter than rank 10");
    assert!(c[10] > c[500], "rank 10 not hotter than rank 500");
}

#[test]
fn latest_mirrors_zipf_over_recency() {
    const ITEMS: u64 = 500;
    const SAMPLES: u64 = 200_000;
    let mut rng = StdRng::seed_from_u64(0x1A7E);
    let mut latest = Latest::new(ITEMS, 0.99);
    let c = counts(ITEMS, SAMPLES, || latest.sample(&mut rng, ITEMS));

    // key = items-1-rank, so the newest key gets rank 0's probability.
    // Tolerances per rank as in the zipfian head test: the underlying
    // sampler is exact at ranks 0–1, approximate beyond.
    let z = Zipfian::new(ITEMS, 0.99);
    for rank in 0..10u64 {
        let key = (ITEMS - 1 - rank) as usize;
        let expect = z.rank_probability(rank) * SAMPLES as f64;
        let got = c[key] as f64;
        let rel = (got - expect).abs() / expect;
        let tolerance = if rank < 2 { 0.02 } else { 0.25 };
        assert!(
            rel < tolerance,
            "recency rank {rank}: observed {got:.0} vs expected {expect:.0}"
        );
    }
    // The newest key dominates the oldest by orders of magnitude.
    assert!(c[ITEMS as usize - 1] > 50 * c[0].max(1));
}

#[test]
fn identical_seeds_give_identical_sequences() {
    for kind in [
        DistKind::Uniform,
        DistKind::Zipfian { theta: 0.99 },
        DistKind::Latest { theta: 0.99 },
    ] {
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut chooser = KeyChooser::new(kind, 128);
            // Grow the keyspace mid-stream, as the insert mixes do.
            (0..2_000)
                .map(|i| chooser.next(&mut rng, 128 + i / 10))
                .collect()
        };
        assert_eq!(draw(42), draw(42), "{kind:?} not seed-deterministic");
        assert_ne!(draw(42), draw(43), "{kind:?} ignores its seed");
    }
}

#[test]
fn theta_sweep_approaches_uniform() {
    const ITEMS: u64 = 64;
    // Closed-form total-variation distance from uniform, per theta.
    let tv = |theta: f64| -> f64 {
        let z = Zipfian::new(ITEMS, theta);
        let u = 1.0 / ITEMS as f64;
        0.5 * (0..ITEMS)
            .map(|r| (z.rank_probability(r) - u).abs())
            .sum::<f64>()
    };
    let thetas = [0.8, 0.5, 0.2, 0.05, 0.01];
    let dists: Vec<f64> = thetas.iter().map(|&t| tv(t)).collect();
    for w in dists.windows(2) {
        assert!(
            w[1] < w[0],
            "TV distance not decreasing as theta falls: {dists:?}"
        );
    }
    assert!(
        dists[thetas.len() - 1] < 0.01,
        "theta=0.01 still {:.4} from uniform",
        dists[thetas.len() - 1]
    );
    // Skew direction: hotter head for larger theta.
    let p0 = |theta: f64| Zipfian::new(ITEMS, theta).rank_probability(0);
    assert!(p0(0.99) > p0(0.5) && p0(0.5) > p0(0.01));
}

#[test]
fn scatter_spreads_the_head_without_losing_mass() {
    const ITEMS: u64 = 1_000;
    // The ten hottest ranks map to ten distinct ids, not a dense prefix.
    let ids: Vec<u64> = (0..10).map(|r| scatter(r, ITEMS)).collect();
    let mut dedup = ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "head ranks collide: {ids:?}");
    assert!(
        ids.iter().any(|&k| k > ITEMS / 2),
        "head stuck low: {ids:?}"
    );
    // Stability: the map is pure.
    assert_eq!(ids, (0..10).map(|r| scatter(r, ITEMS)).collect::<Vec<_>>());
    // A scattered uniform stays uniform-ish: drawing through the scatter
    // of a zipfian keeps total mass (counts sum) by construction, so
    // just check bounds hold for a spread of ranks.
    for r in (0..ITEMS).step_by(97) {
        assert!(scatter(r, ITEMS) < ITEMS);
    }
}
