//! Property tests for the simulation substrate.

use kvs_simcore::stats::percentile_sorted;
use kvs_simcore::{Dist, Engine, Histogram, OnlineStats, Resource, RngHub, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn stats_merge_is_concat(a in proptest::collection::vec(-1e6f64..1e6, 0..50),
                             b in proptest::collection::vec(-1e6f64..1e6, 0..50)) {
        let mut left = OnlineStats::from_slice(&a);
        left.merge(&OnlineStats::from_slice(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let whole = OnlineStats::from_slice(&all);
        prop_assert_eq!(left.count(), whole.count());
        if !all.is_empty() {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() / (whole.variance() + 1.0) < 1e-6);
        }
    }

    /// Percentiles stay inside [min, max] and are monotone in q.
    #[test]
    fn percentiles_bounded_and_monotone(mut xs in proptest::collection::vec(-1e3f64..1e3, 1..60),
                                        q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = percentile_sorted(&xs, lo);
        let p_hi = percentile_sorted(&xs, hi);
        prop_assert!(p_lo <= p_hi + 1e-12);
        prop_assert!(p_lo >= xs[0] - 1e-12);
        prop_assert!(p_hi <= xs[xs.len() - 1] + 1e-12);
    }

    /// Every distribution sample is non-negative, whatever the parameters.
    #[test]
    fn dist_samples_nonnegative(mean in -10.0f64..1e4, cv in -1.0f64..3.0, seed in any::<u64>()) {
        let mut rng = RngHub::new(seed).stream("prop");
        let d = Dist::lognormal(mean, cv);
        for _ in 0..16 {
            prop_assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    /// Histograms never lose a record: total == number of records.
    #[test]
    fn histogram_conserves(values in proptest::collection::vec(-10.0f64..1e5, 1..100)) {
        let mut h = Histogram::linear(0.0, 100.0, 50);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let bucketed: u64 = h.nonempty_buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(bucketed + h.underflow(), h.total());
    }

    /// A single-server resource completes jobs in FIFO order and the
    /// makespan equals the sum of service times.
    #[test]
    fn resource_fifo_and_work_conserving(services in proptest::collection::vec(1u64..1000, 1..40)) {
        let mut eng = Engine::new();
        let res = Resource::new("prop", 1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, &svc) in services.iter().enumerate() {
            let order = order.clone();
            res.submit(&mut eng, SimDuration::from_micros(svc), move |_, _| {
                order.borrow_mut().push(i);
            });
        }
        eng.run();
        let completed = order.borrow();
        prop_assert_eq!(completed.len(), services.len());
        prop_assert!(completed.windows(2).all(|w| w[0] < w[1]), "out of order: {:?}", completed);
        let total_us: u64 = services.iter().sum();
        prop_assert_eq!(eng.now(), SimTime::ZERO + SimDuration::from_micros(total_us));
    }

    /// With c servers the makespan is bounded by the greedy-scheduling
    /// bounds: max(total/c, longest job) ≤ makespan ≤ total/c + longest.
    #[test]
    fn resource_respects_greedy_bounds(services in proptest::collection::vec(1u64..1000, 1..40),
                                       cap in 1usize..8) {
        let mut eng = Engine::new();
        let res = Resource::new("prop", cap);
        for &svc in &services {
            res.submit(&mut eng, SimDuration::from_micros(svc), |_, _| {});
        }
        eng.run();
        let total: u64 = services.iter().sum();
        let longest = *services.iter().max().unwrap();
        let makespan_us = eng.now().as_micros_f64();
        let lower = (total as f64 / cap as f64).max(longest as f64);
        let upper = total as f64 / cap as f64 + longest as f64;
        prop_assert!(makespan_us >= lower - 1e-6, "{makespan_us} < {lower}");
        prop_assert!(makespan_us <= upper + 1e-6, "{makespan_us} > {upper}");
    }

    /// The engine fires arbitrary event sets in non-decreasing time order.
    #[test]
    fn engine_fires_in_order(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut eng = Engine::new();
        let fired = Rc::new(RefCell::new(Vec::new()));
        for &t in &times {
            let fired = fired.clone();
            eng.schedule_at(SimTime::from_nanos(t), move |e| {
                fired.borrow_mut().push(e.now().as_nanos());
            });
        }
        eng.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), times.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
        let mut expected = times.clone();
        expected.sort_unstable();
        prop_assert_eq!(&*fired, &expected);
    }
}
