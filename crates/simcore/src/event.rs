//! Event-heap plumbing: scheduled callbacks ordered by (time, sequence).
//!
//! Events firing at the same instant run in scheduling order (FIFO), which
//! keeps simulations deterministic regardless of heap internals.

use crate::engine::Engine;
use crate::time::SimTime;
use std::cmp::Ordering;

/// Opaque handle identifying a scheduled event; can be used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// The callback type fired by the engine. It receives the engine so it can
/// schedule follow-up events.
pub type Callback = Box<dyn FnOnce(&mut Engine)>;

pub(crate) struct ScheduledEvent {
    pub(crate) at: SimTime,
    pub(crate) id: EventId,
    pub(crate) callback: Option<Callback>,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event;
    /// ties break on the sequence id, giving FIFO order at equal instants.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, id: u64) -> ScheduledEvent {
        ScheduledEvent {
            at: SimTime::from_nanos(at_ns),
            id: EventId(id),
            callback: None,
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(ev(30, 0));
        heap.push(ev(10, 1));
        heap.push(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.at.as_nanos())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo_by_id() {
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(ev(10, 5));
        heap.push(ev(10, 1));
        heap.push(ev(10, 3));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.id.0)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}
