//! Online statistics: Welford moments, percentile summaries and log-scale
//! histograms.
//!
//! These are the primitives the methodology layer (`kvs-stages`,
//! `kvs-model`) uses to condense thousands of per-request timings into the
//! few numbers the paper plots.

/// Numerically stable running moments (Welford's algorithm) plus min/max.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/µ (0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// A five-number-plus summary computed from a full sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample.
    pub fn from_samples(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let stats = OnlineStats::from_slice(values);
        Some(Summary {
            count: values.len(),
            mean: stats.mean(),
            std_dev: stats.sample_variance().sqrt(),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice, `q ∈ [0,1]`.
///
/// # Panics
/// If `sorted` is empty.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A histogram with logarithmically spaced buckets, suitable for latency
/// distributions spanning several orders of magnitude (Figure 3 of the paper
/// uses a plain count histogram, which is the `bucket_width = 1` case of
/// [`Histogram::linear`]).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket lower edges, ascending. `counts[i]` counts values in
    /// `[edges[i], edges[i+1])`; the last bucket is open-ended.
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Log-spaced buckets from `min` decades up, `per_decade` buckets per
    /// factor of 10, covering `decades` decades.
    pub fn log(min: f64, per_decade: usize, decades: usize) -> Self {
        assert!(min > 0.0 && per_decade > 0 && decades > 0);
        let n = per_decade * decades;
        let edges: Vec<f64> = (0..=n)
            .map(|i| min * 10f64.powf(i as f64 / per_decade as f64))
            .collect();
        let buckets = edges.len();
        Histogram {
            edges,
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
        }
    }

    /// Linear buckets `[lo + i·width, lo + (i+1)·width)`.
    pub fn linear(lo: f64, width: f64, buckets: usize) -> Self {
        assert!(width > 0.0 && buckets > 0);
        let edges: Vec<f64> = (0..=buckets).map(|i| lo + i as f64 * width).collect();
        let n = edges.len();
        Histogram {
            edges,
            counts: vec![0; n],
            underflow: 0,
            total: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if v < self.edges[0] {
            self.underflow += 1;
            return;
        }
        // Binary search for the bucket whose lower edge is ≤ v.
        let idx = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&v).expect("NaN edge"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let last = self.counts.len() - 1;
        self.counts[idx.min(last)] += 1;
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Values below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Iterates `(lower_edge, count)` over non-empty buckets.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.edges
            .iter()
            .zip(self.counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&e, &c)| (e, c))
    }

    /// The bucket lower edge holding the `q`-quantile, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return Some(self.edges[i]);
            }
        }
        Some(*self.edges.last().expect("histogram has edges"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = OnlineStats::from_slice(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut left = OnlineStats::from_slice(&a);
        let right = OnlineStats::from_slice(&b);
        left.merge(&right);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let whole = OnlineStats::from_slice(&all);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::from_slice(&[1.0, 2.0]);
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 40.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 25.0);
        assert!((percentile_sorted(&sorted, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn summary_end_to_end() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_samples(&values).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.p50 - 50.5).abs() < 1e-12);
        assert!((s.p90 - 90.1).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn linear_histogram_buckets() {
        let mut h = Histogram::linear(0.0, 1.0, 10);
        for v in [0.5, 1.5, 1.7, 9.5, 42.0, -1.0] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.underflow(), 1);
        let buckets: Vec<(f64, u64)> = h.nonempty_buckets().collect();
        assert!(buckets.contains(&(0.0, 1)));
        assert!(buckets.contains(&(1.0, 2)));
        assert!(buckets.contains(&(9.0, 1)));
        // 42.0 lands in the open-ended last bucket.
        assert!(buckets.iter().any(|&(e, _)| e == 10.0));
    }

    #[test]
    fn log_histogram_spans_decades() {
        let mut h = Histogram::log(0.001, 4, 6);
        for v in [0.001, 0.01, 0.1, 1.0, 10.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.nonempty_buckets().count(), 6);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::linear(0.0, 1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&q50), "{q50}");
        assert_eq!(Histogram::linear(0.0, 1.0, 2).quantile(0.5), None);
    }
}
