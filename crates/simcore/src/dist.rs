//! Service-time distributions used by the cluster model.
//!
//! The paper's database model (§VI-a) is a *mean* latency; real measurements
//! around it show heavy right tails ("a miss in a cache or a false positive
//! in a bloom filter can arbitrarily make a request orders of magnitude
//! slower than average"). [`Dist`] captures the small family of shapes we
//! need, sampled as plain `f64`s (the caller decides the unit).

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};

/// A sampleable non-negative distribution over `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// The distribution mean (`1/λ`).
        mean: f64,
    },
    /// Log-normal parameterized by its *mean* and *coefficient of variation*
    /// (σ/µ) — the natural way to say "this latency has 20 % relative
    /// spread with a heavy right tail".
    LogNormalMeanCv {
        /// Arithmetic mean of the samples.
        mean: f64,
        /// Coefficient of variation σ/µ.
        cv: f64,
    },
    /// Mixture: with probability `p_tail` sample `tail`, otherwise `body`.
    /// Models cache misses / bloom-filter false positives.
    Mixture {
        /// The common-case distribution.
        body: Box<Dist>,
        /// The slow-path distribution.
        tail: Box<Dist>,
        /// Probability of sampling the tail.
        p_tail: f64,
    },
    /// Deterministic shift added to another distribution.
    Shifted {
        /// The underlying distribution.
        base: Box<Dist>,
        /// The constant added to every sample.
        offset: f64,
    },
}

impl Dist {
    /// Log-normal via mean/CV; `cv == 0` degenerates to a constant.
    pub fn lognormal(mean: f64, cv: f64) -> Dist {
        if cv <= 0.0 {
            Dist::Constant(mean)
        } else {
            Dist::LogNormalMeanCv { mean, cv }
        }
    }

    /// A cache-miss style mixture with a log-normal body.
    pub fn with_tail(self, tail: Dist, p_tail: f64) -> Dist {
        Dist::Mixture {
            body: Box::new(self),
            tail: Box::new(tail),
            p_tail: p_tail.clamp(0.0, 1.0),
        }
    }

    /// The analytic mean of the distribution (used by the model layer, which
    /// reasons about expectations).
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { mean } => *mean,
            Dist::LogNormalMeanCv { mean, .. } => *mean,
            Dist::Mixture { body, tail, p_tail } => {
                (1.0 - p_tail) * body.mean() + p_tail * tail.mean()
            }
            Dist::Shifted { base, offset } => base.mean() + offset,
        }
    }

    /// Draws one sample; clamped to be non-negative.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => {
                if hi > lo {
                    rng.gen_range(*lo..*hi)
                } else {
                    *lo
                }
            }
            Dist::Exponential { mean } => {
                if *mean <= 0.0 {
                    0.0
                } else {
                    // Exp is parameterized by rate λ = 1/mean.
                    Exp::new(1.0 / mean).expect("positive rate").sample(rng)
                }
            }
            Dist::LogNormalMeanCv { mean, cv } => sample_lognormal(*mean, *cv, rng),
            Dist::Mixture { body, tail, p_tail } => {
                if rng.gen_bool(*p_tail) {
                    tail.sample(rng)
                } else {
                    body.sample(rng)
                }
            }
            Dist::Shifted { base, offset } => base.sample(rng) + offset,
        };
        v.max(0.0)
    }
}

/// Samples a log-normal given the target arithmetic mean `m` and coefficient
/// of variation `cv`, by solving for the underlying normal's (µ, σ):
/// σ² = ln(1 + cv²), µ = ln m − σ²/2.
fn sample_lognormal<R: Rng + ?Sized>(m: f64, cv: f64, rng: &mut R) -> f64 {
    if m <= 0.0 {
        return 0.0;
    }
    if cv <= 0.0 {
        return m;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = m.ln() - sigma2 / 2.0;
    LogNormal::new(mu, sigma2.sqrt())
        .expect("finite lognormal params")
        .sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn empirical_mean(d: &Dist, n: usize) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::Constant(3.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn uniform_stays_in_range_and_matches_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&v));
        }
        assert!((empirical_mean(&d, 20_000) - 3.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::Exponential { mean: 5.0 };
        assert!((empirical_mean(&d, 50_000) - 5.0).abs() < 0.15);
    }

    #[test]
    fn lognormal_mean_cv_converges() {
        let d = Dist::lognormal(10.0, 0.3);
        let m = empirical_mean(&d, 50_000);
        assert!((m - 10.0).abs() < 0.2, "mean drifted: {m}");
    }

    #[test]
    fn lognormal_zero_cv_is_constant() {
        assert_eq!(Dist::lognormal(7.0, 0.0), Dist::Constant(7.0));
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let d = Dist::Constant(1.0).with_tail(Dist::Constant(101.0), 0.01);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let m = empirical_mean(&d, 100_000);
        assert!((m - 2.0).abs() < 0.3, "mixture mean drifted: {m}");
    }

    #[test]
    fn shifted_adds_offset() {
        let d = Dist::Shifted {
            base: Box::new(Dist::Constant(1.0)),
            offset: 2.0,
        };
        assert_eq!(d.mean(), 3.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert_eq!(d.sample(&mut rng), 3.0);
    }

    #[test]
    fn samples_are_never_negative() {
        let d = Dist::Shifted {
            base: Box::new(Dist::Constant(1.0)),
            offset: -5.0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(d.sample(&mut rng), 0.0);
    }

    #[test]
    fn degenerate_params_do_not_panic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(Dist::Uniform { lo: 1.0, hi: 1.0 }.sample(&mut rng), 1.0);
        assert_eq!(Dist::Exponential { mean: 0.0 }.sample(&mut rng), 0.0);
        assert_eq!(Dist::lognormal(0.0, 0.5).sample(&mut rng), 0.0);
    }
}
