//! The discrete-event engine: a virtual clock plus an ordered event heap.
//!
//! The engine is deliberately minimal: it owns *time* and nothing else.
//! Model state lives in `Rc<RefCell<…>>` cells captured by the scheduled
//! closures (the simulation is single-threaded, so `Rc` is the right tool —
//! see the workspace guides on avoiding `Arc` where no sharing across
//! threads happens).

use crate::event::{Callback, EventId, ScheduledEvent};
use crate::time::{SimDuration, SimTime};
use std::collections::{BinaryHeap, HashSet};

/// A discrete-event simulation engine.
///
/// Events are closures scheduled at absolute or relative virtual times;
/// [`Engine::run`] drains them in (time, FIFO) order, advancing the clock to
/// each event's timestamp before firing it.
pub struct Engine {
    now: SimTime,
    heap: BinaryHeap<ScheduledEvent>,
    next_id: u64,
    cancelled: HashSet<EventId>,
    fired: u64,
    /// Safety valve: `run` panics if more than this many events fire, which
    /// turns accidental infinite event loops into a loud failure.
    max_events: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_id: 0,
            cancelled: HashSet::new(),
            fired: 0,
            max_events: 500_000_000,
        }
    }

    /// Lowers the runaway-event safety valve (mostly for tests).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending (including cancelled-but-not-popped).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `cb` to fire at the absolute instant `at`.
    ///
    /// Scheduling in the past is a modelling bug; the event is clamped to
    /// fire "now" so causality is preserved, and debug builds assert.
    pub fn schedule_at(&mut self, at: SimTime, cb: impl FnOnce(&mut Engine) + 'static) -> EventId {
        debug_assert!(at >= self.now, "scheduled an event in the past");
        let at = at.max(self.now);
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(ScheduledEvent {
            at,
            id,
            callback: Some(Box::new(cb) as Callback),
        });
        id
    }

    /// Schedules `cb` to fire `delay` after the current instant.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        cb: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, cb)
    }

    /// Cancels a pending event. Cancelling an already-fired or unknown id is
    /// a no-op (the handle may legitimately race with its own firing).
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Fires the next pending event, advancing the clock. Returns `false`
    /// when the heap is empty.
    pub fn step(&mut self) -> bool {
        while let Some(mut ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event heap yielded a past event");
            self.now = ev.at;
            self.fired += 1;
            assert!(
                self.fired <= self.max_events,
                "simulation exceeded {} events — runaway event loop?",
                self.max_events
            );
            if let Some(cb) = ev.callback.take() {
                cb(self);
            }
            return true;
        }
        false
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the clock would pass `deadline`; events scheduled at or
    /// before the deadline still fire. Returns `true` if events remain.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            match self.heap.peek() {
                None => return false,
                Some(ev) if ev.at > deadline => {
                    // Do not fire, but advance the clock to the deadline so
                    // repeated calls observe monotonic time.
                    self.now = self.now.max(deadline);
                    return true;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn fires_in_time_order() {
        let mut eng = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            eng.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(tag));
        }
        eng.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(eng.events_fired(), 3);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut eng = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            let log = log.clone();
            eng.schedule_at(SimTime::from_nanos(7), move |_| log.borrow_mut().push(tag));
        }
        eng.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng = Engine::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        eng.schedule_in(SimDuration::from_micros(1), move |eng| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            eng.schedule_in(SimDuration::from_micros(1), move |_| {
                *h2.borrow_mut() += 1;
            });
        });
        eng.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(eng.now(), SimTime::from_nanos(2_000));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut eng = Engine::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let id = eng.schedule_in(SimDuration::from_micros(1), move |_| {
            *h.borrow_mut() += 1;
        });
        eng.cancel(id);
        eng.run();
        assert_eq!(*hits.borrow(), 0);
        assert_eq!(eng.events_fired(), 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng = Engine::new();
        let hits = Rc::new(RefCell::new(0u32));
        for t in [10u64, 20, 30] {
            let h = hits.clone();
            eng.schedule_at(SimTime::from_nanos(t), move |_| *h.borrow_mut() += 1);
        }
        let more = eng.run_until(SimTime::from_nanos(20));
        assert!(more);
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(eng.now(), SimTime::from_nanos(20));
        assert!(!eng.run_until(SimTime::from_nanos(100)));
        assert_eq!(*hits.borrow(), 3);
    }

    #[test]
    fn cancel_from_inside_a_callback() {
        // An event can cancel a later event while the engine is running.
        let mut eng = Engine::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let victim = eng.schedule_at(SimTime::from_nanos(100), move |_| {
            *h.borrow_mut() += 1;
        });
        eng.schedule_at(SimTime::from_nanos(50), move |e| {
            e.cancel(victim);
        });
        eng.run();
        assert_eq!(*hits.borrow(), 0);
        assert_eq!(eng.events_fired(), 1);
    }

    #[test]
    fn cancelling_a_fired_event_is_a_noop() {
        let mut eng = Engine::new();
        let id = eng.schedule_at(SimTime::from_nanos(1), |_| {});
        eng.run();
        eng.cancel(id); // already fired — must not panic or corrupt state
        eng.schedule_at(SimTime::from_nanos(2), |_| {});
        eng.run();
        assert_eq!(eng.events_fired(), 2);
    }

    #[test]
    fn run_until_includes_events_at_the_deadline() {
        let mut eng = Engine::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        eng.schedule_at(SimTime::from_nanos(10), move |_| *h.borrow_mut() += 1);
        let more = eng.run_until(SimTime::from_nanos(10));
        assert!(!more);
        assert_eq!(*hits.borrow(), 1, "deadline event must fire");
    }

    #[test]
    #[should_panic(expected = "runaway")]
    fn runaway_loop_is_detected() {
        let mut eng = Engine::new();
        eng.set_max_events(100);
        fn again(eng: &mut Engine) {
            eng.schedule_in(SimDuration::from_nanos(1), again);
        }
        eng.schedule_in(SimDuration::from_nanos(1), again);
        eng.run();
    }

    #[test]
    fn clock_is_monotonic_across_steps() {
        let mut eng = Engine::new();
        let times = Rc::new(RefCell::new(Vec::new()));
        for t in [5u64, 5, 1, 9] {
            let times = times.clone();
            eng.schedule_at(SimTime::from_nanos(t), move |e| {
                times.borrow_mut().push(e.now().as_nanos());
            });
        }
        eng.run();
        let v = times.borrow();
        assert!(
            v.windows(2).all(|w| w[0] <= w[1]),
            "clock went backwards: {v:?}"
        );
    }
}
