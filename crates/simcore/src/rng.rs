//! Deterministic, named random-number streams.
//!
//! Every stochastic component of the simulation (network jitter, DB service
//! noise, workload placement, …) draws from its own stream derived from a
//! single master seed and a stable label. This gives two properties the
//! experiments rely on:
//!
//! 1. **Reproducibility** — rerunning a figure binary yields bit-identical
//!    output.
//! 2. **Variance isolation** — adding draws to one component does not shift
//!    the random sequence seen by any other, so A/B comparisons (e.g. slow
//!    vs optimized master) differ only where the model differs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Factory for deterministic per-component RNG streams.
#[derive(Debug, Clone)]
pub struct RngHub {
    master_seed: u64,
}

impl RngHub {
    /// Creates a hub from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngHub { master_seed }
    }

    /// The master seed this hub derives all streams from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG for the stream identified by `label`.
    ///
    /// Same `(master_seed, label)` → same sequence, always.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(mix(self.master_seed, fnv1a(label.as_bytes())))
    }

    /// Returns the RNG for a `(label, index)` pair — convenient for per-node
    /// or per-trial streams.
    pub fn stream_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(mix(
            self.master_seed,
            mix(fnv1a(label.as_bytes()), index.wrapping_add(0x9E37_79B9)),
        ))
    }

    /// Derives a child hub, for nesting experiments inside experiments.
    pub fn child(&self, label: &str) -> RngHub {
        RngHub {
            master_seed: mix(self.master_seed, fnv1a(label.as_bytes())),
        }
    }
}

/// FNV-1a over bytes: stable, cheap label hashing (we only need dispersion,
/// not collision resistance).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer over the xor of two hashes — avalanches every bit so
/// related labels do not produce correlated seeds.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_sequence() {
        let hub = RngHub::new(42);
        let a: Vec<u32> = hub
            .stream("net")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = hub
            .stream("net")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let hub = RngHub::new(42);
        let a: u64 = hub.stream("net").gen();
        let b: u64 = hub.stream("db").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngHub::new(1).stream("x").gen();
        let b: u64 = RngHub::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let hub = RngHub::new(7);
        let a: u64 = hub.stream_indexed("node", 0).gen();
        let b: u64 = hub.stream_indexed("node", 1).gen();
        assert_ne!(a, b);
        let a2: u64 = hub.stream_indexed("node", 0).gen();
        assert_eq!(a, a2);
    }

    #[test]
    fn child_hubs_are_stable_and_distinct() {
        let hub = RngHub::new(7);
        assert_eq!(hub.child("t").master_seed(), hub.child("t").master_seed());
        assert_ne!(hub.child("t").master_seed(), hub.child("u").master_seed());
        assert_ne!(hub.child("t").master_seed(), hub.master_seed());
    }

    #[test]
    fn fnv_is_stable() {
        // Guard against accidental algorithm changes: these values pin the
        // seed derivation, and with it every figure's exact output.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
