//! FIFO multi-server resources: the queueing building block of the cluster
//! model.
//!
//! A [`Resource`] models `c` identical servers in front of one FIFO queue —
//! exactly the shape of the paper's per-node database executor ("Cassandra
//! is not fast enough to satisfy all of the requests as quickly as they
//! arrive … a lot of requests spend a considerable time waiting", §V-B) and
//! of the master's outbound CPU. It tracks, per job, the decomposition the
//! paper's methodology needs: *time in queue* vs *time in service*.

use crate::engine::Engine;
use crate::stats::OnlineStats;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// What a completed job learns about its own life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobReport {
    /// When the job was submitted to the resource.
    pub enqueued_at: SimTime,
    /// When a server started working on it.
    pub started_at: SimTime,
    /// When service finished (== the instant the completion fires).
    pub completed_at: SimTime,
}

impl JobReport {
    /// Time spent waiting in the FIFO queue.
    pub fn wait(&self) -> SimDuration {
        self.started_at - self.enqueued_at
    }

    /// Time spent being served.
    pub fn service(&self) -> SimDuration {
        self.completed_at - self.started_at
    }

    /// Total sojourn time (wait + service).
    pub fn sojourn(&self) -> SimDuration {
        self.completed_at - self.enqueued_at
    }
}

type Completion = Box<dyn FnOnce(&mut Engine, JobReport)>;

struct Pending {
    service: SimDuration,
    enqueued_at: SimTime,
    on_complete: Completion,
}

struct Inner {
    name: String,
    capacity: usize,
    busy: usize,
    queue: VecDeque<Pending>,
    // --- accounting ---
    completed: u64,
    waits: OnlineStats,
    services: OnlineStats,
    busy_integral_ns: u128,
    queue_integral_ns: u128,
    last_change: SimTime,
    max_queue_len: usize,
}

impl Inner {
    /// Accumulates the time-weighted busy/queue integrals up to `now`.
    fn account(&mut self, now: SimTime) {
        let dt = (now - self.last_change).as_nanos() as u128;
        self.busy_integral_ns += dt * self.busy as u128;
        self.queue_integral_ns += dt * self.queue.len() as u128;
        self.last_change = now;
    }
}

/// A shared handle to a FIFO `c`-server resource. Cloning the handle clones
/// the *reference*, not the resource.
#[derive(Clone)]
pub struct Resource {
    inner: Rc<RefCell<Inner>>,
}

impl Resource {
    /// Creates a resource with `capacity` parallel servers.
    ///
    /// # Panics
    /// If `capacity` is zero — a zero-server resource would deadlock every
    /// submission, which is never a useful model.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource {
            inner: Rc::new(RefCell::new(Inner {
                name: name.into(),
                capacity,
                busy: 0,
                queue: VecDeque::new(),
                completed: 0,
                waits: OnlineStats::new(),
                services: OnlineStats::new(),
                busy_integral_ns: 0,
                queue_integral_ns: 0,
                last_change: SimTime::ZERO,
                max_queue_len: 0,
            })),
        }
    }

    /// The resource's display name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// The configured number of parallel servers.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Jobs currently being served.
    pub fn busy(&self) -> usize {
        self.inner.borrow().busy
    }

    /// Jobs currently waiting in queue.
    pub fn queue_len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Submits a job needing `service` time; `on_complete` fires when it
    /// finishes, with the full queue/service decomposition.
    pub fn submit(
        &self,
        eng: &mut Engine,
        service: SimDuration,
        on_complete: impl FnOnce(&mut Engine, JobReport) + 'static,
    ) {
        let mut slot = Some(Pending {
            service,
            enqueued_at: eng.now(),
            on_complete: Box::new(job_completion(on_complete)),
        });
        {
            let mut inner = self.inner.borrow_mut();
            inner.account(eng.now());
            if inner.busy < inner.capacity {
                inner.busy += 1;
            } else {
                inner.queue.push_back(slot.take().expect("job present"));
                let qlen = inner.queue.len();
                inner.max_queue_len = inner.max_queue_len.max(qlen);
            }
        }
        if let Some(job) = slot {
            start_service(self.inner.clone(), eng, job);
        }
    }

    /// A point-in-time snapshot of the accounting counters.
    pub fn stats(&self, now: SimTime) -> ResourceStats {
        let mut inner = self.inner.borrow_mut();
        inner.account(now);
        ResourceStats {
            name: inner.name.clone(),
            capacity: inner.capacity,
            completed: inner.completed,
            waits: inner.waits.clone(),
            services: inner.services.clone(),
            busy_integral_ns: inner.busy_integral_ns,
            queue_integral_ns: inner.queue_integral_ns,
            max_queue_len: inner.max_queue_len,
            observed_at: now,
        }
    }
}

// `on_complete` captures `JobReport`; this indirection exists only to give
// the box a uniform type.
fn job_completion(
    f: impl FnOnce(&mut Engine, JobReport) + 'static,
) -> impl FnOnce(&mut Engine, JobReport) + 'static {
    f
}

/// Puts `job` into service on one of the resource's servers (the caller must
/// have already incremented `busy`), scheduling its completion.
fn start_service(inner: Rc<RefCell<Inner>>, eng: &mut Engine, job: Pending) {
    let started_at = eng.now();
    let enqueued_at = job.enqueued_at;
    let service = job.service;
    let on_complete = job.on_complete;
    eng.schedule_in(service, move |eng| {
        let report = JobReport {
            enqueued_at,
            started_at,
            completed_at: eng.now(),
        };
        let next = {
            let mut st = inner.borrow_mut();
            st.account(eng.now());
            st.completed += 1;
            st.waits.push(report.wait().as_secs_f64());
            st.services.push(report.service().as_secs_f64());
            match st.queue.pop_front() {
                Some(next) => Some(next), // the freed server picks up the next job
                None => {
                    st.busy -= 1;
                    None
                }
            }
        };
        // Callbacks run *after* the borrow is released: they may resubmit to
        // this very resource.
        if let Some(next) = next {
            start_service(inner.clone(), eng, next);
        }
        on_complete(eng, report);
    });
}

/// Accounting snapshot for a [`Resource`].
#[derive(Debug, Clone)]
pub struct ResourceStats {
    /// Resource name.
    pub name: String,
    /// Number of parallel servers.
    pub capacity: usize,
    /// Jobs completed so far.
    pub completed: u64,
    /// Queue-wait statistics, in seconds.
    pub waits: OnlineStats,
    /// Service-time statistics, in seconds.
    pub services: OnlineStats,
    /// ∫ busy-servers dt, in server·nanoseconds.
    pub busy_integral_ns: u128,
    /// ∫ queue-length dt, in job·nanoseconds.
    pub queue_integral_ns: u128,
    /// High-water mark of the queue length.
    pub max_queue_len: usize,
    /// Instant the snapshot was taken.
    pub observed_at: SimTime,
}

impl ResourceStats {
    /// Mean utilization of the servers over `[0, observed_at]`, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let horizon = self.observed_at.as_nanos() as f64 * self.capacity as f64;
        if horizon == 0.0 {
            0.0
        } else {
            self.busy_integral_ns as f64 / horizon
        }
    }

    /// Time-averaged queue length over `[0, observed_at]`.
    pub fn mean_queue_len(&self) -> f64 {
        let horizon = self.observed_at.as_nanos() as f64;
        if horizon == 0.0 {
            0.0
        } else {
            self.queue_integral_ns as f64 / horizon
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_server_serializes_jobs() {
        let mut eng = Engine::new();
        let res = Resource::new("db", 1);
        let ends = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let ends = ends.clone();
            res.submit(&mut eng, ms(10), move |eng, _| {
                ends.borrow_mut().push(eng.now().as_millis_f64());
            });
        }
        eng.run();
        assert_eq!(*ends.borrow(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn multi_server_runs_in_parallel() {
        let mut eng = Engine::new();
        let res = Resource::new("db", 3);
        let ends = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let ends = ends.clone();
            res.submit(&mut eng, ms(10), move |eng, _| {
                ends.borrow_mut().push(eng.now().as_millis_f64());
            });
        }
        eng.run();
        assert_eq!(*ends.borrow(), vec![10.0, 10.0, 10.0]);
    }

    #[test]
    fn job_report_decomposes_wait_and_service() {
        let mut eng = Engine::new();
        let res = Resource::new("db", 1);
        let reports = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let reports = reports.clone();
            res.submit(&mut eng, ms(10), move |_, r| reports.borrow_mut().push(r));
        }
        eng.run();
        let rs = reports.borrow();
        assert_eq!(rs[0].wait(), SimDuration::ZERO);
        assert_eq!(rs[0].service(), ms(10));
        assert_eq!(rs[1].wait(), ms(10));
        assert_eq!(rs[1].sojourn(), ms(20));
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut eng = Engine::new();
        let res = Resource::new("db", 1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            let order = order.clone();
            res.submit(&mut eng, ms(1), move |_, _| order.borrow_mut().push(tag));
        }
        eng.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn completion_can_resubmit() {
        let mut eng = Engine::new();
        let res = Resource::new("db", 1);
        let count = Rc::new(RefCell::new(0u32));
        let c2 = count.clone();
        let res2 = res.clone();
        res.submit(&mut eng, ms(1), move |eng, _| {
            *c2.borrow_mut() += 1;
            let c3 = c2.clone();
            res2.submit(eng, ms(1), move |_, _| {
                *c3.borrow_mut() += 1;
            });
        });
        eng.run();
        assert_eq!(*count.borrow(), 2);
        assert_eq!(eng.now(), SimTime::from_nanos(2_000_000));
    }

    #[test]
    fn utilization_accounting() {
        let mut eng = Engine::new();
        let res = Resource::new("db", 2);
        // Two servers, two 10 ms jobs in parallel, then idle until t=20ms.
        res.submit(&mut eng, ms(10), |_, _| {});
        res.submit(&mut eng, ms(10), |_, _| {});
        eng.run();
        let s = res.stats(SimTime::from_nanos(20_000_000));
        assert_eq!(s.completed, 2);
        // 2 servers busy for 10 of 20 ms = 50 % utilization.
        assert!((s.utilization() - 0.5).abs() < 1e-9, "{}", s.utilization());
        assert_eq!(s.max_queue_len, 0);
    }

    #[test]
    fn queue_length_accounting() {
        let mut eng = Engine::new();
        let res = Resource::new("db", 1);
        for _ in 0..3 {
            res.submit(&mut eng, ms(10), |_, _| {});
        }
        assert_eq!(res.queue_len(), 2);
        assert_eq!(res.busy(), 1);
        eng.run();
        let s = res.stats(eng.now());
        assert_eq!(s.max_queue_len, 2);
        // Queue holds 2 jobs for 10ms, 1 job for 10ms, 0 for 10ms → mean 1.0.
        assert!((s.mean_queue_len() - 1.0).abs() < 1e-9);
        assert_eq!(s.completed, 3);
        assert!((s.waits.mean() - 0.010).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Resource::new("bad", 0);
    }

    #[test]
    fn idle_resource_reports_clean_stats() {
        let res = Resource::new("idle", 4);
        let s = res.stats(SimTime::from_nanos(1_000_000));
        assert_eq!(s.completed, 0);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.mean_queue_len(), 0.0);
        assert_eq!(s.max_queue_len, 0);
        assert_eq!(res.name(), "idle");
        assert_eq!(res.capacity(), 4);
    }

    #[test]
    fn zero_service_jobs_complete_instantly_in_order() {
        let mut eng = Engine::new();
        let res = Resource::new("zero", 1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..3 {
            let order = order.clone();
            res.submit(&mut eng, SimDuration::ZERO, move |_, r| {
                order.borrow_mut().push((tag, r.sojourn()));
            });
        }
        eng.run();
        let v = order.borrow();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|(_, d)| d.is_zero()));
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(eng.now(), SimTime::ZERO);
    }
}
