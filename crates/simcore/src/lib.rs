#![warn(missing_docs)]

//! # kvs-simcore
//!
//! A small, deterministic discrete-event simulation (DES) substrate used by
//! the `kvscale` workspace to model distributed key-value clusters.
//!
//! The paper this workspace reproduces ("Exploiting key-value data stores
//! scalability for HPC", ICPP 2017) ran its experiments on a 16-node
//! on-premises cluster. We do not have that hardware, so every experiment is
//! replayed on a virtual cluster driven by this engine. The engine is:
//!
//! * **Deterministic** — all randomness flows through named [`rng::RngHub`]
//!   streams derived from a single master seed, so every figure is exactly
//!   reproducible.
//! * **Single-threaded** — one event heap, microsecond-scale events; a full
//!   16-node / 10 000-request experiment executes in well under a second of
//!   wall time.
//! * **Observable** — [`resource::Resource`] tracks queue waits, busy time
//!   and utilization; [`stats`] provides online moments, percentiles and
//!   histograms used by the analysis layers.
//!
//! ## Quick example
//!
//! ```
//! use kvs_simcore::{Engine, SimDuration};
//!
//! let mut eng = Engine::new();
//! let flag = std::rc::Rc::new(std::cell::Cell::new(0u32));
//! let f2 = flag.clone();
//! eng.schedule_in(SimDuration::from_millis(5), move |_eng| {
//!     f2.set(42);
//! });
//! eng.run();
//! assert_eq!(flag.get(), 42);
//! assert_eq!(eng.now().as_millis_f64(), 5.0);
//! ```

pub mod dist;
pub mod engine;
pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::Dist;
pub use engine::Engine;
pub use event::EventId;
pub use resource::{Resource, ResourceStats};
pub use rng::RngHub;
pub use stats::{Histogram, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
