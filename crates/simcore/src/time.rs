//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The simulation clock is a plain `u64` nanosecond counter wrapped in
//! newtypes so instants and durations cannot be mixed up. All arithmetic is
//! saturating: an experiment that overflows the clock (≈ 584 years of
//! simulated time) pins at the maximum instead of wrapping, which would
//! silently corrupt event ordering.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start, as a float (lossy above ~2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds since start, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Builds a duration from fractional seconds. Negative and NaN inputs
    /// clamp to zero; overly large inputs clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        Self::from_nanos_f64(s * 1e9)
    }

    /// Builds a duration from fractional milliseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_nanos_f64(ms * 1e6)
    }

    /// Builds a duration from fractional microseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_nanos_f64(us * 1e3)
    }

    fn from_nanos_f64(ns: f64) -> Self {
        if ns.is_nan() || ns <= 0.0 {
            return SimDuration::ZERO;
        }
        if ns >= u64::MAX as f64 {
            return SimDuration::MAX;
        }
        SimDuration(ns.round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor (clamping on overflow).
    pub fn mul_f64(self, k: f64) -> Self {
        Self::from_nanos_f64(self.0 as f64 * k)
    }

    /// Divides the duration by a positive factor; returns `MAX` when the
    /// divisor is zero or negative (an "infinitely slow" rate).
    pub fn div_f64(self, k: f64) -> Self {
        if k <= 0.0 {
            return SimDuration::MAX;
        }
        Self::from_nanos_f64(self.0 as f64 / k)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Pretty-prints with an automatically chosen unit (ns/µs/ms/s).
fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns < 1_000 {
        write!(f, "{ns}ns")
    } else if ns < 1_000_000 {
        write!(f, "{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        write!(f, "{:.2}ms", ns as f64 / 1e6)
    } else {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis_f64(), 500.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros_f64(), 1500.0);
        assert_eq!(SimDuration::from_micros_f64(2.0).as_nanos(), 2000);
    }

    #[test]
    fn float_construction_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn instant_difference_is_duration() {
        let a = SimTime::from_nanos(500);
        let b = SimTime::from_nanos(1500);
        assert_eq!(b - a, SimDuration::from_nanos(1000));
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_nanos(1000));
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(d.div_f64(2.0), SimDuration::from_millis(5));
        assert_eq!(d.div_f64(0.0), SimDuration::MAX);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d / 0, d); // divisor clamped to 1
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
