#![warn(missing_docs)]

//! # kvs-stages
//!
//! High-resolution request-stage tracing — the workspace's reimplementation
//! of the role Aeneas played in the paper (§IV-B): "the best approach is to
//! identify the primary data flow phases and to record the time that
//! requests spend in each of them".
//!
//! The four stages are the paper's own (§V-B):
//!
//! 1. [`Stage::MasterToSlave`] — master issues a request → slave receives it
//! 2. [`Stage::InQueue`] — request waits at the slave before the database
//! 3. [`Stage::InDb`] — the database serves it
//! 4. [`Stage::SlaveToMaster`] — the partial result travels back
//!
//! [`TraceRecorder`] collects one [`RequestTrace`] per sub-query;
//! [`analysis::analyze`] condenses them into per-stage/per-node summaries
//! and classifies the dominant bottleneck the way §V-B does by eye
//! (master-bound / database-saturated / workload-imbalanced); [`gantt`]
//! renders the Figure 4 stage profile as text.

pub mod analysis;
pub mod compare;
pub mod export;
pub mod gantt;
pub mod report;
pub mod stage;
pub mod trace;

pub use analysis::{analyze, Bottleneck, StageReport};
pub use compare::{compare, Comparison};
pub use stage::Stage;
pub use trace::{RequestTrace, Span, TraceRecorder};
