//! Text rendering of the Figure 4 stage profile.
//!
//! The paper plots, per node and per stage, one horizontal segment per
//! request; congestion shows up as dense ink and starvation as white holes.
//! Terminals don't do 10 000 segments, so we render occupancy instead: for
//! each (node, stage) row, time is split into fixed buckets and each bucket
//! shows how many requests were inside that stage, using a density ramp
//! `· ▁ ▂ ▃ ▄ ▅ ▆ ▇ █`.

use crate::stage::Stage;
use crate::trace::RequestTrace;
use kvs_simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const RAMP: [char; 10] = [' ', '·', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Number of time buckets (columns).
    pub width: usize,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions { width: 72 }
    }
}

/// Renders the per-(node, stage) occupancy profile as text. Returns an
/// empty string for an empty run.
pub fn render(traces: &[RequestTrace], opts: GanttOptions) -> String {
    let width = opts.width.max(8);
    let (Some(start), Some(end)) = (
        traces.iter().filter_map(|t| t.issued_at()).min(),
        traces.iter().filter_map(|t| t.completed_at()).max(),
    ) else {
        return String::new();
    };
    let span_ns = (end - start).as_nanos().max(1);

    // occupancy[(node, stage)][bucket] = concurrent requests.
    let mut occupancy: BTreeMap<(u32, Stage), Vec<u32>> = BTreeMap::new();
    let bucket_of = |t: SimTime| -> usize {
        let off = (t - start).as_nanos();
        (((off as u128 * width as u128) / span_ns as u128) as usize).min(width - 1)
    };
    for trace in traces {
        for stage in Stage::ALL {
            if let Some(span) = trace.spans[stage.index()] {
                let row = occupancy
                    .entry((trace.node, stage))
                    .or_insert_with(|| vec![0; width]);
                let (b0, b1) = (bucket_of(span.start), bucket_of(span.end));
                for cell in &mut row[b0..=b1] {
                    *cell += 1;
                }
            }
        }
    }
    let peak = occupancy
        .values()
        .flat_map(|row| row.iter().copied())
        .max()
        .unwrap_or(1)
        .max(1);

    let mut out = String::new();
    let total_ms = (end - start).as_millis_f64();
    let _ = writeln!(
        out,
        "stage profile — {total_ms:.1} ms total, {} requests",
        traces.len()
    );
    let mut current_node: Option<u32> = None;
    for ((node, stage), row) in &occupancy {
        if current_node != Some(*node) {
            let _ = writeln!(out, "node {node}");
            current_node = Some(*node);
        }
        let mut line = String::with_capacity(width);
        for &c in row {
            let idx = if c == 0 {
                0
            } else {
                // Map 1..=peak onto ramp levels 1..=9.
                1 + ((c - 1) as usize * (RAMP.len() - 2)) / peak as usize
            };
            line.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
        let _ = writeln!(out, "  {:>17} |{}|", stage.name(), line);
    }
    let _ = writeln!(out, "  (density: blank=idle, ·=1 … █={peak} concurrent)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn sample_traces() -> Vec<RequestTrace> {
        let mut rec = TraceRecorder::new();
        for id in 0..4u64 {
            let node = (id % 2) as u32;
            rec.begin(id, node, 10);
            rec.record(id, Stage::MasterToSlave, t(id * 10), t(id * 10 + 2));
            rec.record(id, Stage::InQueue, t(id * 10 + 2), t(id * 10 + 4));
            rec.record(id, Stage::InDb, t(id * 10 + 4), t(id * 10 + 9));
            rec.record(id, Stage::SlaveToMaster, t(id * 10 + 9), t(id * 10 + 10));
        }
        rec.into_traces()
    }

    #[test]
    fn renders_all_nodes_and_stages() {
        let text = render(&sample_traces(), GanttOptions::default());
        assert!(text.contains("node 0"));
        assert!(text.contains("node 1"));
        for stage in Stage::ALL {
            assert!(text.contains(stage.name()), "missing {stage}");
        }
        assert!(text.contains("4 requests"));
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(render(&[], GanttOptions::default()), "");
    }

    #[test]
    fn busy_buckets_are_inked() {
        let text = render(&sample_traces(), GanttOptions { width: 40 });
        // Every rendered row must contain at least one non-blank cell.
        for line in text.lines().filter(|l| l.contains('|')) {
            let body: String = line.split('|').nth(1).expect("row body").to_string();
            assert!(
                body.chars().any(|c| c != ' '),
                "row is entirely idle: {line}"
            );
        }
    }

    #[test]
    fn width_is_respected() {
        let text = render(&sample_traces(), GanttOptions { width: 20 });
        for line in text.lines().filter(|l| l.contains('|')) {
            let body = line.split('|').nth(1).expect("row body");
            assert_eq!(body.chars().count(), 20, "line: {line}");
        }
    }
}
