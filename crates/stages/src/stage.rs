//! The four request stages of the paper's methodology.

use std::fmt;

/// A phase of a distributed sub-query's life cycle (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Master issues the request → the slave receives it. Includes the
    /// master's per-message CPU (serialization!) and the network transit.
    MasterToSlave,
    /// The request waits at the slave for a free database slot.
    InQueue,
    /// The database executes the read.
    InDb,
    /// The partial result travels back to the master (serialization +
    /// network + the master's receive processing).
    SlaveToMaster,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 4] = [
        Stage::MasterToSlave,
        Stage::InQueue,
        Stage::InDb,
        Stage::SlaveToMaster,
    ];

    /// The stage's index in pipeline order.
    pub fn index(self) -> usize {
        match self {
            Stage::MasterToSlave => 0,
            Stage::InQueue => 1,
            Stage::InDb => 2,
            Stage::SlaveToMaster => 3,
        }
    }

    /// The paper's name for the stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::MasterToSlave => "master-to-slaves",
            Stage::InQueue => "in-queue",
            Stage::InDb => "in-db",
            Stage::SlaveToMaster => "slaves-to-master",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_pipeline_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Stage::MasterToSlave.to_string(), "master-to-slaves");
        assert_eq!(Stage::InDb.name(), "in-db");
    }
}
