//! Trace export — the raw material Aeneas stored for offline analysis.
//!
//! Traces serialize to a simple CSV (one row per request per stage) that
//! any plotting tool can ingest, and parse back for replay, so experiment
//! results can be archived and re-analyzed without rerunning.

use crate::stage::Stage;
use crate::trace::{RequestTrace, TraceRecorder};
use kvs_simcore::SimTime;

/// Serializes traces as CSV: `request_id,node,cells,stage,start_ns,end_ns`.
pub fn to_csv(traces: &[RequestTrace]) -> String {
    let mut out = String::from("request_id,node,cells,stage,start_ns,end_ns\n");
    for trace in traces {
        for stage in Stage::ALL {
            if let Some(span) = trace.spans[stage.index()] {
                out.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    trace.request_id,
                    trace.node,
                    trace.cells,
                    stage.name(),
                    span.start.as_nanos(),
                    span.end.as_nanos()
                ));
            }
        }
    }
    out
}

/// Parses [`to_csv`] output back into traces. Returns `None` on any
/// malformed row (a damaged archive should fail loudly, not half-load).
pub fn from_csv(csv: &str) -> Option<Vec<RequestTrace>> {
    let mut lines = csv.lines();
    let header = lines.next()?;
    if header != "request_id,node,cells,stage,start_ns,end_ns" {
        return None;
    }
    let mut rec = TraceRecorder::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return None;
        }
        let request_id: u64 = fields[0].parse().ok()?;
        let node: u32 = fields[1].parse().ok()?;
        let cells: u64 = fields[2].parse().ok()?;
        let stage = Stage::ALL.into_iter().find(|s| s.name() == fields[3])?;
        let start: u64 = fields[4].parse().ok()?;
        let end: u64 = fields[5].parse().ok()?;
        if end < start {
            return None;
        }
        rec.begin(request_id, node, cells);
        rec.record(
            request_id,
            stage,
            SimTime::from_nanos(start),
            SimTime::from_nanos(end),
        );
    }
    Some(rec.into_traces())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn sample() -> Vec<RequestTrace> {
        let mut rec = TraceRecorder::new();
        for id in 0..5u64 {
            rec.begin(id, (id % 2) as u32, 10 + id);
            rec.record(id, Stage::MasterToSlave, t(0), t(1 + id));
            rec.record(id, Stage::InQueue, t(1 + id), t(2 + id));
            rec.record(id, Stage::InDb, t(2 + id), t(12 + id));
            rec.record(id, Stage::SlaveToMaster, t(12 + id), t(13 + id));
        }
        rec.into_traces()
    }

    #[test]
    fn csv_roundtrips() {
        let traces = sample();
        let csv = to_csv(&traces);
        let back = from_csv(&csv).expect("roundtrip");
        assert_eq!(back.len(), traces.len());
        for (a, b) in traces.iter().zip(&back) {
            assert_eq!(a.request_id, b.request_id);
            assert_eq!(a.node, b.node);
            assert_eq!(a.cells, b.cells);
            for stage in Stage::ALL {
                assert_eq!(
                    a.spans[stage.index()],
                    b.spans[stage.index()],
                    "request {} stage {stage}",
                    a.request_id
                );
            }
        }
    }

    #[test]
    fn partial_traces_roundtrip() {
        let mut rec = TraceRecorder::new();
        rec.begin(7, 3, 42);
        rec.record(7, Stage::InDb, t(5), t(15));
        let traces = rec.into_traces();
        let back = from_csv(&to_csv(&traces)).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back[0].spans[Stage::InDb.index()].is_some());
        assert!(back[0].spans[Stage::InQueue.index()].is_none());
    }

    #[test]
    fn malformed_rows_rejected() {
        let good = to_csv(&sample());
        assert!(from_csv("nonsense\n1,2,3").is_none());
        assert!(from_csv(&good.replace("in-db", "in-flight")).is_none());
        let truncated: String =
            good.lines().take(2).collect::<Vec<_>>().join("\n") + "\n1,2,3,in-db,99";
        assert!(from_csv(&truncated).is_none());
        // Reversed span.
        let bad_span = "request_id,node,cells,stage,start_ns,end_ns\n0,0,1,in-db,100,50\n";
        assert!(from_csv(bad_span).is_none());
    }

    #[test]
    fn empty_trace_set_roundtrips() {
        let csv = to_csv(&[]);
        assert_eq!(from_csv(&csv).unwrap().len(), 0);
    }

    #[test]
    fn analysis_agrees_after_roundtrip() {
        use crate::analysis::analyze;
        let traces = sample();
        let a = analyze(&traces);
        let b = analyze(&from_csv(&to_csv(&traces)).unwrap());
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.requests_per_node, b.requests_per_node);
    }
}
