//! Formatted text rendering of a [`StageReport`].
//!
//! The figures' binaries and the examples all want the same two tables —
//! per-stage timing summaries and per-node load/finish lines — so they live
//! here once, next to the analysis that produces them.

use crate::analysis::StageReport;
use crate::stage::Stage;
use std::fmt::Write as _;

/// Renders the per-stage summary table (mean/max/total per stage).
pub fn render_stage_table(report: &StageReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>18} {:>9} {:>12} {:>12} {:>14}",
        "stage", "requests", "mean (ms)", "max (ms)", "total (ms)"
    );
    for stage in Stage::ALL {
        if let Some(stats) = report.per_stage_ms.get(&stage) {
            let _ = writeln!(
                out,
                "{:>18} {:>9} {:>12.3} {:>12.3} {:>14.1}",
                stage.name(),
                stats.count(),
                stats.mean(),
                stats.max(),
                stats.sum()
            );
        }
    }
    out
}

/// Renders the per-node table: requests served, last-finish instant, and a
/// proportional load bar.
pub fn render_node_table(report: &StageReport) -> String {
    let mut out = String::new();
    let max_requests = report
        .requests_per_node
        .values()
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    let _ = writeln!(
        out,
        "{:>6} {:>9} {:>12}  load",
        "node", "requests", "finish (ms)"
    );
    for (&node, &count) in &report.requests_per_node {
        let finish = report.node_finish_ms.get(&node).copied().unwrap_or(0.0);
        let bar_len = ((count as f64 / max_requests as f64) * 30.0).round() as usize;
        let _ = writeln!(
            out,
            "{:>6} {:>9} {:>12.1}  {}",
            node,
            count,
            finish,
            "#".repeat(bar_len)
        );
    }
    out
}

/// One-paragraph plain-language summary: makespan, issue span, bottleneck.
pub fn render_summary(report: &StageReport) -> String {
    format!(
        "{} requests in {:.1} ms (master issued for {:.1} ms, DB idle gap {:.1} ms) — bottleneck: {:?}",
        report.requests,
        report.makespan.as_millis_f64(),
        report.issue_span_ms,
        report.db_idle_gap_ms,
        report.bottleneck
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::trace::TraceRecorder;
    use kvs_simcore::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn sample_report() -> StageReport {
        let mut rec = TraceRecorder::new();
        for id in 0..6u64 {
            let node = (id % 2) as u32;
            rec.begin(id, node, 10);
            rec.record(id, Stage::MasterToSlave, t(0), t(1 + id));
            rec.record(id, Stage::InQueue, t(1 + id), t(2 + id));
            rec.record(id, Stage::InDb, t(2 + id), t(10 + id));
            rec.record(id, Stage::SlaveToMaster, t(10 + id), t(11 + id));
        }
        analyze(&rec.into_traces())
    }

    #[test]
    fn stage_table_lists_all_stages() {
        let text = render_stage_table(&sample_report());
        for stage in Stage::ALL {
            assert!(text.contains(stage.name()), "missing {stage}");
        }
        assert!(text.contains("mean (ms)"));
    }

    #[test]
    fn node_table_shows_counts_and_bars() {
        let text = render_node_table(&sample_report());
        assert!(text.contains("node"));
        // Both nodes served 3 requests → equal full-length bars.
        let bars: Vec<usize> = text
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .collect();
        assert_eq!(bars.len(), 2);
        assert_eq!(bars[0], bars[1]);
        assert!(bars[0] > 0);
    }

    #[test]
    fn summary_mentions_the_bottleneck() {
        let text = render_summary(&sample_report());
        assert!(text.contains("6 requests"));
        assert!(text.contains("bottleneck"));
    }

    #[test]
    fn empty_report_renders_safely() {
        let report = analyze(&[]);
        assert!(!render_stage_table(&report).is_empty());
        assert!(render_node_table(&report).contains("node"));
        assert!(render_summary(&report).contains("0 requests"));
    }
}
