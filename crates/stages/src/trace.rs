//! Per-request traces and the recorder that collects them.

use crate::stage::Stage;
use kvs_simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// A closed time interval on the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage entry instant.
    pub start: SimTime,
    /// Stage exit instant.
    pub end: SimTime,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The full stage decomposition of one sub-query.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Request id (unique within an experiment).
    pub request_id: u64,
    /// Index of the slave node that served the request.
    pub node: u32,
    /// Number of cells in the partition the request read.
    pub cells: u64,
    /// Per-stage spans, indexed by [`Stage::index`]. A `None` means the
    /// stage was never entered (e.g. the request is still in flight).
    pub spans: [Option<Span>; 4],
}

impl RequestTrace {
    /// The duration spent in a given stage (zero when not recorded).
    pub fn stage_duration(&self, stage: Stage) -> SimDuration {
        self.spans[stage.index()]
            .map(|s| s.duration())
            .unwrap_or(SimDuration::ZERO)
    }

    /// The instant the request was issued (start of the first recorded
    /// stage).
    pub fn issued_at(&self) -> Option<SimTime> {
        self.spans.iter().flatten().map(|s| s.start).min()
    }

    /// The instant the request fully completed (end of the last recorded
    /// stage).
    pub fn completed_at(&self) -> Option<SimTime> {
        self.spans.iter().flatten().map(|s| s.end).max()
    }

    /// End-to-end latency (zero if no stage was recorded).
    pub fn total(&self) -> SimDuration {
        match (self.issued_at(), self.completed_at()) {
            (Some(a), Some(b)) => b - a,
            _ => SimDuration::ZERO,
        }
    }

    /// True when all four stages are recorded.
    pub fn is_complete(&self) -> bool {
        self.spans.iter().all(|s| s.is_some())
    }
}

/// Collects traces for one experiment run.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    traces: HashMap<u64, RequestTrace>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a request (idempotent; node/cells of the first call win).
    pub fn begin(&mut self, request_id: u64, node: u32, cells: u64) {
        self.traces.entry(request_id).or_insert(RequestTrace {
            request_id,
            node,
            cells,
            spans: [None; 4],
        });
    }

    /// Records a stage span for a request. Requests are registered lazily
    /// if `begin` was not called (node/cells default to 0 — useful in unit
    /// tests; the cluster layer always calls `begin`).
    pub fn record(&mut self, request_id: u64, stage: Stage, start: SimTime, end: SimTime) {
        debug_assert!(end >= start, "span ends before it starts");
        let trace = self.traces.entry(request_id).or_insert(RequestTrace {
            request_id,
            node: 0,
            cells: 0,
            spans: [None; 4],
        });
        trace.spans[stage.index()] = Some(Span { start, end });
    }

    /// Number of registered requests.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no request was registered.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Finishes the run, returning traces sorted by request id.
    pub fn into_traces(self) -> Vec<RequestTrace> {
        let mut out: Vec<RequestTrace> = self.traces.into_values().collect();
        out.sort_by_key(|t| t.request_id);
        out
    }

    /// Borrows a trace (testing/diagnostics).
    pub fn get(&self, request_id: u64) -> Option<&RequestTrace> {
        self.traces.get(&request_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn record_and_read_back() {
        let mut rec = TraceRecorder::new();
        rec.begin(1, 3, 100);
        rec.record(1, Stage::MasterToSlave, t(0), t(2));
        rec.record(1, Stage::InQueue, t(2), t(5));
        rec.record(1, Stage::InDb, t(5), t(15));
        rec.record(1, Stage::SlaveToMaster, t(15), t(16));
        let trace = rec.get(1).unwrap();
        assert!(trace.is_complete());
        assert_eq!(trace.node, 3);
        assert_eq!(trace.cells, 100);
        assert_eq!(
            trace.stage_duration(Stage::InDb),
            SimDuration::from_millis(10)
        );
        assert_eq!(trace.total(), SimDuration::from_millis(16));
        assert_eq!(trace.issued_at(), Some(t(0)));
        assert_eq!(trace.completed_at(), Some(t(16)));
    }

    #[test]
    fn incomplete_trace_reports_partial() {
        let mut rec = TraceRecorder::new();
        rec.record(7, Stage::MasterToSlave, t(0), t(1));
        let trace = rec.get(7).unwrap();
        assert!(!trace.is_complete());
        assert_eq!(trace.stage_duration(Stage::InDb), SimDuration::ZERO);
        assert_eq!(trace.total(), SimDuration::from_millis(1));
    }

    #[test]
    fn begin_is_idempotent() {
        let mut rec = TraceRecorder::new();
        rec.begin(1, 3, 100);
        rec.begin(1, 9, 999);
        assert_eq!(rec.get(1).unwrap().node, 3);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn into_traces_sorts_by_id() {
        let mut rec = TraceRecorder::new();
        for id in [5u64, 1, 3] {
            rec.begin(id, 0, 0);
        }
        let ids: Vec<u64> = rec.into_traces().iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn empty_recorder() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        assert!(rec.into_traces().is_empty());
    }
}
