//! Condensing traces into the paper's diagnosis: who is the bottleneck?
//!
//! §V-B reads Figure 4 by eye: for *medium-grained*, requests pile up
//! in-queue and the slowest node's database phase spans the whole run
//! (database-saturated + imbalance); for *fine-grained*, the queue is empty
//! and the database shows idle holes while the master is still issuing
//! (master-bound). [`analyze`] computes the same signals numerically.

use crate::stage::Stage;
use crate::trace::RequestTrace;
use kvs_simcore::stats::OnlineStats;
use kvs_simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Per-stage, per-node condensation of an experiment's traces.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Total requests analyzed.
    pub requests: usize,
    /// Wall-clock span of the whole run (first issue → last completion).
    pub makespan: SimDuration,
    /// Stage-duration statistics across all requests, in milliseconds.
    pub per_stage_ms: BTreeMap<Stage, OnlineStats>,
    /// Stage-duration statistics per (node, stage), in milliseconds.
    pub per_node_stage_ms: BTreeMap<(u32, Stage), OnlineStats>,
    /// Requests served per node.
    pub requests_per_node: BTreeMap<u32, u64>,
    /// Per node: instant its last request completed, relative to run start
    /// (the paper's "the slowest node dictates the overall time").
    pub node_finish_ms: BTreeMap<u32, f64>,
    /// Time the master spent issuing: first request's send start → last
    /// request's send end, in ms.
    pub issue_span_ms: f64,
    /// Fraction of the makespan during which *some* database was busy but
    /// the in-queue stage was empty — large values mean the database was
    /// starved by the master.
    pub db_idle_gap_ms: f64,
    /// The classified dominant bottleneck.
    pub bottleneck: Bottleneck,
}

/// The dominant scalability limiter, in the paper's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bottleneck {
    /// The master cannot issue requests fast enough; the database idles
    /// (the paper's fine-grained profile).
    MasterSend {
        /// Fraction of the makespan the master spent issuing.
        issue_fraction: f64,
    },
    /// The database is the weak link: long in-queue waits (the paper's
    /// medium-grained profile).
    DatabaseSaturated {
        /// Mean in-queue / mean in-db ratio.
        queue_pressure: f64,
    },
    /// Nodes received visibly different work; the most loaded node
    /// finishes last (the paper's coarse-grained profile).
    WorkloadImbalance {
        /// (max requests per node / mean requests per node) − 1.
        relative_excess: f64,
    },
    /// Nothing dominates — the system scales as configured.
    Balanced,
}

/// Thresholds for the classifier (tuned to reproduce the paper's readings
/// of Figure 4; exposed so ablation benches can stress them).
#[derive(Debug, Clone, Copy)]
pub struct ClassifierThresholds {
    /// Issue span / makespan above this ⇒ master-bound.
    pub master_issue_fraction: f64,
    /// Mean in-queue / mean in-db above this ⇒ database-saturated.
    pub queue_pressure: f64,
    /// Request-count relative excess above this ⇒ imbalance.
    pub imbalance_excess: f64,
}

impl Default for ClassifierThresholds {
    fn default() -> Self {
        ClassifierThresholds {
            master_issue_fraction: 0.60,
            queue_pressure: 0.75,
            imbalance_excess: 0.20,
        }
    }
}

/// Analyzes a run's traces with default thresholds.
///
/// ```
/// use kvs_simcore::SimTime;
/// use kvs_stages::{analyze, Stage, TraceRecorder};
///
/// let ms = |m: u64| SimTime::from_nanos(m * 1_000_000);
/// let mut rec = TraceRecorder::new();
/// rec.begin(0, 0, 100);
/// rec.record(0, Stage::MasterToSlave, ms(0), ms(1));
/// rec.record(0, Stage::InQueue, ms(1), ms(2));
/// rec.record(0, Stage::InDb, ms(2), ms(12));
/// rec.record(0, Stage::SlaveToMaster, ms(12), ms(13));
/// let report = analyze(&rec.into_traces());
/// assert_eq!(report.requests, 1);
/// assert!((report.makespan.as_millis_f64() - 13.0).abs() < 1e-9);
/// ```
pub fn analyze(traces: &[RequestTrace]) -> StageReport {
    analyze_with(traces, ClassifierThresholds::default())
}

/// Analyzes a run's traces with explicit thresholds.
pub fn analyze_with(traces: &[RequestTrace], thresholds: ClassifierThresholds) -> StageReport {
    let mut per_stage_ms: BTreeMap<Stage, OnlineStats> = BTreeMap::new();
    let mut per_node_stage_ms: BTreeMap<(u32, Stage), OnlineStats> = BTreeMap::new();
    let mut requests_per_node: BTreeMap<u32, u64> = BTreeMap::new();
    let mut node_finish: BTreeMap<u32, SimTime> = BTreeMap::new();
    let mut run_start = SimTime::MAX;
    let mut run_end = SimTime::ZERO;
    let mut send_start = SimTime::MAX;
    let mut send_end = SimTime::ZERO;

    for trace in traces {
        *requests_per_node.entry(trace.node).or_insert(0) += 1;
        if let Some(t0) = trace.issued_at() {
            run_start = run_start.min(t0);
        }
        if let Some(t1) = trace.completed_at() {
            run_end = run_end.max(t1);
            let slot = node_finish.entry(trace.node).or_insert(SimTime::ZERO);
            *slot = (*slot).max(t1);
        }
        for stage in Stage::ALL {
            if let Some(span) = trace.spans[stage.index()] {
                let ms = span.duration().as_millis_f64();
                per_stage_ms.entry(stage).or_default().push(ms);
                per_node_stage_ms
                    .entry((trace.node, stage))
                    .or_default()
                    .push(ms);
                if stage == Stage::MasterToSlave {
                    send_start = send_start.min(span.start);
                    send_end = send_end.max(span.end);
                }
            }
        }
    }

    let makespan = if run_end > run_start {
        run_end - run_start
    } else {
        SimDuration::ZERO
    };
    let issue_span_ms = if send_end > send_start {
        (send_end - send_start).as_millis_f64()
    } else {
        0.0
    };
    let node_finish_ms: BTreeMap<u32, f64> = node_finish
        .iter()
        .map(|(&n, &t)| (n, (t - run_start).as_millis_f64()))
        .collect();

    // Database idle gap: approximate as makespan minus the busiest node's
    // total in-db time (a fully driven single-threaded DB would be busy the
    // whole run; idle holes mean starvation). Clamped at zero because with
    // in-node parallelism the sum can exceed the makespan.
    let max_node_db_ms = per_node_stage_ms
        .iter()
        .filter(|((_, s), _)| *s == Stage::InDb)
        .map(|(_, stats)| stats.sum())
        .fold(0.0f64, f64::max);
    let db_idle_gap_ms = (makespan.as_millis_f64() - max_node_db_ms).max(0.0);

    let bottleneck = classify(
        traces.len(),
        makespan,
        issue_span_ms,
        &per_stage_ms,
        &requests_per_node,
        thresholds,
    );

    StageReport {
        requests: traces.len(),
        makespan,
        per_stage_ms,
        per_node_stage_ms,
        requests_per_node,
        node_finish_ms,
        issue_span_ms,
        db_idle_gap_ms,
        bottleneck,
    }
}

fn classify(
    requests: usize,
    makespan: SimDuration,
    issue_span_ms: f64,
    per_stage_ms: &BTreeMap<Stage, OnlineStats>,
    requests_per_node: &BTreeMap<u32, u64>,
    th: ClassifierThresholds,
) -> Bottleneck {
    if requests == 0 || makespan.is_zero() {
        return Bottleneck::Balanced;
    }
    let makespan_ms = makespan.as_millis_f64();
    let issue_fraction = issue_span_ms / makespan_ms;
    let mean_queue = per_stage_ms
        .get(&Stage::InQueue)
        .map(|s| s.mean())
        .unwrap_or(0.0);
    let mean_db = per_stage_ms
        .get(&Stage::InDb)
        .map(|s| s.mean())
        .unwrap_or(0.0);
    let queue_pressure = if mean_db > 0.0 {
        mean_queue / mean_db
    } else {
        0.0
    };
    let (max_rq, mean_rq) = request_spread(requests_per_node);
    let relative_excess = if mean_rq > 0.0 {
        max_rq / mean_rq - 1.0
    } else {
        0.0
    };

    // Priority mirrors the paper's reasoning: a master that starves the
    // database dominates everything (fine-grained); then queueing pressure
    // (medium); then pure request imbalance (coarse).
    if issue_fraction >= th.master_issue_fraction && queue_pressure < th.queue_pressure {
        Bottleneck::MasterSend { issue_fraction }
    } else if queue_pressure >= th.queue_pressure {
        if relative_excess >= th.imbalance_excess {
            Bottleneck::WorkloadImbalance { relative_excess }
        } else {
            Bottleneck::DatabaseSaturated { queue_pressure }
        }
    } else if relative_excess >= th.imbalance_excess {
        Bottleneck::WorkloadImbalance { relative_excess }
    } else {
        Bottleneck::Balanced
    }
}

fn request_spread(requests_per_node: &BTreeMap<u32, u64>) -> (f64, f64) {
    if requests_per_node.is_empty() {
        return (0.0, 0.0);
    }
    let max = *requests_per_node.values().max().expect("non-empty") as f64;
    let mean = requests_per_node.values().sum::<u64>() as f64 / requests_per_node.len() as f64;
    (max, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    /// Builds a synthetic run: `sends[i]` = (node, send_start, send_end,
    /// queue_end, db_end, reply_end) in ms.
    fn run(specs: &[(u32, u64, u64, u64, u64, u64)]) -> Vec<RequestTrace> {
        let mut rec = TraceRecorder::new();
        for (id, &(node, s0, s1, q1, d1, r1)) in specs.iter().enumerate() {
            let id = id as u64;
            rec.begin(id, node, 100);
            rec.record(id, Stage::MasterToSlave, t(s0), t(s1));
            rec.record(id, Stage::InQueue, t(s1), t(q1));
            rec.record(id, Stage::InDb, t(q1), t(d1));
            rec.record(id, Stage::SlaveToMaster, t(d1), t(r1));
        }
        rec.into_traces()
    }

    #[test]
    fn empty_input_is_balanced() {
        let report = analyze(&[]);
        assert_eq!(report.bottleneck, Bottleneck::Balanced);
        assert_eq!(report.requests, 0);
        assert!(report.makespan.is_zero());
    }

    #[test]
    fn master_bound_profile_detected() {
        // Master takes 0..90 ms to issue 4 requests; each runs 5 ms in the
        // DB with no queueing — the fine-grained pattern.
        let traces = run(&[
            (0, 0, 2, 2, 7, 8),
            (1, 30, 32, 32, 37, 38),
            (0, 60, 62, 62, 67, 68),
            (1, 88, 90, 90, 95, 96),
        ]);
        let report = analyze(&traces);
        match report.bottleneck {
            Bottleneck::MasterSend { issue_fraction } => assert!(issue_fraction > 0.8),
            other => panic!("expected MasterSend, got {other:?}"),
        }
        assert!((report.issue_span_ms - 90.0).abs() < 1e-6);
    }

    #[test]
    fn database_saturated_profile_detected() {
        // All requests issued instantly; deep queues at both nodes.
        let traces = run(&[
            (0, 0, 1, 1, 11, 12),
            (0, 0, 1, 11, 21, 22),
            (0, 0, 1, 21, 31, 32),
            (1, 0, 1, 1, 11, 12),
            (1, 0, 1, 11, 21, 22),
            (1, 0, 1, 21, 31, 32),
        ]);
        let report = analyze(&traces);
        match report.bottleneck {
            Bottleneck::DatabaseSaturated { queue_pressure } => assert!(queue_pressure > 0.75),
            other => panic!("expected DatabaseSaturated, got {other:?}"),
        }
    }

    #[test]
    fn imbalance_profile_detected() {
        // Node 0 serves 4 requests back-to-back; node 1 serves 1.
        let traces = run(&[
            (0, 0, 1, 1, 11, 12),
            (0, 0, 1, 11, 21, 22),
            (0, 0, 1, 21, 31, 32),
            (0, 0, 1, 31, 41, 42),
            (1, 0, 1, 1, 11, 12),
        ]);
        let report = analyze(&traces);
        match report.bottleneck {
            Bottleneck::WorkloadImbalance { relative_excess } => {
                assert!((relative_excess - 0.6).abs() < 1e-9, "{relative_excess}")
            }
            other => panic!("expected WorkloadImbalance, got {other:?}"),
        }
        assert_eq!(report.requests_per_node[&0], 4);
        assert_eq!(report.requests_per_node[&1], 1);
        // The loaded node finishes last.
        assert!(report.node_finish_ms[&0] > report.node_finish_ms[&1]);
    }

    #[test]
    fn balanced_profile_detected() {
        let traces = run(&[
            (0, 0, 1, 1, 11, 12),
            (1, 0, 1, 1, 11, 12),
            (0, 1, 2, 2, 12, 13),
            (1, 1, 2, 2, 12, 13),
        ]);
        let report = analyze(&traces);
        assert_eq!(report.bottleneck, Bottleneck::Balanced);
    }

    #[test]
    fn per_stage_stats_are_collected() {
        let traces = run(&[(0, 0, 2, 5, 15, 16)]);
        let report = analyze(&traces);
        assert!((report.per_stage_ms[&Stage::MasterToSlave].mean() - 2.0).abs() < 1e-9);
        assert!((report.per_stage_ms[&Stage::InQueue].mean() - 3.0).abs() < 1e-9);
        assert!((report.per_stage_ms[&Stage::InDb].mean() - 10.0).abs() < 1e-9);
        assert!((report.per_stage_ms[&Stage::SlaveToMaster].mean() - 1.0).abs() < 1e-9);
        assert_eq!(report.makespan, SimDuration::from_millis(16));
    }

    #[test]
    fn db_idle_gap_flags_starvation() {
        // DB busy 5 ms of a 96 ms run → a big idle gap.
        let traces = run(&[(0, 0, 2, 2, 7, 8), (0, 88, 90, 90, 95, 96)]);
        let report = analyze(&traces);
        assert!(report.db_idle_gap_ms > 80.0, "{}", report.db_idle_gap_ms);
    }
}
