//! Before/after comparison of two stage reports — the §V-B loop.
//!
//! The paper's methodology is iterative: profile, identify the bottleneck,
//! fix it, profile again. Figure 1 → Figure 5 *is* such a comparison (slow
//! vs optimized master). [`compare`] condenses two reports into per-stage
//! deltas so the "did my fix move the right number?" question has a
//! first-class answer.

use crate::analysis::StageReport;
use crate::stage::Stage;

/// The delta of one stage between two runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageDelta {
    /// Which stage.
    pub stage: Stage,
    /// Mean stage time before, ms.
    pub before_ms: f64,
    /// Mean stage time after, ms.
    pub after_ms: f64,
}

impl StageDelta {
    /// Relative change: (after − before) / before; 0 when before is 0.
    pub fn relative_change(&self) -> f64 {
        if self.before_ms == 0.0 {
            0.0
        } else {
            (self.after_ms - self.before_ms) / self.before_ms
        }
    }
}

/// The full before/after comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-stage mean deltas, in pipeline order.
    pub stages: Vec<StageDelta>,
    /// Makespan before, ms.
    pub makespan_before_ms: f64,
    /// Makespan after, ms.
    pub makespan_after_ms: f64,
}

impl Comparison {
    /// End-to-end speed-up factor (before / after).
    pub fn speedup(&self) -> f64 {
        if self.makespan_after_ms == 0.0 {
            1.0
        } else {
            self.makespan_before_ms / self.makespan_after_ms
        }
    }

    /// The stage whose mean improved the most, in absolute ms (`None` when
    /// nothing improved).
    pub fn biggest_win(&self) -> Option<StageDelta> {
        self.stages
            .iter()
            .copied()
            .filter(|d| d.after_ms < d.before_ms)
            .max_by(|a, b| {
                (a.before_ms - a.after_ms)
                    .partial_cmp(&(b.before_ms - b.after_ms))
                    .expect("finite deltas")
            })
    }

    /// Renders a compact text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>18} {:>12} {:>12} {:>9}",
            "stage", "before (ms)", "after (ms)", "change"
        );
        for d in &self.stages {
            let _ = writeln!(
                out,
                "{:>18} {:>12.3} {:>12.3} {:>+8.0}%",
                d.stage.name(),
                d.before_ms,
                d.after_ms,
                d.relative_change() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:>18} {:>12.1} {:>12.1}   ({:.2}× speed-up)",
            "makespan",
            self.makespan_before_ms,
            self.makespan_after_ms,
            self.speedup()
        );
        out
    }
}

/// Compares two runs' reports stage by stage.
pub fn compare(before: &StageReport, after: &StageReport) -> Comparison {
    let stages = Stage::ALL
        .iter()
        .map(|&stage| StageDelta {
            stage,
            before_ms: before
                .per_stage_ms
                .get(&stage)
                .map(|s| s.mean())
                .unwrap_or(0.0),
            after_ms: after
                .per_stage_ms
                .get(&stage)
                .map(|s| s.mean())
                .unwrap_or(0.0),
        })
        .collect();
    Comparison {
        stages,
        makespan_before_ms: before.makespan.as_millis_f64(),
        makespan_after_ms: after.makespan.as_millis_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::trace::TraceRecorder;
    use kvs_simcore::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    /// One request: m2s takes `send` ms, db takes 10 ms.
    fn report(send: u64) -> StageReport {
        let mut rec = TraceRecorder::new();
        rec.begin(0, 0, 10);
        rec.record(0, Stage::MasterToSlave, t(0), t(send));
        rec.record(0, Stage::InQueue, t(send), t(send + 1));
        rec.record(0, Stage::InDb, t(send + 1), t(send + 11));
        rec.record(0, Stage::SlaveToMaster, t(send + 11), t(send + 12));
        analyze(&rec.into_traces())
    }

    #[test]
    fn compare_detects_the_master_fix() {
        let before = report(150);
        let after = report(19);
        let cmp = compare(&before, &after);
        let m2s = cmp
            .stages
            .iter()
            .find(|d| d.stage == Stage::MasterToSlave)
            .unwrap();
        assert_eq!(m2s.before_ms, 150.0);
        assert_eq!(m2s.after_ms, 19.0);
        assert!((m2s.relative_change() + 0.873).abs() < 0.01);
        // Other stages unchanged.
        let db = cmp.stages.iter().find(|d| d.stage == Stage::InDb).unwrap();
        assert_eq!(db.relative_change(), 0.0);
        assert_eq!(cmp.biggest_win().unwrap().stage, Stage::MasterToSlave);
        assert!((cmp.speedup() - 162.0 / 31.0).abs() < 1e-9);
    }

    #[test]
    fn render_shows_all_rows() {
        let cmp = compare(&report(100), &report(10));
        let text = cmp.render();
        for stage in Stage::ALL {
            assert!(text.contains(stage.name()));
        }
        assert!(text.contains("speed-up"));
    }

    #[test]
    fn regressions_have_no_win() {
        let cmp = compare(&report(10), &report(100));
        assert!(cmp.biggest_win().is_none());
        assert!(cmp.speedup() < 1.0);
    }

    #[test]
    fn empty_reports_compare_safely() {
        let empty = analyze(&[]);
        let cmp = compare(&empty, &empty);
        assert_eq!(cmp.speedup(), 1.0);
        assert!(cmp.biggest_win().is_none());
    }
}
