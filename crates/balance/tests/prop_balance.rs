//! Property tests for the placement substrate.

use kvs_balance::formula::{expected_max_load, imbalance_ratio, keymax};
use kvs_balance::simulation::{throw_once, Placement};
use kvs_balance::{HashRing, NodeId};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// key_max always lies between the uniform share and the key count.
    #[test]
    fn keymax_is_bounded(keys in 1u64..1_000_000, nodes in 1u64..512) {
        let km = keymax(keys as f64, nodes);
        prop_assert!(km >= keys as f64 / nodes as f64 - 1e-9);
        prop_assert!(km <= keys as f64 + 1e-9);
        // The two formulations agree.
        prop_assert!((km - expected_max_load(keys, nodes)).abs() < 1e-9);
    }

    /// More keys can only improve (reduce) the relative imbalance; more
    /// nodes can only worsen it.
    #[test]
    fn imbalance_monotonicity(keys in 10u64..100_000, nodes in 2u64..128) {
        let p = imbalance_ratio(keys, nodes);
        prop_assert!(imbalance_ratio(keys * 2, nodes) <= p + 1e-12);
        prop_assert!(imbalance_ratio(keys, nodes + 1) >= p - 1e-12);
    }

    /// Ball throws conserve the ball count for every placement scheme.
    #[test]
    fn throws_conserve(balls in 0u64..5_000, bins in 1usize..64, seed in any::<u64>(),
                       d in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for placement in [Placement::SingleChoice, Placement::DChoice(d)] {
            let counts = throw_once(balls, bins, placement, &mut rng);
            prop_assert_eq!(counts.iter().sum::<u64>(), balls);
            prop_assert_eq!(counts.len(), bins);
        }
    }

    /// Ring lookups route every key to a live node, and the same key always
    /// routes identically.
    #[test]
    fn ring_routes_to_live_nodes(nodes in 1u32..48, vnodes in 1usize..64,
                                 keys in proptest::collection::vec(any::<u64>(), 1..50)) {
        let ring = HashRing::with_nodes(nodes, vnodes);
        for &k in &keys {
            let owner = ring.node_for_key(&k.to_le_bytes());
            prop_assert!(owner.0 < nodes);
            prop_assert_eq!(owner, ring.node_for_key(&k.to_le_bytes()));
        }
    }

    /// Removing an unrelated node never moves a key between the survivors
    /// (the consistency property of consistent hashing).
    #[test]
    fn ring_minimal_disruption(nodes in 3u32..32, victim in 0u32..32,
                               keys in proptest::collection::vec(any::<u64>(), 1..40)) {
        let victim = victim % nodes;
        let mut ring = HashRing::with_nodes(nodes, 32);
        let before: Vec<NodeId> = keys.iter().map(|k| ring.node_for_key(&k.to_le_bytes())).collect();
        ring.remove_node(NodeId(victim));
        for (k, owner_before) in keys.iter().zip(before) {
            let after = ring.node_for_key(&k.to_le_bytes());
            if owner_before != NodeId(victim) {
                prop_assert_eq!(after, owner_before, "key {} moved needlessly", k);
            } else {
                prop_assert!(after != NodeId(victim));
            }
        }
    }

    /// Replica sets are duplicate-free, primary-led, and of the right size.
    #[test]
    fn replicas_well_formed(nodes in 1u32..24, rf in 1usize..6, key in any::<u64>()) {
        let ring = HashRing::with_nodes(nodes, 32);
        let reps = ring.replicas_for_key(&key.to_le_bytes(), rf);
        prop_assert_eq!(reps.len(), rf.min(nodes as usize));
        prop_assert_eq!(reps[0], ring.node_for_key(&key.to_le_bytes()));
        let mut dedup = reps.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), reps.len());
    }

    /// Token-space ownership always sums to 1 and every node owns > 0.
    #[test]
    fn ownership_partitions_unit(nodes in 1u32..32, vnodes in 4usize..128) {
        let ring = HashRing::with_nodes(nodes, vnodes);
        let own = ring.ownership();
        let total: f64 = own.values().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (&node, &frac) in &own {
            prop_assert!(frac > 0.0, "node {node} owns nothing");
        }
    }
}
