//! Closed-form imbalance bounds for the heavily loaded balls-into-bins case.
//!
//! Throwing `m` keys uniformly at random into `n` nodes, with `m ≫ n`
//! (always true for a DHT holding many partitions), Berenbrink et al. show
//! the most loaded node receives `m/n + O(sqrt(m·ln n / n))` keys with high
//! probability. The paper expresses the same bound two ways:
//!
//! * **Formula 1** — as a *ratio* over the perfectly balanced share:
//!   `p ≈ sqrt(ln n · n / m)`.
//! * **Formula 5** — as an absolute key count `key_max`.
//!
//! Note on the paper's typesetting: Formula 5 is printed as
//! `keys/n + sqrt(keys·log(n))/n`, which is inconsistent with Formula 1 by a
//! factor of `sqrt(n)` (and with the Berenbrink bound it cites, and with the
//! paper's own Figure 3, where the predicted max load for 100 keys on 16
//! nodes is ≈ 10.4, not 7.3). We implement the consistent form
//! `keys/n + sqrt(keys·ln n / n)`, which reproduces every number in the
//! paper (§II: 34 % / 0.5 % / 0.015 %; Figure 3's marker; §VII's optimizer
//! behaviour).

/// Formula 1: the expected *relative* excess load of the most loaded node,
/// `p ≈ sqrt(ln n · n / m)`, where `m` is the number of keys and `n` the
/// number of nodes.
///
/// `p = 0.34` means the most loaded node holds ~34 % more keys than the
/// perfectly uniform share `m/n`. Returns `0` for `n ≤ 1` (a single node is
/// trivially balanced) and `+∞` when there are no keys but several nodes
/// would still need one.
///
/// ```
/// use kvs_balance::formula::imbalance_ratio;
/// // The paper's §II example: 200 country codes over 10 servers → ≈ 34 %.
/// let p = imbalance_ratio(200, 10);
/// assert!((p - 0.339).abs() < 0.001);
/// ```
pub fn imbalance_ratio(keys: u64, nodes: u64) -> f64 {
    if nodes <= 1 {
        return 0.0;
    }
    if keys == 0 {
        return f64::INFINITY;
    }
    let n = nodes as f64;
    let m = keys as f64;
    (n.ln() * n / m).sqrt()
}

/// Formula 5 (corrected, see module docs): the expected number of keys on
/// the most loaded of `nodes` nodes when `keys` keys are placed uniformly at
/// random: `keys/n + sqrt(keys·ln n / n)`.
///
/// ```
/// use kvs_balance::formula::keymax;
/// // 100 keys on 16 nodes (the paper's coarse-grained workload):
/// // 6.25 + sqrt(100·ln 16 / 16) ≈ 10.4 — the green marker of Figure 3.
/// let k = keymax(100.0, 16);
/// assert!((k - 10.41).abs() < 0.05);
/// ```
pub fn keymax(keys: f64, nodes: u64) -> f64 {
    if nodes == 0 {
        return 0.0;
    }
    if nodes == 1 {
        return keys;
    }
    let n = nodes as f64;
    if keys <= 0.0 {
        return 0.0;
    }
    keys / n + (keys * n.ln() / n).sqrt()
}

/// The expected max load expressed through Formula 1:
/// `(m/n)·(1 + p)` — algebraically identical to [`keymax`].
pub fn expected_max_load(keys: u64, nodes: u64) -> f64 {
    if nodes <= 1 {
        return keys as f64;
    }
    let share = keys as f64 / nodes as f64;
    let p = imbalance_ratio(keys, nodes);
    if p.is_infinite() {
        0.0
    } else {
        share * (1.0 + p)
    }
}

/// Inverse problem: the minimum number of keys needed so that the expected
/// relative imbalance stays at or below `target_p` on `nodes` nodes
/// (solving Formula 1 for `m`). Returns `None` when `target_p ≤ 0`.
pub fn keys_for_imbalance(target_p: f64, nodes: u64) -> Option<u64> {
    if target_p <= 0.0 {
        return None;
    }
    if nodes <= 1 {
        return Some(1);
    }
    let n = nodes as f64;
    let m = n.ln() * n / (target_p * target_p);
    Some(m.ceil() as u64)
}

/// The theoretical max-load gap of the *power of two choices* scheme
/// (Mitzenmacher; paper §VIII): `m/n + O(ln ln n)`. We expose the dominant
/// term with unit constant — useful for order-of-magnitude comparisons in
/// the related-work benches, not as a sharp bound.
pub fn two_choice_max_load(keys: f64, nodes: u64) -> f64 {
    if nodes <= 1 {
        return keys;
    }
    let n = nodes as f64;
    keys / n + n.ln().max(1.0).ln().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section2_phone_example() {
        // 200 countries on 10 nodes → ≈ 34 %.
        assert!((imbalance_ratio(200, 10) - 0.3393).abs() < 5e-4);
        // ~1 M cities → ≈ 0.48 %, the paper rounds to 0.5 %.
        assert!((imbalance_ratio(1_000_000, 10) * 100.0 - 0.48).abs() < 0.01);
        // ~1 B subscribers → ≈ 0.015 %.
        assert!((imbalance_ratio(1_000_000_000, 10) * 100.0 - 0.0152).abs() < 0.0005);
    }

    #[test]
    fn paper_section2_city_example() {
        // Half the load lives in the 500 biggest cities: applying the
        // formula to those 500 hot keys gives the paper's 21 % on 10 nodes
        // and 35 % after doubling to 20 nodes.
        assert!((imbalance_ratio(500, 10) - 0.2146).abs() < 5e-4);
        assert!((imbalance_ratio(500, 20) - 0.3461).abs() < 5e-4);
    }

    #[test]
    fn figure3_marker() {
        // 100 keys on 16 nodes: expected max load ≈ 10.4 (the paper observed
        // 10 and notes 60 % of trials are worse).
        let k = keymax(100.0, 16);
        assert!((k - 10.41).abs() < 0.05, "{k}");
    }

    #[test]
    fn keymax_equals_expected_max_load() {
        for &(m, n) in &[(100u64, 16u64), (1000, 16), (10_000, 8), (77, 3)] {
            let a = keymax(m as f64, n);
            let b = expected_max_load(m, n);
            assert!((a - b).abs() < 1e-9, "m={m} n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn single_node_is_trivially_balanced() {
        assert_eq!(imbalance_ratio(1000, 1), 0.0);
        assert_eq!(keymax(1000.0, 1), 1000.0);
        assert_eq!(expected_max_load(1000, 1), 1000.0);
    }

    #[test]
    fn zero_keys_edge_cases() {
        assert!(imbalance_ratio(0, 10).is_infinite());
        assert_eq!(keymax(0.0, 10), 0.0);
        assert_eq!(expected_max_load(0, 10), 0.0);
    }

    #[test]
    fn imbalance_decreases_with_keys_increases_with_nodes() {
        assert!(imbalance_ratio(1_000, 10) < imbalance_ratio(100, 10));
        assert!(imbalance_ratio(1_000, 20) > imbalance_ratio(1_000, 10));
    }

    #[test]
    fn keys_for_imbalance_inverts_formula1() {
        let m = keys_for_imbalance(0.05, 16).unwrap();
        let p = imbalance_ratio(m, 16);
        assert!(p <= 0.05, "p={p} for m={m}");
        // One key less should violate the target (up to ceil rounding).
        let p_less = imbalance_ratio(m.saturating_sub(2), 16);
        assert!(p_less > 0.05);
        assert_eq!(keys_for_imbalance(0.0, 16), None);
        assert_eq!(keys_for_imbalance(0.5, 1), Some(1));
    }

    #[test]
    fn two_choice_is_far_flatter() {
        // With 10 000 keys on 100 nodes, single choice adds ~ sqrt(m ln n /n)
        // ≈ 21 keys over the share; two-choice adds ~ln ln n ≈ 1.5.
        let single = keymax(10_000.0, 100) - 100.0;
        let double = two_choice_max_load(10_000.0, 100) - 100.0;
        assert!(double < single / 5.0, "single={single} double={double}");
    }
}
