//! A consistent-hash ring with virtual nodes — the DHT placement substrate.
//!
//! This mirrors Cassandra's random partitioner: every partition key is
//! hashed onto a 64-bit token ring; each physical node owns the arcs ending
//! at its tokens. Virtual nodes (multiple tokens per physical node) smooth
//! the arc-length imbalance; key-count imbalance on top of that is exactly
//! what [`crate::formula`] quantifies.

use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a physical node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Nodes print as letters (A, B, …) like the paper's figures, falling
        // back to numbers past 26 nodes.
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "N{}", self.0)
        }
    }
}

/// Hashes arbitrary key bytes onto the token ring (FNV-1a with a SplitMix64
/// finalizer — stable across platforms and runs).
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix(h)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring: sorted vnode tokens → owning node.
///
/// ```
/// use kvs_balance::HashRing;
///
/// let ring = HashRing::with_nodes(8, 128);
/// let owner = ring.node_for_key(b"cube-42");
/// assert_eq!(owner, ring.node_for_key(b"cube-42")); // deterministic
/// let replicas = ring.replicas_for_key(b"cube-42", 3);
/// assert_eq!(replicas.len(), 3);
/// assert_eq!(replicas[0], owner);
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    /// token → node, kept sorted by token (BTreeMap gives us successor
    /// queries for free).
    tokens: BTreeMap<u64, NodeId>,
    nodes: BTreeSet<NodeId>,
    vnodes_per_node: usize,
}

impl HashRing {
    /// Creates an empty ring with `vnodes_per_node` tokens per node.
    ///
    /// # Panics
    /// If `vnodes_per_node` is zero.
    pub fn new(vnodes_per_node: usize) -> Self {
        assert!(vnodes_per_node > 0, "need at least one vnode per node");
        HashRing {
            tokens: BTreeMap::new(),
            nodes: BTreeSet::new(),
            vnodes_per_node,
        }
    }

    /// Builds a ring containing nodes `0..n`.
    pub fn with_nodes(n: u32, vnodes_per_node: usize) -> Self {
        let mut ring = Self::new(vnodes_per_node);
        for i in 0..n {
            ring.add_node(NodeId(i));
        }
        ring
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Adds a node (idempotent), placing its vnode tokens deterministically.
    pub fn add_node(&mut self, node: NodeId) {
        if !self.nodes.insert(node) {
            return;
        }
        for v in 0..self.vnodes_per_node {
            let token = vnode_token(node, v as u64);
            // Token collisions across vnodes are astronomically unlikely but
            // handled: probe linearly so no vnode silently disappears.
            let mut t = token;
            while self.tokens.contains_key(&t) {
                t = t.wrapping_add(1);
            }
            self.tokens.insert(t, node);
        }
    }

    /// Removes a node and all its tokens (idempotent).
    pub fn remove_node(&mut self, node: NodeId) {
        if !self.nodes.remove(&node) {
            return;
        }
        self.tokens.retain(|_, n| *n != node);
    }

    /// The node owning `hash`: the owner of the first token at or after it,
    /// wrapping around the ring.
    ///
    /// # Panics
    /// If the ring is empty.
    pub fn node_for_hash(&self, hash: u64) -> NodeId {
        assert!(!self.tokens.is_empty(), "lookup on an empty ring");
        self.tokens
            .range(hash..)
            .next()
            .or_else(|| self.tokens.iter().next())
            .map(|(_, &n)| n)
            .expect("non-empty ring has a first token")
    }

    /// The node owning a key (hash + lookup).
    pub fn node_for_key(&self, key: &[u8]) -> NodeId {
        self.node_for_hash(hash_key(key))
    }

    /// The `rf` replica nodes for a key: the owner plus the next distinct
    /// nodes walking clockwise (Cassandra's SimpleStrategy). Returns fewer
    /// than `rf` nodes when the cluster is smaller than `rf`.
    pub fn replicas_for_key(&self, key: &[u8], rf: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(rf.min(self.nodes.len()));
        if self.tokens.is_empty() || rf == 0 {
            return out;
        }
        let start = hash_key(key);
        // Walk the ring once: tokens at or after the hash, then wrap.
        for (_, &node) in self.tokens.range(start..).chain(self.tokens.iter()) {
            if !out.contains(&node) {
                out.push(node);
                if out.len() == rf.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }

    /// Fraction of the token space each node owns (sums to 1).
    pub fn ownership(&self) -> BTreeMap<NodeId, f64> {
        let mut out: BTreeMap<NodeId, f64> = self.nodes.iter().map(|&n| (n, 0.0)).collect();
        if self.tokens.is_empty() {
            return out;
        }
        let entries: Vec<(u64, NodeId)> = self.tokens.iter().map(|(&t, &n)| (t, n)).collect();
        let total = u64::MAX as f64;
        for i in 0..entries.len() {
            let (token, node) = entries[i];
            let prev = if i == 0 {
                entries[entries.len() - 1].0
            } else {
                entries[i - 1].0
            };
            // Arc (prev, token]; wraps for the first entry.
            let arc = token.wrapping_sub(prev) as f64;
            *out.get_mut(&node).expect("node present") += arc / total;
        }
        out
    }
}

/// Measures the fraction of `sample_keys` whose owner changes when one
/// node is added to a ring of `nodes` — the consistent-hashing elasticity
/// metric (ideal: `1/(n+1)` of the keys move, all of them *to* the new
/// node).
pub fn rebalance_fraction_on_add(nodes: u32, vnodes_per_node: usize, sample_keys: u64) -> f64 {
    assert!(nodes > 0 && sample_keys > 0);
    let before = HashRing::with_nodes(nodes, vnodes_per_node);
    let mut after = before.clone();
    after.add_node(NodeId(nodes));
    let mut moved = 0u64;
    for k in 0..sample_keys {
        let key = k.to_le_bytes();
        let old = before.node_for_key(&key);
        let new = after.node_for_key(&key);
        if old != new {
            // Consistent hashing guarantees movement only toward the new
            // node; anything else is a ring bug.
            assert_eq!(new, NodeId(nodes), "key moved between old nodes");
            moved += 1;
        }
    }
    moved as f64 / sample_keys as f64
}

fn vnode_token(node: NodeId, vnode: u64) -> u64 {
    let node_hash = splitmix(node.0 as u64 ^ 0xDEAD_BEEF_CAFE_F00D);
    splitmix(node_hash.wrapping_add(vnode.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_deterministic() {
        let ring = HashRing::with_nodes(8, 64);
        let a = ring.node_for_key(b"partition-42");
        let b = ring.node_for_key(b"partition-42");
        assert_eq!(a, b);
    }

    #[test]
    fn keys_spread_over_all_nodes() {
        let ring = HashRing::with_nodes(8, 64);
        let mut seen = BTreeSet::new();
        for i in 0..1000 {
            seen.insert(ring.node_for_key(format!("k{i}").as_bytes()));
        }
        assert_eq!(seen.len(), 8, "all nodes should receive keys");
    }

    #[test]
    fn ownership_sums_to_one_and_is_roughly_uniform() {
        let ring = HashRing::with_nodes(16, 256);
        let own = ring.ownership();
        let total: f64 = own.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (&node, &frac) in &own {
            // With 256 vnodes the arc share concentrates near 1/16 ≈ 6.25 %.
            assert!(
                (frac - 1.0 / 16.0).abs() < 0.03,
                "node {node} owns {frac:.4}"
            );
        }
    }

    #[test]
    fn more_vnodes_reduce_ownership_spread() {
        let spread = |vnodes: usize| {
            let own = HashRing::with_nodes(8, vnodes).ownership();
            let max = own.values().cloned().fold(0.0f64, f64::max);
            let min = own.values().cloned().fold(1.0f64, f64::min);
            max - min
        };
        assert!(spread(512) < spread(4));
    }

    #[test]
    fn add_remove_node_is_consistent() {
        let mut ring = HashRing::with_nodes(4, 32);
        let before = ring.node_for_key(b"stable");
        ring.add_node(NodeId(99));
        ring.remove_node(NodeId(99));
        assert_eq!(ring.node_for_key(b"stable"), before);
        assert_eq!(ring.len(), 4);
        // Idempotency.
        ring.add_node(NodeId(1));
        assert_eq!(ring.len(), 4);
        ring.remove_node(NodeId(77));
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn removing_node_moves_only_its_keys() {
        let mut ring = HashRing::with_nodes(8, 64);
        let keys: Vec<String> = (0..500).map(|i| format!("k{i}")).collect();
        let before: Vec<NodeId> = keys
            .iter()
            .map(|k| ring.node_for_key(k.as_bytes()))
            .collect();
        ring.remove_node(NodeId(3));
        for (k, &owner_before) in keys.iter().zip(&before) {
            let owner_after = ring.node_for_key(k.as_bytes());
            if owner_before != NodeId(3) {
                assert_eq!(owner_after, owner_before, "key {k} moved needlessly");
            } else {
                assert_ne!(owner_after, NodeId(3));
            }
        }
    }

    #[test]
    fn replicas_are_distinct_and_led_by_owner() {
        let ring = HashRing::with_nodes(8, 64);
        for i in 0..100 {
            let key = format!("k{i}");
            let reps = ring.replicas_for_key(key.as_bytes(), 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.node_for_key(key.as_bytes()));
            let set: BTreeSet<_> = reps.iter().collect();
            assert_eq!(set.len(), 3, "duplicate replica for {key}");
        }
    }

    #[test]
    fn rf_larger_than_cluster_returns_all_nodes() {
        let ring = HashRing::with_nodes(3, 16);
        let reps = ring.replicas_for_key(b"k", 5);
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn empty_and_degenerate_rings() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert!(ring.replicas_for_key(b"k", 2).is_empty());
        let mut one = HashRing::new(8);
        one.add_node(NodeId(0));
        assert_eq!(one.node_for_key(b"anything"), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn lookup_on_empty_ring_panics() {
        HashRing::new(8).node_for_hash(42);
    }

    #[test]
    fn adding_a_node_moves_about_one_share() {
        // Growing 8 → 9 nodes should move ≈ 1/9 of the keys, all to the
        // newcomer.
        let moved = rebalance_fraction_on_add(8, 128, 5_000);
        let ideal = 1.0 / 9.0;
        assert!(
            (moved - ideal).abs() < ideal * 0.5,
            "moved {:.3} vs ideal {:.3}",
            moved,
            ideal
        );
    }

    #[test]
    fn display_names_match_paper_style() {
        assert_eq!(NodeId(0).to_string(), "A");
        assert_eq!(NodeId(6).to_string(), "G");
        assert_eq!(NodeId(30).to_string(), "N30");
    }
}
