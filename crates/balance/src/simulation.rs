//! Monte-Carlo balls-into-bins: empirical max-load distributions.
//!
//! Figure 3 of the paper is produced exactly this way: "we generated the
//! graph with brute-force by distributing at random 100 keys between 16
//! nodes and recording how many keys fell in the most loaded node".

use rand::Rng;

/// How a ball picks its bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Uniform single choice — what a DHT's hash partitioner does.
    SingleChoice,
    /// Pick `d` bins uniformly, place in the least loaded (Mitzenmacher's
    /// "power of d choices"). `TwoChoice` is the classic `d = 2`.
    DChoice(usize),
}

impl Placement {
    /// The classic power-of-two-choices scheme.
    pub const TWO_CHOICE: Placement = Placement::DChoice(2);
}

/// Distributes `balls` into `bins` once and returns the per-bin counts.
pub fn throw_once<R: Rng + ?Sized>(
    balls: u64,
    bins: usize,
    placement: Placement,
    rng: &mut R,
) -> Vec<u64> {
    assert!(bins > 0, "need at least one bin");
    let mut counts = vec![0u64; bins];
    for _ in 0..balls {
        let target = match placement {
            Placement::SingleChoice => rng.gen_range(0..bins),
            Placement::DChoice(d) => {
                assert!(d >= 1, "d-choice needs d ≥ 1");
                let mut best = rng.gen_range(0..bins);
                for _ in 1..d {
                    let cand = rng.gen_range(0..bins);
                    if counts[cand] < counts[best] {
                        best = cand;
                    }
                }
                best
            }
        };
        counts[target] += 1;
    }
    counts
}

/// The max-load of a single trial.
pub fn max_load_once<R: Rng + ?Sized>(
    balls: u64,
    bins: usize,
    placement: Placement,
    rng: &mut R,
) -> u64 {
    throw_once(balls, bins, placement, rng)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// Empirical probability density of the most-loaded-bin count.
#[derive(Debug, Clone)]
pub struct MaxLoadDensity {
    /// `counts[load]` = number of trials whose max load was exactly `load`.
    pub counts: Vec<u64>,
    /// Number of trials run.
    pub trials: u64,
    /// Number of balls per trial.
    pub balls: u64,
    /// Number of bins per trial.
    pub bins: usize,
}

impl MaxLoadDensity {
    /// Probability that the max load equals `load`.
    pub fn pdf(&self, load: usize) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.counts.get(load).copied().unwrap_or(0) as f64 / self.trials as f64
    }

    /// Probability that the max load is strictly greater than `load` —
    /// the paper's "in 60 % of the cases we would have a more unbalanced
    /// scenario" statement about its observed value of 10.
    pub fn prob_worse_than(&self, load: u64) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let worse: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(l, _)| *l as u64 > load)
            .map(|(_, c)| c)
            .sum();
        worse as f64 / self.trials as f64
    }

    /// Mean of the empirical max-load distribution.
    pub fn mean(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(l, &c)| l as f64 * c as f64)
            .sum();
        sum / self.trials as f64
    }

    /// The most probable max load (argmax of the pdf).
    pub fn mode(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(l, _)| l as u64)
            .unwrap_or(0)
    }

    /// Iterates `(load, probability)` over loads with non-zero density.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let trials = self.trials.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(l, &c)| (l as u64, c as f64 / trials))
    }
}

/// Brute-forces the max-load density over `trials` independent trials
/// (Figure 3 uses `balls = 100`, `bins = 16`).
pub fn max_load_density<R: Rng + ?Sized>(
    balls: u64,
    bins: usize,
    placement: Placement,
    trials: u64,
    rng: &mut R,
) -> MaxLoadDensity {
    let mut counts = vec![0u64; balls as usize + 1];
    for _ in 0..trials {
        let max = max_load_once(balls, bins, placement, rng) as usize;
        counts[max] += 1;
    }
    MaxLoadDensity {
        counts,
        trials,
        balls,
        bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn throw_conserves_balls() {
        let mut r = rng(1);
        for placement in [Placement::SingleChoice, Placement::TWO_CHOICE] {
            let counts = throw_once(1000, 16, placement, &mut r);
            assert_eq!(counts.iter().sum::<u64>(), 1000);
            assert_eq!(counts.len(), 16);
        }
    }

    #[test]
    fn one_bin_gets_everything() {
        let mut r = rng(2);
        assert_eq!(throw_once(57, 1, Placement::SingleChoice, &mut r), vec![57]);
        assert_eq!(max_load_once(57, 1, Placement::TWO_CHOICE, &mut r), 57);
    }

    #[test]
    fn zero_balls_is_fine() {
        let mut r = rng(3);
        assert_eq!(max_load_once(0, 4, Placement::SingleChoice, &mut r), 0);
        let d = max_load_density(0, 4, Placement::SingleChoice, 10, &mut r);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.mode(), 0);
        assert_eq!(d.pdf(0), 1.0);
    }

    #[test]
    fn density_sums_to_one() {
        let mut r = rng(4);
        let d = max_load_density(100, 16, Placement::SingleChoice, 2000, &mut r);
        let total: f64 = d.points().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(d.trials, 2000);
    }

    #[test]
    fn empirical_mean_tracks_formula1_prediction() {
        // The paper's Figure 3 setting: 100 keys, 16 nodes. The formula
        // predicts a max load ≈ 10.4; the empirical mean should be within
        // one key of it.
        let mut r = rng(5);
        let d = max_load_density(100, 16, Placement::SingleChoice, 20_000, &mut r);
        let predicted = formula::keymax(100.0, 16);
        assert!(
            (d.mean() - predicted).abs() < 1.0,
            "empirical {} vs predicted {}",
            d.mean(),
            predicted
        );
        // Max load can never be below the ceiling of the perfect share.
        assert!(d.points().all(|(l, _)| l >= 7));
    }

    #[test]
    fn paper_sixty_percent_worse_claim() {
        // "in 60 % of the cases we would have a more unbalanced scenario"
        // than the observed max load of 10... i.e. P(max > 10) ≈ 0.6 with
        // P(max ≥ 10). We verify the looser, directly-stated version:
        // observing 10 was not unlucky — at least half the trials are ≥ 10.
        let mut r = rng(6);
        let d = max_load_density(100, 16, Placement::SingleChoice, 20_000, &mut r);
        let at_least_10 = d.prob_worse_than(9);
        assert!(at_least_10 > 0.5, "P(max ≥ 10) = {at_least_10}");
    }

    #[test]
    fn two_choices_beat_one() {
        let mut r = rng(7);
        let single = max_load_density(10_000, 64, Placement::SingleChoice, 200, &mut r);
        let double = max_load_density(10_000, 64, Placement::TWO_CHOICE, 200, &mut r);
        assert!(
            double.mean() < single.mean(),
            "two-choice {} should beat single {}",
            double.mean(),
            single.mean()
        );
        // d = 3 is at least as good as d = 2 (within noise).
        let triple = max_load_density(10_000, 64, Placement::DChoice(3), 200, &mut r);
        assert!(triple.mean() <= double.mean() + 0.5);
    }

    #[test]
    fn prob_worse_than_is_monotone() {
        let mut r = rng(8);
        let d = max_load_density(100, 16, Placement::SingleChoice, 5_000, &mut r);
        let mut prev = 1.0;
        for load in 6..20 {
            let p = d.prob_worse_than(load);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }
}
