//! Weighted keys: when partitions are not the same size.
//!
//! The paper's §II phone-book example: grouping by city gives ~1 M keys —
//! plenty for a uniform *key count* — but "some cities are much bigger than
//! others. About half of the population lives in the 500 most populated
//! cities", so the *load* is still dominated by few heavy keys and the
//! effective cardinality is far lower than 1 M.

use rand::Rng;

/// Generates Zipf-like weights `w_i ∝ 1 / i^s` for `n` keys, normalized to
/// sum to 1. `s = 1` is the classic city-size law.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one key");
    let mut w: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(s)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// The number of heaviest keys that together carry `fraction` of the total
/// weight (weights need not be sorted; they are cloned and sorted here).
pub fn keys_carrying_fraction(weights: &[f64], fraction: f64) -> usize {
    let mut sorted = weights.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("NaN weight"));
    let total: f64 = sorted.iter().sum();
    let target = total * fraction.clamp(0.0, 1.0);
    let mut acc = 0.0;
    for (i, w) in sorted.iter().enumerate() {
        acc += w;
        if acc >= target {
            return i + 1;
        }
    }
    sorted.len()
}

/// The *effective key count* of a weighted distribution: `1 / Σ w_i²`
/// (inverse Simpson index). Equal weights give `n`; a single dominant key
/// gives ~1. This is the cardinality to feed into Formula 1 when keys carry
/// unequal load.
pub fn effective_keys(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let sum_sq: f64 = weights.iter().map(|w| (w / total) * (w / total)).sum();
    if sum_sq == 0.0 {
        0.0
    } else {
        1.0 / sum_sq
    }
}

/// One Monte-Carlo trial: place each weighted key uniformly at random on a
/// node; return the per-node total weight.
pub fn place_weighted_once<R: Rng + ?Sized>(
    weights: &[f64],
    nodes: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(nodes > 0, "need at least one node");
    let mut load = vec![0.0f64; nodes];
    for &w in weights {
        load[rng.gen_range(0..nodes)] += w;
    }
    load
}

/// Result of a weighted imbalance Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct WeightedImbalance {
    /// Mean over trials of (max node load / mean node load) − 1.
    pub mean_relative_excess: f64,
    /// Worst relative excess observed over all trials.
    pub worst_relative_excess: f64,
    /// Number of trials.
    pub trials: u64,
}

/// Estimates the relative excess load of the most loaded node when
/// `weights` keys are placed uniformly at random on `nodes` nodes.
pub fn weighted_imbalance<R: Rng + ?Sized>(
    weights: &[f64],
    nodes: usize,
    trials: u64,
    rng: &mut R,
) -> WeightedImbalance {
    assert!(trials > 0, "need at least one trial");
    let total: f64 = weights.iter().sum();
    let mean_load = total / nodes as f64;
    let mut sum_excess = 0.0;
    let mut worst = 0.0f64;
    for _ in 0..trials {
        let loads = place_weighted_once(weights, nodes, rng);
        let max = loads.iter().fold(0.0f64, |a, &b| a.max(b));
        let excess = if mean_load > 0.0 {
            max / mean_load - 1.0
        } else {
            0.0
        };
        sum_excess += excess;
        worst = worst.max(excess);
    }
    WeightedImbalance {
        mean_relative_excess: sum_excess / trials as f64,
        worst_relative_excess: worst,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::imbalance_ratio;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zipf_weights_normalize_and_decrease() {
        let w = zipf_weights(1000, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        assert!(w[0] > w[999] * 100.0);
    }

    #[test]
    fn uniform_weights_effective_keys_is_n() {
        let w = vec![0.25; 4];
        assert!((effective_keys(&w) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dominant_key_effective_keys_is_one() {
        let mut w = vec![1e-9; 99];
        w.push(1.0);
        assert!(effective_keys(&w) < 1.01);
    }

    #[test]
    fn effective_keys_degenerate() {
        assert_eq!(effective_keys(&[]), 0.0);
        assert_eq!(effective_keys(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn keys_carrying_fraction_half() {
        // Zipf(1) over many keys concentrates: far fewer than half the keys
        // carry half the weight.
        let w = zipf_weights(100_000, 1.0);
        let k = keys_carrying_fraction(&w, 0.5);
        assert!(k < 5_000, "half the load in {k} keys");
        assert_eq!(keys_carrying_fraction(&w, 0.0), 1);
        assert_eq!(keys_carrying_fraction(&w, 1.0), 100_000);
    }

    #[test]
    fn placement_conserves_weight() {
        let w = zipf_weights(500, 1.0);
        let loads = place_weighted_once(&w, 10, &mut rng(1));
        assert!((loads.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(loads.len(), 10);
    }

    #[test]
    fn paper_city_numbers() {
        // The paper reduces the weighted city problem to "the 500 heaviest
        // keys carry half the load" and applies Formula 1 to those 500:
        // 21 % on 10 nodes, 35 % on 20. Check the reduction itself, and
        // that a Monte-Carlo run with 500 equal hot keys agrees.
        assert!((imbalance_ratio(500, 10) - 0.21).abs() < 0.01);
        assert!((imbalance_ratio(500, 20) - 0.35).abs() < 0.01);
        let hot = vec![1.0; 500];
        let sim10 = weighted_imbalance(&hot, 10, 300, &mut rng(2));
        assert!(
            (sim10.mean_relative_excess - 0.21).abs() < 0.06,
            "10 nodes: {}",
            sim10.mean_relative_excess
        );
        let sim20 = weighted_imbalance(&hot, 20, 300, &mut rng(3));
        assert!(
            sim20.mean_relative_excess > sim10.mean_relative_excess,
            "doubling nodes must worsen imbalance"
        );
    }

    #[test]
    fn skew_worsens_imbalance_vs_uniform() {
        let uniform = vec![1.0; 10_000];
        let skewed_w = zipf_weights(10_000, 1.0);
        let u = weighted_imbalance(&uniform, 16, 100, &mut rng(4));
        let s = weighted_imbalance(&skewed_w, 16, 100, &mut rng(5));
        assert!(
            s.mean_relative_excess > u.mean_relative_excess * 2.0,
            "skewed {} vs uniform {}",
            s.mean_relative_excess,
            u.mean_relative_excess
        );
    }

    #[test]
    fn worst_is_at_least_mean() {
        let w = zipf_weights(100, 1.0);
        let r = weighted_imbalance(&w, 8, 50, &mut rng(6));
        assert!(r.worst_relative_excess >= r.mean_relative_excess);
        assert_eq!(r.trials, 50);
    }
}
