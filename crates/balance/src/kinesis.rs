//! Kinesis-style `r`-of-`k` multi-choice placement (paper §VIII).
//!
//! MacCormick et al.'s Kinesis hashes every item to `k` candidate servers
//! and stores `r` replicas on the *least loaded* of them. Storage balance
//! improves to the multiple-choice regime, but a reader who only knows the
//! key must consult all `k` candidates — the paper's caveat that "this might
//! result in reducing `k` times the performance as database systems are
//! often limited by the CPU".

use crate::hashing::{hash_key, NodeId};
use rand::Rng;

/// A Kinesis-style placement domain over `n` servers.
#[derive(Debug, Clone)]
pub struct Kinesis {
    servers: usize,
    /// Number of candidate servers per key.
    pub k: usize,
    /// Number of replicas actually stored.
    pub r: usize,
    /// Current per-server load (stored replica count).
    load: Vec<u64>,
}

impl Kinesis {
    /// Creates a placement domain.
    ///
    /// # Panics
    /// If `r > k`, `r == 0`, or `k > servers` — all configuration bugs.
    pub fn new(servers: usize, k: usize, r: usize) -> Self {
        assert!(r >= 1 && r <= k, "need 1 ≤ r ≤ k");
        assert!(k <= servers, "need k ≤ servers");
        Kinesis {
            servers,
            k,
            r,
            load: vec![0; servers],
        }
    }

    /// The `k` candidate servers for a key: k independent hash functions,
    /// resolved to distinct servers by linear probing.
    pub fn candidates(&self, key: &[u8]) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.k);
        let mut salt = 0u64;
        while out.len() < self.k {
            let mut h = hash_key(key) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 33;
            let mut idx = (h % self.servers as u64) as usize;
            while out.contains(&NodeId(idx as u32)) {
                idx = (idx + 1) % self.servers;
            }
            out.push(NodeId(idx as u32));
            salt += 1;
        }
        out
    }

    /// Writes a key: stores `r` replicas on the least-loaded candidates.
    /// Returns the chosen servers.
    pub fn write(&mut self, key: &[u8]) -> Vec<NodeId> {
        let mut cands = self.candidates(key);
        cands.sort_by_key(|n| (self.load[n.0 as usize], n.0));
        let chosen: Vec<NodeId> = cands.into_iter().take(self.r).collect();
        for n in &chosen {
            self.load[n.0 as usize] += 1;
        }
        chosen
    }

    /// Reads a key: the reader does not know which `r` of the `k` candidates
    /// hold it, so it must consult all `k`. Returns `(servers_probed,
    /// servers_holding_data)`.
    pub fn read(&self, key: &[u8]) -> (usize, Vec<NodeId>) {
        let cands = self.candidates(key);
        // We cannot know the true holders without the write log; the model
        // layer only needs the probe fan-out, but for tests we recompute the
        // same least-loaded choice *at current load*, which is what a
        // freshly consistent directory would return.
        (cands.len(), cands)
    }

    /// Per-server replica counts.
    pub fn loads(&self) -> &[u64] {
        &self.load
    }

    /// Max / mean load ratio − 1 (relative excess of the fullest server).
    pub fn relative_excess(&self) -> f64 {
        let total: u64 = self.load.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.servers as f64;
        let max = *self.load.iter().max().expect("non-empty") as f64;
        max / mean - 1.0
    }

    /// Read amplification relative to single-choice placement: a reader
    /// probes `k` servers instead of 1.
    pub fn read_amplification(&self) -> usize {
        self.k
    }
}

/// Baseline for comparison: single-choice placement of the same keys with
/// `r` replicas on consecutive ring successors. Returns per-server loads.
pub fn single_choice_loads<R: Rng + ?Sized>(
    servers: usize,
    keys: u64,
    r: usize,
    rng: &mut R,
) -> Vec<u64> {
    let mut load = vec![0u64; servers];
    for _ in 0..keys {
        let first = rng.gen_range(0..servers);
        for j in 0..r.min(servers) {
            load[(first + j) % servers] += 1;
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn candidates_are_distinct_and_stable() {
        let k = Kinesis::new(16, 4, 2);
        let c1 = k.candidates(b"item-7");
        let c2 = k.candidates(b"item-7");
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), 4);
        let set: std::collections::BTreeSet<_> = c1.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn write_stores_r_replicas() {
        let mut k = Kinesis::new(16, 4, 2);
        let chosen = k.write(b"item-1");
        assert_eq!(chosen.len(), 2);
        assert_eq!(k.loads().iter().sum::<u64>(), 2);
    }

    #[test]
    fn writes_prefer_least_loaded() {
        let mut k = Kinesis::new(4, 4, 1);
        // With k == servers, every key sees all servers; loads must stay
        // within 1 of each other forever.
        for i in 0..1000 {
            k.write(format!("i{i}").as_bytes());
        }
        let min = *k.loads().iter().min().unwrap();
        let max = *k.loads().iter().max().unwrap();
        assert!(max - min <= 1, "loads {:?}", k.loads());
    }

    #[test]
    fn kinesis_balances_better_than_single_choice() {
        let mut kin = Kinesis::new(32, 3, 1);
        for i in 0..20_000 {
            kin.write(format!("key-{i}").as_bytes());
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let single = single_choice_loads(32, 20_000, 1, &mut rng);
        let total: u64 = single.iter().sum();
        let mean = total as f64 / 32.0;
        let single_excess = *single.iter().max().unwrap() as f64 / mean - 1.0;
        assert!(
            kin.relative_excess() < single_excess / 2.0,
            "kinesis {} vs single {}",
            kin.relative_excess(),
            single_excess
        );
    }

    #[test]
    fn read_probes_k_servers() {
        let mut k = Kinesis::new(16, 5, 2);
        k.write(b"x");
        let (probed, cands) = k.read(b"x");
        assert_eq!(probed, 5);
        assert_eq!(cands, k.candidates(b"x"));
        assert_eq!(k.read_amplification(), 5);
    }

    #[test]
    fn empty_domain_has_zero_excess() {
        let k = Kinesis::new(8, 2, 1);
        assert_eq!(k.relative_excess(), 0.0);
    }

    #[test]
    #[should_panic(expected = "1 ≤ r ≤ k")]
    fn invalid_r_rejected() {
        let _ = Kinesis::new(8, 2, 3);
    }

    #[test]
    #[should_panic(expected = "k ≤ servers")]
    fn invalid_k_rejected() {
        let _ = Kinesis::new(2, 3, 1);
    }

    #[test]
    fn single_choice_replicas_go_to_successors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let loads = single_choice_loads(4, 100, 2, &mut rng);
        assert_eq!(loads.iter().sum::<u64>(), 200);
    }
}
