#![warn(missing_docs)]

//! # kvs-balance
//!
//! Load-balance theory for Distributed Hash Tables: the "heavily loaded"
//! balls-into-bins analysis the paper builds its imbalance model on
//! (Berenbrink et al., *Balanced Allocations: The Heavily Loaded Case*,
//! SIAM J. Comput. 2006), plus the machinery around it:
//!
//! * [`formula`] — closed forms: the paper's Formula 1 (relative imbalance
//!   `p ≈ sqrt(ln n · n / m)`) and Formula 5 (expected keys on the most
//!   loaded node).
//! * [`simulation`] — Monte-Carlo balls-into-bins: single choice, power of
//!   two choices, `d` choices; max-load densities (Figure 3 of the paper is
//!   regenerated from here).
//! * [`weighted`] — weighted keys (the §II phone-book example: Zipf-sized
//!   cities) and the effective-key-count reduction the paper uses for its
//!   21 % → 35 % city numbers.
//! * [`hashing`] — a consistent-hash ring with virtual nodes, the DHT
//!   placement substrate used by `kvs-cluster`.
//! * [`kinesis`] — Microsoft Kinesis-style `r`-of-`k` placement (related
//!   work, §VIII): writes pick the `r` least-loaded of `k` candidate
//!   servers; reads must consult all `k`.

pub mod formula;
pub mod hashing;
pub mod kinesis;
pub mod simulation;
pub mod weighted;

pub use formula::{expected_max_load, imbalance_ratio, keymax};
pub use hashing::{HashRing, NodeId};
pub use simulation::{max_load_density, MaxLoadDensity, Placement};
