//! Disk blocks: the unit of I/O, checksumming and cache residency for the
//! durable tier.
//!
//! The on-disk SSTable ([`crate::sst_file`]) lays each partition's cells
//! out contiguously and chunks them into blocks of
//! [`BLOCK_TARGET_BYTES`] (4 KiB, Cassandra's `column_index` block
//! granularity scaled to a page). A block never splits a cell: it closes
//! at the first cell boundary at or past the target, so a single cell
//! larger than 4 KiB yields one oversized block. Block boundaries also
//! never cross partitions — for partitions above the
//! `column_index_size` threshold the block list *is* the column index
//! (first/last clustering key per block), which is how the paper's
//! Figure 6 discontinuity survives on disk.
//!
//! Every block carries an FNV-1a checksum in its index entry, verified on
//! every read from disk; the same [`fnv64`] hash checksums the WAL
//! records, the manifest and the SSTable footer.

use crate::schema::Cell;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Target encoded size of one data block (bytes). Blocks close at the
/// first cell boundary at or past this size.
pub const BLOCK_TARGET_BYTES: usize = 4096;

/// Encoded size of one [`BlockMeta`] index entry.
pub const BLOCK_META_BYTES: usize = 40;

/// FNV-1a over a byte slice — the checksum of every durable artifact
/// (blocks, WAL records, manifest, SSTable footer).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Chained FNV-1a: continue hashing `bytes` from a previous digest, so a
/// multi-part record can be checksummed without concatenating buffers.
pub fn fnv64_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Index entry for one data block: its file extent, content checksum and
/// the clustering-key range it covers (the column-index information).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Absolute file offset of the block's first byte.
    pub offset: u64,
    /// Block length in bytes.
    pub len: u32,
    /// Number of cells encoded in the block.
    pub cells: u32,
    /// FNV-1a of the block's bytes, verified on every disk read.
    pub crc: u64,
    /// Clustering key of the first cell in the block.
    pub first_clustering: u64,
    /// Clustering key of the last cell in the block.
    pub last_clustering: u64,
}

impl BlockMeta {
    /// Appends the fixed-size index encoding.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.offset);
        buf.put_u32(self.len);
        buf.put_u32(self.cells);
        buf.put_u64(self.crc);
        buf.put_u64(self.first_clustering);
        buf.put_u64(self.last_clustering);
    }

    /// Decodes one entry; `None` on truncated input.
    pub fn decode(buf: &mut Bytes) -> Option<BlockMeta> {
        if buf.len() < BLOCK_META_BYTES {
            return None;
        }
        Some(BlockMeta {
            offset: buf.get_u64(),
            len: buf.get_u32(),
            cells: buf.get_u32(),
            crc: buf.get_u64(),
            first_clustering: buf.get_u64(),
            last_clustering: buf.get_u64(),
        })
    }

    /// Whether this block's clustering range overlaps `[from, to]`.
    pub fn overlaps(&self, from: u64, to: u64) -> bool {
        self.last_clustering >= from && self.first_clustering <= to
    }
}

/// Splits one partition's cells into blocks: returns `(meta, bytes)` per
/// block, with `meta.offset` relative to `base_offset`. Cells must be in
/// clustering order (the SSTable build contract).
pub fn build_blocks(cells: &[Cell], base_offset: u64) -> Vec<(BlockMeta, Bytes)> {
    let mut out = Vec::new();
    let mut buf = BytesMut::new();
    let mut first: Option<u64> = None;
    let mut last: u64 = 0;
    let mut count: u32 = 0;
    let mut offset = base_offset;
    for cell in cells {
        if first.is_none() {
            first = Some(cell.clustering);
        }
        last = cell.clustering;
        count += 1;
        cell.encode(&mut buf);
        if buf.len() >= BLOCK_TARGET_BYTES {
            let bytes = std::mem::take(&mut buf).freeze();
            let meta = BlockMeta {
                offset,
                len: bytes.len() as u32,
                cells: count,
                crc: fnv64(&bytes),
                first_clustering: first.take().unwrap_or(last),
                last_clustering: last,
            };
            offset += bytes.len() as u64;
            count = 0;
            out.push((meta, bytes));
        }
    }
    if !buf.is_empty() {
        let bytes = buf.freeze();
        out.push((
            BlockMeta {
                offset,
                len: bytes.len() as u32,
                cells: count,
                crc: fnv64(&bytes),
                first_clustering: first.unwrap_or(last),
                last_clustering: last,
            },
            bytes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("a") per the reference implementation.
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64_extend(fnv64(b"ab"), b"c"), fnv64(b"abc"));
    }

    #[test]
    fn block_meta_roundtrips() {
        let meta = BlockMeta {
            offset: 12345,
            len: 4096,
            cells: 89,
            crc: 0xDEAD_BEEF,
            first_clustering: 7,
            last_clustering: 95,
        };
        let mut buf = BytesMut::new();
        meta.encode(&mut buf);
        assert_eq!(buf.len(), BLOCK_META_BYTES);
        let mut bytes = buf.freeze();
        assert_eq!(BlockMeta::decode(&mut bytes), Some(meta));
        assert!(bytes.is_empty());
        let mut short = Bytes::copy_from_slice(&[0u8; BLOCK_META_BYTES - 1]);
        assert!(BlockMeta::decode(&mut short).is_none());
    }

    #[test]
    fn blocks_close_at_cell_boundaries() {
        // 46-byte cells: ⌈4096 / 46⌉ = 90 cells close a block at 4140 B.
        let cells: Vec<Cell> = (0..200u64).map(|c| Cell::synthetic(c, 0)).collect();
        let blocks = build_blocks(&cells, 0);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].0.cells, 90);
        assert_eq!(blocks[0].0.len as usize, 90 * 46);
        assert!(blocks[0].0.len as usize >= BLOCK_TARGET_BYTES);
        assert_eq!(blocks[0].0.first_clustering, 0);
        assert_eq!(blocks[0].0.last_clustering, 89);
        // Offsets chain and checksums verify.
        let mut expect_offset = 0u64;
        let mut total_cells = 0u32;
        for (meta, bytes) in &blocks {
            assert_eq!(meta.offset, expect_offset);
            assert_eq!(meta.len as usize, bytes.len());
            assert_eq!(meta.crc, fnv64(bytes));
            expect_offset += meta.len as u64;
            total_cells += meta.cells;
        }
        assert_eq!(total_cells, 200);
    }

    #[test]
    fn oversized_cell_gets_its_own_block() {
        let big = Cell::new(5, 0, vec![0xAB; 3 * BLOCK_TARGET_BYTES]);
        let blocks = build_blocks(&[Cell::synthetic(1, 0), big.clone()], 100);
        // First block closes only when the big cell pushes it past target.
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].0.cells, 2);
        assert_eq!(blocks[0].0.offset, 100);
        assert!(blocks[0].0.len as usize > 3 * BLOCK_TARGET_BYTES);
    }

    #[test]
    fn empty_partition_yields_no_blocks() {
        assert!(build_blocks(&[], 0).is_empty());
    }

    #[test]
    fn overlap_predicate() {
        let meta = BlockMeta {
            offset: 0,
            len: 1,
            cells: 1,
            crc: 0,
            first_clustering: 10,
            last_clustering: 20,
        };
        assert!(meta.overlaps(0, 10));
        assert!(meta.overlaps(20, 30));
        assert!(meta.overlaps(12, 13));
        assert!(!meta.overlaps(21, 99));
        assert!(!meta.overlaps(0, 9));
    }
}
