//! The data model: partition keys, clustering keys and cells.
//!
//! Mirrors Cassandra's wide-column layout as the paper describes it (§II):
//! "a partitioned distributed HashMap where each entry contains another
//! SortedMap". The *partition key* decides which node (and which slot of
//! the local hash structures) holds the data; the *clustering key* orders
//! cells inside the partition.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// A partition key: opaque bytes, hashed for placement, ordered for the
/// SSTable partition index.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionKey(pub Vec<u8>);

impl PartitionKey {
    /// Builds a key from anything byte-like.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        PartitionKey(bytes.into())
    }

    /// Convenience constructor from an integer id (big-endian so that
    /// numeric order == lexicographic order).
    pub fn from_id(id: u64) -> Self {
        PartitionKey(id.to_be_bytes().to_vec())
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the raw key in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the key is empty (legal, if unusual).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for PartitionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Ok(s) = std::str::from_utf8(&self.0) {
            if s.chars().all(|c| c.is_ascii_graphic() || c == ' ') {
                return write!(f, "pk\"{s}\"");
            }
        }
        write!(f, "pk{:02x?}", &self.0)
    }
}

impl From<&str> for PartitionKey {
    fn from(s: &str) -> Self {
        PartitionKey(s.as_bytes().to_vec())
    }
}

impl From<u64> for PartitionKey {
    fn from(id: u64) -> Self {
        PartitionKey::from_id(id)
    }
}

/// The clustering key type: cells within a partition sort by it.
pub type ClusteringKey = u64;

/// One cell (column) of a wide row: clustering key, a one-byte `kind` tag
/// (the attribute the paper's "count by type" aggregation groups on), and
/// an opaque payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Position of the cell inside its partition.
    pub clustering: ClusteringKey,
    /// Small categorical attribute; the cluster layer's `CountByKind`
    /// aggregation groups on this byte.
    pub kind: u8,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

/// Fixed per-cell encoding overhead: clustering (8) + kind (1) + payload
/// length prefix (4).
pub const CELL_HEADER_BYTES: usize = 13;

/// The payload size that makes a cell encode to exactly 46 bytes — chosen
/// so Cassandra's 64 KiB column-index threshold lands at
/// `⌊65536 / 46⌋ = 1424` cells, reproducing the ≈ 1425-element
/// discontinuity the paper observed in Figure 6.
pub const DEFAULT_PAYLOAD_BYTES: usize = 33;

impl Cell {
    /// Builds a cell.
    pub fn new(clustering: ClusteringKey, kind: u8, payload: impl Into<Bytes>) -> Self {
        Cell {
            clustering,
            kind,
            payload: payload.into(),
        }
    }

    /// A cell with a deterministic filler payload of `DEFAULT_PAYLOAD_BYTES`
    /// (46 encoded bytes total — see [`DEFAULT_PAYLOAD_BYTES`]).
    pub fn synthetic(clustering: ClusteringKey, kind: u8) -> Self {
        let mut payload = vec![0u8; DEFAULT_PAYLOAD_BYTES];
        // Derive filler from the clustering key so payloads differ and
        // accidental deduplication in tests would be caught.
        for (i, b) in payload.iter_mut().enumerate() {
            *b = (clustering as u8).wrapping_add(i as u8);
        }
        Cell::new(clustering, kind, payload)
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        CELL_HEADER_BYTES + self.payload.len()
    }

    /// Appends the binary encoding to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.clustering);
        buf.put_u8(self.kind);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_slice(&self.payload);
    }

    /// Decodes one cell from the front of `buf`, advancing it.
    /// Returns `None` on truncated input.
    pub fn decode(buf: &mut Bytes) -> Option<Cell> {
        if buf.len() < CELL_HEADER_BYTES {
            return None;
        }
        let clustering = buf.get_u64_le();
        let kind = buf.get_u8();
        let len = buf.get_u32_le() as usize;
        if buf.len() < len {
            return None;
        }
        let payload = buf.split_to(len);
        Some(Cell {
            clustering,
            kind,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_key_constructors_agree() {
        assert_eq!(PartitionKey::from("abc"), PartitionKey::new(*b"abc"));
        assert_eq!(PartitionKey::from(7u64), PartitionKey::from_id(7));
        assert_eq!(PartitionKey::from_id(7).len(), 8);
        assert!(PartitionKey::new(Vec::new()).is_empty());
    }

    #[test]
    fn integer_keys_sort_numerically() {
        let keys: Vec<PartitionKey> = [1u64, 255, 256, 65536].iter().map(|&i| i.into()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "big-endian ids must sort numerically");
    }

    #[test]
    fn debug_renders_printable_keys() {
        assert_eq!(
            format!("{:?}", PartitionKey::from("cube-1")),
            "pk\"cube-1\""
        );
        let raw = format!("{:?}", PartitionKey::new(vec![0xff, 0x00]));
        assert!(raw.starts_with("pk["), "{raw}");
    }

    #[test]
    fn cell_roundtrips() {
        let cell = Cell::new(42, 3, vec![1, 2, 3, 4]);
        let mut buf = BytesMut::new();
        cell.encode(&mut buf);
        assert_eq!(buf.len(), cell.encoded_len());
        let mut bytes = buf.freeze();
        let back = Cell::decode(&mut bytes).unwrap();
        assert_eq!(back, cell);
        assert!(bytes.is_empty());
    }

    #[test]
    fn synthetic_cell_is_exactly_46_bytes() {
        let cell = Cell::synthetic(9, 1);
        assert_eq!(cell.encoded_len(), 46);
        // And the column-index threshold math the workspace relies on:
        assert_eq!(65536 / cell.encoded_len(), 1424);
    }

    #[test]
    fn truncated_decode_returns_none() {
        let cell = Cell::new(1, 2, vec![9; 16]);
        let mut buf = BytesMut::new();
        cell.encode(&mut buf);
        let full = buf.freeze();
        for cut in [0usize, 5, CELL_HEADER_BYTES, full.len() - 1] {
            let mut partial = full.slice(..cut);
            assert!(Cell::decode(&mut partial).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn many_cells_decode_in_sequence() {
        let mut buf = BytesMut::new();
        let cells: Vec<Cell> = (0..10).map(|i| Cell::synthetic(i, (i % 3) as u8)).collect();
        for c in &cells {
            c.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        for expected in &cells {
            assert_eq!(&Cell::decode(&mut bytes).unwrap(), expected);
        }
        assert!(Cell::decode(&mut bytes).is_none());
    }
}
