#![warn(missing_docs)]

//! # kvs-store
//!
//! A single-node wide-column key-value store modelled on Apache Cassandra's
//! storage engine, built as the database substrate for the ICPP'17
//! reproduction. It is a *real* store — writes land in a memtable, flushes
//! produce immutable sorted SSTables with bloom filters and two-level
//! indexing, reads merge all runs with newest-wins semantics — but it is
//! in-memory and instrumented: every read returns a [`ReadReceipt`]
//! describing exactly what work was done (bloom probes, index seeks,
//! column-index blocks touched, cells scanned, cache hits).
//!
//! ## The two-level index (why Figure 6 has a kink)
//!
//! Cassandra indexes data twice: a *partition index* maps each partition
//! key to its location, and — only for partitions larger than
//! `column_index_size` (64 KiB by default) — a *column index* subdivides the
//! partition into blocks so range reads can seek. The paper found that this
//! threshold shows up as a discontinuity in single-request latency at
//! ≈ 1425 cells per row (1425 × 46 B ≈ 64 KiB); our store reproduces the
//! mechanism: [`SsTable`] builds a column index exactly when the encoded
//! partition exceeds the threshold, and [`CostModel`] charges for it.
//!
//! ## Cost model
//!
//! Simulated experiments need a service *time* for each read. Rather than
//! timing this in-memory store (which would be nothing like a 2010 Cassandra
//! node with SATA disks), [`CostModel::paper_cassandra`] converts a
//! [`ReadReceipt`] into milliseconds using the regression constants the
//! paper published (Formula 6), so the virtual cluster's database behaves
//! like the one the authors measured.

pub mod bloom;
pub mod cache;
pub mod compaction;
pub mod cost;
pub mod memtable;
pub mod receipt;
pub mod schema;
pub mod sstable;
pub mod table;
pub mod tiering;

pub use bloom::BloomFilter;
pub use cache::Lru;
pub use cost::CostModel;
pub use memtable::Memtable;
pub use receipt::ReadReceipt;
pub use schema::{Cell, PartitionKey};
pub use sstable::{SsTable, SsTableOptions};
pub use table::{Table, TableMetrics, TableOptions};
pub use tiering::{StorageHierarchy, Tier};
