#![warn(missing_docs)]

//! # kvs-store
//!
//! A single-node wide-column key-value store modelled on Apache Cassandra's
//! storage engine, built as the database substrate for the ICPP'17
//! reproduction. It is a *real* store — writes land in a memtable, flushes
//! produce immutable sorted SSTables with bloom filters and two-level
//! indexing, reads merge all runs with newest-wins semantics — but it is
//! in-memory and instrumented: every read returns a [`ReadReceipt`]
//! describing exactly what work was done (bloom probes, index seeks,
//! column-index blocks touched, cells scanned, cache hits).
//!
//! ## The two-level index (why Figure 6 has a kink)
//!
//! Cassandra indexes data twice: a *partition index* maps each partition
//! key to its location, and — only for partitions larger than
//! `column_index_size` (64 KiB by default) — a *column index* subdivides the
//! partition into blocks so range reads can seek. The paper found that this
//! threshold shows up as a discontinuity in single-request latency at
//! ≈ 1425 cells per row (1425 × 46 B ≈ 64 KiB); our store reproduces the
//! mechanism: [`SsTable`] builds a column index exactly when the encoded
//! partition exceeds the threshold, and [`CostModel`] charges for it.
//!
//! ## Cost model
//!
//! Simulated experiments need a service *time* for each read. Rather than
//! timing this in-memory store (which would be nothing like a 2010 Cassandra
//! node with SATA disks), [`CostModel::paper_cassandra`] converts a
//! [`ReadReceipt`] into milliseconds using the regression constants the
//! paper published (Formula 6), so the virtual cluster's database behaves
//! like the one the authors measured.
//!
//! ## The durable tier (feature `durable`)
//!
//! With the `durable` cargo feature the store gains a real persistence
//! subsystem: a checksummed write-ahead log ([`wal`]), a block-based
//! on-disk SSTable format ([`sst_file`], 4 KiB blocks, block index +
//! bloom + footer-with-CRC), an atomically-replaced [`manifest`] naming
//! the live runs, and crash [`recovery`] that replays the WAL and
//! rebuilds the memtable on open. [`DurableTable`] ties them together
//! with the same flush-on-threshold / tiered-compaction lifecycle as the
//! in-memory [`Table`], and its reads charge disk block reads distinctly
//! from cache hits on the [`ReadReceipt`], so the Formula 6 mechanics —
//! including the 64 KiB column-index threshold — survive on disk. See
//! `docs/STORE.md` for the byte-level formats.

pub mod block;
pub mod bloom;
pub mod cache;
pub mod compaction;
pub mod cost;
#[cfg(feature = "durable")]
pub mod durable;
#[cfg(feature = "durable")]
pub mod manifest;
pub mod memtable;
pub mod receipt;
#[cfg(feature = "durable")]
pub mod recovery;
pub mod schema;
#[cfg(feature = "durable")]
pub mod sst_file;
pub mod sstable;
pub mod table;
pub mod tiering;
#[cfg(feature = "durable")]
pub mod wal;

pub use block::BLOCK_TARGET_BYTES;
pub use bloom::BloomFilter;
pub use cache::Lru;
pub use cost::CostModel;
#[cfg(feature = "durable")]
pub use durable::{CrashPoint, DurableMetrics, DurableOptions, DurableTable, TempDir};
pub use memtable::Memtable;
pub use receipt::ReadReceipt;
#[cfg(feature = "durable")]
pub use recovery::RecoveryReport;
pub use schema::{Cell, PartitionKey};
pub use sstable::{SsTable, SsTableOptions};
pub use table::{Table, TableMetrics, TableOptions};
pub use tiering::{StorageHierarchy, Tier};
#[cfg(feature = "durable")]
pub use wal::FsyncPolicy;
