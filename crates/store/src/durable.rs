//! [`DurableTable`]: the persistent table — WAL + on-disk SSTables +
//! manifest, with real crash recovery.
//!
//! ## The write path
//!
//! A put lands in the WAL ([`crate::wal`]) *before* the memtable, so an
//! acknowledged write survives any crash (modulo the chosen
//! [`FsyncPolicy`] window). When the memtable crosses its flush
//! threshold it is written to an on-disk SSTable ([`crate::sst_file`])
//! and the WAL rotates, in this order:
//!
//! 1. write the SSTable file (generation `g`) and `fdatasync` it;
//! 2. create the next WAL segment;
//! 3. commit the manifest (`live += g`, `wal_seq` → new segment) —
//!    **the commit point**;
//! 4. garbage-collect the old WAL segments.
//!
//! A crash before step 3 leaves an orphan SSTable and intact WAL
//! segments: recovery ([`crate::recovery`]) deletes the orphan and
//! replays the log, losing nothing. A crash after step 3 leaves stale
//! segments that recovery deletes; the data is in the committed SSTable.
//! Compaction follows the same shape with the merged SSTable, and the
//! manifest commit atomically swaps the live set.
//!
//! [`CrashPoint`] lets tests *inject* a crash at each step boundary: the
//! armed operation fails and the table poisons itself (every later call
//! errors), so the only way forward is what a real crash forces — drop
//! the table and [`DurableTable::open`] the directory again.

use crate::manifest::Manifest;
use crate::memtable::Memtable;
use crate::receipt::ReadReceipt;
use crate::recovery::{recover, RecoveryReport};
use crate::schema::{Cell, ClusteringKey, PartitionKey};
use crate::sst_file::{sst_file_name, write_sst, BlockCache, SstFile};
use crate::sstable::SsTableOptions;
use crate::wal::{self, FsyncPolicy, WalWriter};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::ops::RangeInclusive;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration for a durable table.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Flush the memtable to an SSTable when it exceeds this many bytes.
    pub memtable_flush_bytes: usize,
    /// Column-index threshold per partition (Cassandra's
    /// `column_index_size_in_kb`, default 64 KiB — the Figure 6 knee).
    pub column_index_size: usize,
    /// Bloom-filter target false-positive rate.
    pub bloom_fp_rate: f64,
    /// Trigger a full compaction when this many SSTables accumulate.
    pub compaction_threshold: usize,
    /// Block-cache capacity in 4 KiB blocks (0 disables caching).
    pub block_cache_blocks: usize,
    /// WAL durability policy.
    pub fsync: FsyncPolicy,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            memtable_flush_bytes: 8 * 1024 * 1024,
            column_index_size: 64 * 1024,
            bloom_fp_rate: 0.01,
            compaction_threshold: 4,
            block_cache_blocks: 1024,
            fsync: FsyncPolicy::Always,
        }
    }
}

impl DurableOptions {
    fn sst_opts(&self) -> SsTableOptions {
        SsTableOptions {
            column_index_size: self.column_index_size,
            bloom_fp_rate: self.bloom_fp_rate,
        }
    }
}

/// Lifetime counters for a durable table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableMetrics {
    /// Cells written (each one WAL-logged first).
    pub writes: u64,
    /// Logical reads served.
    pub reads: u64,
    /// Memtable flushes completed (through the manifest commit).
    pub flushes: u64,
    /// Compactions completed.
    pub compactions: u64,
    /// WAL records appended.
    pub wal_records: u64,
    /// SSTable bytes written (flushes, compactions and ingests).
    pub sst_bytes_written: u64,
}

/// A step boundary in the flush/compaction protocol where a test can
/// inject a crash. The armed operation returns an error after completing
/// the named step, and the table poisons itself — exactly the state a
/// real crash leaves on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Flush: the SSTable file is on disk, the manifest doesn't know it.
    AfterFlushSstWrite,
    /// Flush: the next WAL segment exists, the manifest still points at
    /// the old one.
    AfterFlushWalRotate,
    /// Flush: the manifest commit landed; old WAL segments not yet GC'd.
    AfterFlushManifest,
    /// Compaction: the merged SSTable is on disk, not yet live.
    AfterCompactSstWrite,
    /// Compaction: the live set swapped; old SSTables not yet deleted.
    AfterCompactManifest,
}

/// A persistent single-node wide-column table (feature `durable`).
///
/// The API mirrors [`crate::Table`] with every operation fallible: disk
/// I/O errors and detected corruption propagate instead of panicking.
pub struct DurableTable {
    dir: PathBuf,
    opts: DurableOptions,
    memtable: Memtable,
    wal: WalWriter,
    manifest: Manifest,
    /// Live runs, ascending generation (newest last, wins merges).
    ssts: Vec<SstFile>,
    block_cache: BlockCache,
    metrics: DurableMetrics,
    crash_armed: Option<CrashPoint>,
    poisoned: bool,
}

impl DurableTable {
    /// Opens (or creates) a durable table at `dir`, running full crash
    /// recovery: manifest load, live-SSTable open, orphan cleanup and WAL
    /// replay. Returns the table plus the recovery report.
    pub fn open(dir: &Path, opts: DurableOptions) -> io::Result<(DurableTable, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let recovered = recover(dir)?;
        let wal = WalWriter::create(
            dir,
            recovered.next_segment_seq,
            recovered.next_record_seq,
            opts.fsync,
        )?;
        let block_cache = BlockCache::new(opts.block_cache_blocks);
        let mut table = DurableTable {
            dir: dir.to_path_buf(),
            opts,
            memtable: recovered.memtable,
            wal,
            manifest: recovered.manifest,
            ssts: recovered.ssts,
            block_cache,
            metrics: DurableMetrics::default(),
            crash_armed: None,
            poisoned: false,
        };
        // A replayed memtable can already be over the threshold (the
        // crash happened just before its flush) — finish the job now.
        if table.memtable.bytes() >= table.opts.memtable_flush_bytes {
            table.flush()?;
        }
        Ok((table, recovered.report))
    }

    fn check_usable(&self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "durable table poisoned by an injected crash; reopen the directory",
            ));
        }
        Ok(())
    }

    /// Arms a one-shot crash injection (tests only, but compiled in so
    /// integration tests across crates can use it).
    pub fn arm_crash_point(&mut self, point: CrashPoint) {
        self.crash_armed = Some(point);
    }

    fn trip(&mut self, point: CrashPoint) -> io::Result<()> {
        if self.crash_armed == Some(point) {
            self.crash_armed = None;
            self.poisoned = true;
            return Err(io::Error::other(format!("injected crash at {point:?}")));
        }
        Ok(())
    }

    /// Writes one cell: WAL first, then the memtable; flushes when the
    /// threshold trips. Once this returns `Ok` the write is recoverable
    /// (modulo the fsync policy's window).
    pub fn put(&mut self, pk: PartitionKey, cell: Cell) -> io::Result<()> {
        self.check_usable()?;
        self.wal.append(&pk, &cell)?;
        self.metrics.wal_records += 1;
        self.metrics.writes += 1;
        self.memtable.insert(pk, cell);
        if self.memtable.bytes() >= self.opts.memtable_flush_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes the memtable to a new on-disk SSTable and rotates the WAL
    /// (see the module docs for the crash-safe ordering). No-op when the
    /// memtable is empty.
    pub fn flush(&mut self) -> io::Result<()> {
        self.check_usable()?;
        if self.memtable.is_empty() {
            return Ok(());
        }
        // 1. SSTable write. The snapshot does not drain: a crash between
        // here and the manifest commit loses nothing.
        let generation = self.manifest.next_generation;
        let path = self.dir.join(sst_file_name(generation));
        let snapshot = self.memtable.snapshot_sorted();
        let stats = write_sst(&path, &snapshot, &self.opts.sst_opts(), generation)?;
        self.metrics.sst_bytes_written += stats.file_bytes;
        self.trip(CrashPoint::AfterFlushSstWrite)?;
        // 2. WAL rotation.
        let new_wal = WalWriter::create(
            &self.dir,
            self.wal.segment_seq() + 1,
            self.wal.next_record_seq(),
            self.opts.fsync,
        )?;
        self.trip(CrashPoint::AfterFlushWalRotate)?;
        // 3. The commit point.
        let mut manifest = self.manifest.clone();
        manifest.live.push(generation);
        manifest.next_generation = generation + 1;
        manifest.wal_seq = new_wal.segment_seq();
        manifest.next_record_seq = new_wal.next_record_seq();
        manifest.commit(&self.dir)?;
        self.manifest = manifest;
        self.wal = new_wal;
        self.trip(CrashPoint::AfterFlushManifest)?;
        // 4. Garbage collection; failure past the commit point is safe
        // (recovery re-deletes).
        for (seq, stale) in wal::list_segments(&self.dir)? {
            if seq < self.manifest.wal_seq {
                fs::remove_file(stale)?;
            }
        }
        self.ssts.push(SstFile::open(&path)?);
        self.memtable = Memtable::new();
        self.metrics.flushes += 1;
        if self.ssts.len() >= self.opts.compaction_threshold {
            self.compact()?;
        }
        Ok(())
    }

    /// Merges every live SSTable into one (size-tiered "major"
    /// compaction), newest generation winning conflicts, and atomically
    /// swaps the manifest's live set. No-op below two runs.
    pub fn compact(&mut self) -> io::Result<()> {
        self.check_usable()?;
        if self.ssts.len() < 2 {
            return Ok(());
        }
        let mut merged: BTreeMap<PartitionKey, BTreeMap<ClusteringKey, Cell>> = BTreeMap::new();
        // Ascending generation: later inserts overwrite older cells.
        for sst in &self.ssts {
            for (pk, cells) in sst.scan()? {
                let slot = merged.entry(pk).or_default();
                for cell in cells {
                    slot.insert(cell.clustering, cell);
                }
            }
        }
        let input: Vec<(PartitionKey, Vec<Cell>)> = merged
            .into_iter()
            .map(|(pk, cells)| (pk, cells.into_values().collect()))
            .collect();
        let generation = self.manifest.next_generation;
        let path = self.dir.join(sst_file_name(generation));
        let stats = write_sst(&path, &input, &self.opts.sst_opts(), generation)?;
        self.metrics.sst_bytes_written += stats.file_bytes;
        self.trip(CrashPoint::AfterCompactSstWrite)?;
        let mut manifest = self.manifest.clone();
        manifest.live = vec![generation];
        manifest.next_generation = generation + 1;
        manifest.commit(&self.dir)?;
        self.manifest = manifest;
        self.trip(CrashPoint::AfterCompactManifest)?;
        let old = std::mem::replace(&mut self.ssts, vec![SstFile::open(&path)?]);
        for sst in old {
            fs::remove_file(sst.path())?;
        }
        // Cached blocks are keyed by dead generations now; drop them.
        self.block_cache.clear();
        self.metrics.compactions += 1;
        Ok(())
    }

    /// Bulk-loads already-sorted partitions directly into an SSTable,
    /// bypassing the WAL and the memtable (they are committed via the
    /// manifest, so they are just as durable). The restart seeding path —
    /// cluster loads use this for the bulk of the data, then [`Self::put`]
    /// for the tail that should exercise WAL replay.
    pub fn ingest_sorted(&mut self, input: &[(PartitionKey, Vec<Cell>)]) -> io::Result<()> {
        self.check_usable()?;
        if input.is_empty() {
            return Ok(());
        }
        let generation = self.manifest.next_generation;
        let path = self.dir.join(sst_file_name(generation));
        let stats = write_sst(&path, input, &self.opts.sst_opts(), generation)?;
        self.metrics.sst_bytes_written += stats.file_bytes;
        let mut manifest = self.manifest.clone();
        manifest.live.push(generation);
        manifest.next_generation = generation + 1;
        manifest.commit(&self.dir)?;
        self.manifest = manifest;
        self.ssts.push(SstFile::open(&path)?);
        Ok(())
    }

    /// Reads a whole partition, merging every run and the memtable
    /// newest-wins. The receipt itemizes the work, including disk blocks
    /// read vs served from the block cache.
    pub fn get(&mut self, pk: &PartitionKey) -> io::Result<(Vec<Cell>, ReadReceipt)> {
        self.check_usable()?;
        self.metrics.reads += 1;
        let mut receipt = ReadReceipt::default();
        let mut merged: BTreeMap<ClusteringKey, Cell> = BTreeMap::new();
        for sst in &self.ssts {
            if let Some(cells) = sst.read(pk, &mut self.block_cache, &mut receipt)? {
                for cell in cells {
                    merged.insert(cell.clustering, cell);
                }
            }
        }
        if let Some(cells) = self.memtable.get(pk) {
            receipt.memtable_hit = true;
            for cell in cells {
                merged.insert(cell.clustering, cell);
            }
        }
        let out: Vec<Cell> = merged.into_values().collect();
        receipt.cells_returned = out.len() as u64;
        Ok((out, receipt))
    }

    /// Reads a clustering range of a partition; column-indexed partitions
    /// seek to overlapping blocks only.
    pub fn get_range(
        &mut self,
        pk: &PartitionKey,
        range: RangeInclusive<ClusteringKey>,
    ) -> io::Result<(Vec<Cell>, ReadReceipt)> {
        self.check_usable()?;
        self.metrics.reads += 1;
        let mut receipt = ReadReceipt::default();
        let mut merged: BTreeMap<ClusteringKey, Cell> = BTreeMap::new();
        for sst in &self.ssts {
            for cell in sst.read_range(pk, range.clone(), &mut self.block_cache, &mut receipt)? {
                merged.insert(cell.clustering, cell);
            }
        }
        let mem = self.memtable.get_range(pk, range);
        if !mem.is_empty() {
            receipt.memtable_hit = true;
            for cell in mem {
                merged.insert(cell.clustering, cell);
            }
        }
        let out: Vec<Cell> = merged.into_values().collect();
        receipt.cells_returned = out.len() as u64;
        Ok((out, receipt))
    }

    /// Forces buffered WAL records to stable storage (useful with
    /// [`FsyncPolicy::EveryN`] / [`FsyncPolicy::Never`] before an ack).
    pub fn sync_wal(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// The table's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured options.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }

    /// Lifetime metrics.
    pub fn metrics(&self) -> DurableMetrics {
        self.metrics
    }

    /// The current manifest (the on-disk commit state).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of live on-disk SSTables.
    pub fn sstable_count(&self) -> usize {
        self.ssts.len()
    }

    /// Cells currently buffered in the memtable (WAL-backed).
    pub fn memtable_cells(&self) -> usize {
        self.memtable.cells()
    }

    /// Block-cache lifetime `(hits, misses)`.
    pub fn block_cache_stats(&self) -> (u64, u64) {
        self.block_cache.hit_stats()
    }
}

static TEMP_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A self-deleting scratch directory for tests and benches.
///
/// Names derive from the process id and a process-wide counter — no
/// clocks, no ambient randomness (the store crate is a deterministic
/// zone) — so concurrent test processes never collide.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `${TMPDIR}/kvs-<tag>-<pid>-<n>`.
    ///
    /// # Panics
    /// When the directory cannot be created — tests should die loudly.
    pub fn new(tag: &str) -> TempDir {
        let n = TEMP_DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("kvs-{tag}-{}-{n}", std::process::id()));
        if let Err(e) = fs::create_dir_all(&path) {
            panic!("failed to create temp dir {}: {e}", path.display());
        }
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort: a leaked scratch dir beats a panicking Drop.
        match fs::remove_dir_all(&self.path) {
            Ok(()) | Err(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(i: u64) -> PartitionKey {
        PartitionKey::from_id(i)
    }

    fn small_opts() -> DurableOptions {
        DurableOptions {
            memtable_flush_bytes: 46 * 100, // flush every 100 cells
            compaction_threshold: 100,      // no auto-compaction
            fsync: FsyncPolicy::Never,      // tests don't need real fsync
            ..Default::default()
        }
    }

    /// The fault-free oracle: replays the same writes into a BTreeMap.
    #[derive(Default)]
    struct Oracle {
        data: BTreeMap<PartitionKey, BTreeMap<ClusteringKey, Cell>>,
    }

    impl Oracle {
        fn put(&mut self, pk: PartitionKey, cell: Cell) {
            self.data
                .entry(pk)
                .or_default()
                .insert(cell.clustering, cell);
        }

        fn assert_matches(&self, table: &mut DurableTable) {
            for (pk, cells) in &self.data {
                let expect: Vec<Cell> = cells.values().cloned().collect();
                let (got, _) = table.get(pk).expect("read");
                assert_eq!(got, expect, "partition {pk:?} diverged from oracle");
            }
        }
    }

    #[test]
    fn read_your_writes_without_flush() {
        let tmp = TempDir::new("dur-mem");
        let (mut t, report) = DurableTable::open(tmp.path(), small_opts()).expect("open");
        assert_eq!(report, RecoveryReport::default());
        t.put(pk(1), Cell::synthetic(10, 2)).expect("put");
        let (cells, receipt) = t.get(&pk(1)).expect("get");
        assert_eq!(cells.len(), 1);
        assert!(receipt.memtable_hit);
        assert_eq!(receipt.disk_blocks_read, 0);
    }

    #[test]
    fn flush_rotates_wal_and_reads_from_disk() {
        let tmp = TempDir::new("dur-flush");
        let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
        for c in 0..50u64 {
            t.put(pk(1), Cell::synthetic(c, 0)).expect("put");
        }
        t.flush().expect("flush");
        assert_eq!(t.sstable_count(), 1);
        assert_eq!(t.memtable_cells(), 0);
        assert_eq!(t.metrics().flushes, 1);
        assert_eq!(t.manifest().live, vec![1]);
        // The pre-flush segment (seq 1) is gone; the live one is seq 2.
        assert!(!tmp.path().join(wal::segment_file_name(1)).exists());
        assert!(tmp.path().join(wal::segment_file_name(2)).exists());
        let (cells, receipt) = t.get(&pk(1)).expect("get");
        assert_eq!(cells.len(), 50);
        assert!(!receipt.memtable_hit);
        assert!(receipt.disk_blocks_read > 0);
    }

    #[test]
    fn automatic_flush_on_threshold() {
        let tmp = TempDir::new("dur-auto");
        let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
        let mut oracle = Oracle::default();
        for c in 0..250u64 {
            let cell = Cell::synthetic(c, 0);
            oracle.put(pk(c % 5), cell.clone());
            t.put(pk(c % 5), cell).expect("put");
        }
        assert!(t.metrics().flushes >= 2);
        oracle.assert_matches(&mut t);
    }

    #[test]
    fn restart_replays_wal() {
        let tmp = TempDir::new("dur-replay");
        let mut oracle = Oracle::default();
        {
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
            for c in 0..40u64 {
                let cell = Cell::synthetic(c, 1);
                oracle.put(pk(c % 3), cell.clone());
                t.put(pk(c % 3), cell).expect("put");
            }
            // Dropped without flush: everything lives only in the WAL.
        }
        let (mut t, report) = DurableTable::open(tmp.path(), small_opts()).expect("reopen");
        assert_eq!(report.wal_records_replayed, 40);
        assert_eq!(report.cells_recovered, 40);
        assert_eq!(report.sstables_loaded, 0);
        oracle.assert_matches(&mut t);
    }

    #[test]
    fn restart_loads_ssts_and_replays_tail() {
        let tmp = TempDir::new("dur-mixed");
        let mut oracle = Oracle::default();
        {
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
            for c in 0..120u64 {
                let cell = Cell::synthetic(c, 0);
                oracle.put(pk(c % 4), cell.clone());
                t.put(pk(c % 4), cell).expect("put");
            }
            t.flush().expect("flush");
            for c in 120..135u64 {
                let cell = Cell::synthetic(c, 2);
                oracle.put(pk(c % 4), cell.clone());
                t.put(pk(c % 4), cell).expect("put");
            }
        }
        let (mut t, report) = DurableTable::open(tmp.path(), small_opts()).expect("reopen");
        assert!(report.sstables_loaded >= 1);
        assert_eq!(report.wal_records_replayed, 15);
        oracle.assert_matches(&mut t);
        // Overwrites after recovery still win.
        t.put(pk(0), Cell::new(0, 77, vec![7u8; 4])).expect("put");
        let (cells, _) = t.get(&pk(0)).expect("get");
        assert_eq!(cells[0].kind, 77);
    }

    #[test]
    fn record_seqs_never_reused_across_restarts() {
        let tmp = TempDir::new("dur-seq");
        {
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
            for c in 0..10u64 {
                t.put(pk(0), Cell::synthetic(c, 0)).expect("put");
            }
        }
        let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("reopen");
        t.put(pk(0), Cell::synthetic(100, 0)).expect("put");
        drop(t);
        let (t, report) = DurableTable::open(tmp.path(), small_opts()).expect("reopen 2");
        // 10 from the first incarnation + 1 from the second, all distinct.
        assert_eq!(report.wal_records_replayed, 11);
        assert_eq!(t.memtable_cells(), 11);
    }

    #[test]
    fn compaction_merges_newest_wins_and_deletes_old_files() {
        let tmp = TempDir::new("dur-compact");
        let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
        t.put(pk(1), Cell::new(7, 1, vec![1u8; 4])).expect("put");
        t.flush().expect("flush 1");
        t.put(pk(1), Cell::new(7, 2, vec![2u8; 4])).expect("put");
        t.put(pk(2), Cell::synthetic(0, 0)).expect("put");
        t.flush().expect("flush 2");
        assert_eq!(t.sstable_count(), 2);
        t.compact().expect("compact");
        assert_eq!(t.sstable_count(), 1);
        assert_eq!(t.metrics().compactions, 1);
        assert_eq!(t.manifest().live.len(), 1);
        // Old generation files are gone; only the merged one remains.
        assert!(!tmp.path().join(sst_file_name(1)).exists());
        assert!(!tmp.path().join(sst_file_name(2)).exists());
        assert!(tmp.path().join(sst_file_name(3)).exists());
        let (cells, _) = t.get(&pk(1)).expect("get");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].kind, 2, "newest generation must win the merge");
        // And the state survives a restart.
        drop(t);
        let (mut t, report) = DurableTable::open(tmp.path(), small_opts()).expect("reopen");
        assert_eq!(report.sstables_loaded, 1);
        assert_eq!(t.get(&pk(1)).expect("get").0[0].kind, 2);
        assert_eq!(t.get(&pk(2)).expect("get").0.len(), 1);
    }

    #[test]
    fn ingest_is_durable_without_wal() {
        let tmp = TempDir::new("dur-ingest");
        let input = vec![
            (pk(1), vec![Cell::synthetic(1, 0), Cell::synthetic(2, 0)]),
            (pk(2), vec![Cell::synthetic(5, 1)]),
        ];
        {
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
            t.ingest_sorted(&input).expect("ingest");
            assert_eq!(t.sstable_count(), 1);
        }
        let (mut t, report) = DurableTable::open(tmp.path(), small_opts()).expect("reopen");
        assert_eq!(report.sstables_loaded, 1);
        assert_eq!(report.wal_records_replayed, 0);
        assert_eq!(t.get(&pk(1)).expect("get").0, input[0].1);
        assert_eq!(t.get(&pk(2)).expect("get").0, input[1].1);
    }

    #[test]
    fn block_cache_serves_repeat_reads() {
        let tmp = TempDir::new("dur-cache");
        let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
        for c in 0..90u64 {
            t.put(pk(1), Cell::synthetic(c, 0)).expect("put");
        }
        t.flush().expect("flush");
        let (_, r1) = t.get(&pk(1)).expect("get");
        assert!(r1.disk_blocks_read > 0);
        assert_eq!(r1.disk_block_cache_hits, 0);
        let (_, r2) = t.get(&pk(1)).expect("get");
        assert_eq!(r2.disk_blocks_read, 0);
        assert_eq!(r2.disk_block_cache_hits, r1.disk_blocks_read);
        let (hits, _) = t.block_cache_stats();
        assert!(hits > 0);
    }

    /// Every crash point: arm, trigger, verify the operation fails and
    /// the table is poisoned, then reopen and check zero acknowledged
    /// writes were lost or corrupted.
    #[test]
    fn every_crash_point_recovers_with_zero_loss() {
        let flush_points = [
            CrashPoint::AfterFlushSstWrite,
            CrashPoint::AfterFlushWalRotate,
            CrashPoint::AfterFlushManifest,
        ];
        let compact_points = [
            CrashPoint::AfterCompactSstWrite,
            CrashPoint::AfterCompactManifest,
        ];
        for &point in &flush_points {
            let tmp = TempDir::new("dur-crash-flush");
            let mut oracle = Oracle::default();
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
            for c in 0..60u64 {
                let cell = Cell::synthetic(c, 3);
                oracle.put(pk(c % 2), cell.clone());
                t.put(pk(c % 2), cell).expect("put");
            }
            t.arm_crash_point(point);
            t.flush().expect_err("armed flush must fail");
            t.put(pk(0), Cell::synthetic(999, 0))
                .expect_err("poisoned table must reject writes");
            t.get(&pk(0)).expect_err("poisoned table must reject reads");
            drop(t);
            let (mut t, report) = DurableTable::open(tmp.path(), small_opts()).expect("reopen");
            oracle.assert_matches(&mut t);
            // No stray files: everything on disk is accounted for.
            if point == CrashPoint::AfterFlushManifest {
                // Committed: data lives in the SSTable.
                assert_eq!(report.sstables_loaded, 1, "{point:?}");
            } else {
                // Uncommitted: the orphan SSTable was removed and the WAL
                // replayed everything.
                assert_eq!(report.wal_records_replayed, 60, "{point:?}");
                assert!(report.orphan_files_removed >= 1, "{point:?}");
            }
        }
        for &point in &compact_points {
            let tmp = TempDir::new("dur-crash-compact");
            let mut oracle = Oracle::default();
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("open");
            for round in 0..2u64 {
                for c in 0..30u64 {
                    let cell = Cell::new(c, round as u8 + 1, vec![round as u8; 8]);
                    oracle.put(pk(c % 3), cell.clone());
                    t.put(pk(c % 3), cell).expect("put");
                }
                t.flush().expect("flush");
            }
            t.arm_crash_point(point);
            t.compact().expect_err("armed compact must fail");
            drop(t);
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts()).expect("reopen");
            oracle.assert_matches(&mut t);
            // Recovery converged: a follow-up compaction works fine.
            t.compact().expect("compact after recovery");
            oracle.assert_matches(&mut t);
        }
    }

    #[test]
    fn column_index_discontinuity_on_durable_reads() {
        // The Figure 6 knee: 1424 cells below, 1425 above.
        let tmp = TempDir::new("dur-knee");
        let opts = DurableOptions {
            memtable_flush_bytes: usize::MAX,
            ..small_opts()
        };
        let (mut t, _) = DurableTable::open(tmp.path(), opts).expect("open");
        for c in 0..1424u64 {
            t.put(pk(1), Cell::synthetic(c, 0)).expect("put");
        }
        for c in 0..1425u64 {
            t.put(pk(2), Cell::synthetic(c, 0)).expect("put");
        }
        t.flush().expect("flush");
        let (_, r1) = t.get(&pk(1)).expect("get");
        assert!(!r1.used_column_index);
        let (_, r2) = t.get(&pk(2)).expect("get");
        assert!(r2.used_column_index);
    }
}
