//! The table: memtable + SSTables + row cache, with merged reads.
//!
//! This is the per-node database instance the cluster layer talks to. The
//! read path mirrors Cassandra's: row cache → (memtable ∥ every SSTable not
//! excluded by its bloom filter) → merge newest-wins → fill cache.

use crate::cache::Lru;
use crate::compaction;
use crate::memtable::Memtable;
use crate::receipt::ReadReceipt;
use crate::schema::{Cell, ClusteringKey, PartitionKey};
use crate::sstable::{SsTable, SsTableOptions};
use std::collections::BTreeMap;
use std::ops::RangeInclusive;
use std::sync::Arc;

/// Table configuration.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Flush the memtable to an SSTable when it exceeds this many bytes.
    pub memtable_flush_bytes: usize,
    /// Column-index threshold per partition (Cassandra's
    /// `column_index_size_in_kb`, default 64 KiB).
    pub column_index_size: usize,
    /// Bloom-filter target false-positive rate.
    pub bloom_fp_rate: f64,
    /// Row-cache capacity in partitions (0 disables it).
    pub row_cache_partitions: usize,
    /// Trigger a full compaction when this many SSTables accumulate.
    pub compaction_threshold: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            memtable_flush_bytes: 8 * 1024 * 1024,
            column_index_size: 64 * 1024,
            bloom_fp_rate: 0.01,
            row_cache_partitions: 0,
            compaction_threshold: 4,
        }
    }
}

/// Lifetime counters for a table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableMetrics {
    /// Cells written.
    pub writes: u64,
    /// Logical reads served.
    pub reads: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Reads served entirely from the row cache.
    pub row_cache_hits: u64,
}

/// A single-node wide-column table.
///
/// ```
/// use kvs_store::{Cell, PartitionKey, Table, TableOptions};
///
/// let mut table = Table::new(TableOptions::default());
/// table.put(PartitionKey::from("users:eu"), Cell::new(1, 0, vec![0xAA]));
/// table.put(PartitionKey::from("users:eu"), Cell::new(2, 1, vec![0xBB]));
/// table.flush(); // memtable → SSTable
///
/// let (cells, receipt) = table.get(&PartitionKey::from("users:eu"));
/// assert_eq!(cells.len(), 2);
/// assert_eq!(receipt.sstables_read, 1);
/// ```
pub struct Table {
    opts: TableOptions,
    memtable: Memtable,
    sstables: Vec<SsTable>,
    row_cache: Lru<PartitionKey, Arc<Vec<Cell>>>,
    metrics: TableMetrics,
    next_generation: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(opts: TableOptions) -> Self {
        let row_cache = Lru::new(opts.row_cache_partitions);
        Table {
            opts,
            memtable: Memtable::new(),
            sstables: Vec::new(),
            row_cache,
            metrics: TableMetrics::default(),
            next_generation: 1,
        }
    }

    /// Creates a table with default options.
    pub fn with_defaults() -> Self {
        Self::new(TableOptions::default())
    }

    /// The configured options.
    pub fn options(&self) -> &TableOptions {
        &self.opts
    }

    /// Lifetime metrics.
    pub fn metrics(&self) -> TableMetrics {
        self.metrics
    }

    /// Number of live SSTables.
    pub fn sstable_count(&self) -> usize {
        self.sstables.len()
    }

    /// Total cells currently buffered in the memtable.
    pub fn memtable_cells(&self) -> usize {
        self.memtable.cells()
    }

    /// Writes one cell, flushing / compacting when thresholds trip.
    pub fn put(&mut self, pk: PartitionKey, cell: Cell) {
        self.metrics.writes += 1;
        self.row_cache.invalidate(&pk);
        self.memtable.insert(pk, cell);
        if self.memtable.bytes() >= self.opts.memtable_flush_bytes {
            self.flush();
        }
    }

    /// Bulk-loads cells for one partition (test/workload convenience).
    pub fn put_all(&mut self, pk: &PartitionKey, cells: impl IntoIterator<Item = Cell>) {
        for cell in cells {
            self.put(pk.clone(), cell);
        }
    }

    /// Forces the memtable to disk (a new SSTable), possibly compacting.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let drained = self.memtable.drain_sorted();
        let sst = SsTable::build(
            drained,
            SsTableOptions {
                column_index_size: self.opts.column_index_size,
                bloom_fp_rate: self.opts.bloom_fp_rate,
            },
            self.next_generation,
        );
        self.next_generation += 1;
        self.sstables.push(sst);
        self.metrics.flushes += 1;
        if self.sstables.len() >= self.opts.compaction_threshold {
            self.compact();
        }
    }

    /// Merges all SSTables into one (size-tiered "major" compaction).
    pub fn compact(&mut self) {
        if self.sstables.len() < 2 {
            return;
        }
        let merged = compaction::merge_all(
            std::mem::take(&mut self.sstables),
            SsTableOptions {
                column_index_size: self.opts.column_index_size,
                bloom_fp_rate: self.opts.bloom_fp_rate,
            },
            self.next_generation,
        );
        self.next_generation += 1;
        self.sstables.push(merged);
        self.metrics.compactions += 1;
        // Data moved; cached rows remain *logically* valid (compaction does
        // not change content), so the cache is kept.
    }

    /// Reads a whole partition, merging memtable and SSTables newest-wins.
    /// Returns the cells in clustering order plus the work receipt.
    pub fn get(&mut self, pk: &PartitionKey) -> (Vec<Cell>, ReadReceipt) {
        self.metrics.reads += 1;
        let mut receipt = ReadReceipt::default();
        if let Some(cached) = self.row_cache.get(pk) {
            receipt.row_cache_hit = true;
            receipt.cells_returned = cached.len() as u64;
            self.metrics.row_cache_hits += 1;
            return (cached.as_ref().clone(), receipt);
        }
        let mut merged: BTreeMap<ClusteringKey, Cell> = BTreeMap::new();
        // Oldest generation first so newer runs overwrite older cells.
        for sst in &self.sstables {
            if let Some(cells) = sst.read(pk, &mut receipt) {
                for cell in cells {
                    merged.insert(cell.clustering, cell);
                }
            }
        }
        if let Some(cells) = self.memtable.get(pk) {
            receipt.memtable_hit = true;
            for cell in cells {
                merged.insert(cell.clustering, cell);
            }
        }
        let out: Vec<Cell> = merged.into_values().collect();
        // `cells_returned` accumulated per-run counts double-merged cells;
        // report the merged truth instead.
        receipt.cells_returned = out.len() as u64;
        if !out.is_empty() {
            self.row_cache.put(pk.clone(), Arc::new(out.clone()));
        }
        (out, receipt)
    }

    /// Reads a clustering range of a partition (no row-cache interaction —
    /// Cassandra's row cache also only serves full-row reads).
    pub fn get_range(
        &mut self,
        pk: &PartitionKey,
        range: RangeInclusive<ClusteringKey>,
    ) -> (Vec<Cell>, ReadReceipt) {
        self.metrics.reads += 1;
        let mut receipt = ReadReceipt::default();
        let mut merged: BTreeMap<ClusteringKey, Cell> = BTreeMap::new();
        for sst in &self.sstables {
            for cell in sst.read_range(pk, range.clone(), &mut receipt) {
                merged.insert(cell.clustering, cell);
            }
        }
        let mem = self.memtable.get_range(pk, range);
        if !mem.is_empty() {
            receipt.memtable_hit = true;
            for cell in mem {
                merged.insert(cell.clustering, cell);
            }
        }
        let out: Vec<Cell> = merged.into_values().collect();
        receipt.cells_returned = out.len() as u64;
        (out, receipt)
    }

    /// Row-cache hit statistics `(hits, misses)`.
    pub fn row_cache_stats(&self) -> (u64, u64) {
        self.row_cache.hit_stats()
    }

    /// Exports the table's full logical contents as `(partition, cells)`
    /// pairs in partition order, merging every run and the memtable
    /// newest-wins — the input a durable bulk-load ingests. Does not
    /// mutate the table.
    pub fn export_partitions(&self) -> Vec<(PartitionKey, Vec<Cell>)> {
        let mut merged: BTreeMap<PartitionKey, BTreeMap<ClusteringKey, Cell>> = BTreeMap::new();
        // `sstables` is ascending by generation, so later inserts win.
        for sst in &self.sstables {
            for (pk, cells) in sst.partitions() {
                let slot = merged.entry(pk).or_default();
                for cell in cells {
                    slot.insert(cell.clustering, cell);
                }
            }
        }
        for (pk, cells) in self.memtable.snapshot_sorted() {
            let slot = merged.entry(pk).or_default();
            for cell in cells {
                slot.insert(cell.clustering, cell);
            }
        }
        merged
            .into_iter()
            .map(|(pk, cells)| (pk, cells.into_values().collect()))
            .collect()
    }

    /// Persists the table: flushes the memtable and serializes every run
    /// (see [`SsTable::serialize`]). The images plus the options are all
    /// that is needed to [`Table::restore`].
    pub fn snapshot(&mut self) -> Vec<bytes::Bytes> {
        self.flush();
        self.sstables.iter().map(|s| s.serialize()).collect()
    }

    /// Rebuilds a table from [`Table::snapshot`] images. Returns `None` if
    /// any image is corrupt (a partial restore would silently lose data).
    pub fn restore(
        opts: TableOptions,
        images: impl IntoIterator<Item = impl AsRef<[u8]>>,
    ) -> Option<Table> {
        let mut table = Table::new(opts);
        let mut max_generation = 0;
        for image in images {
            let sst = SsTable::deserialize(image.as_ref())?;
            max_generation = max_generation.max(sst.generation());
            table.sstables.push(sst);
        }
        table.sstables.sort_by_key(|s| s.generation());
        table.next_generation = max_generation + 1;
        Some(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(i: u64) -> PartitionKey {
        PartitionKey::from_id(i)
    }

    fn small_opts() -> TableOptions {
        TableOptions {
            memtable_flush_bytes: 46 * 100, // flush every 100 cells
            compaction_threshold: 100,      // no auto-compaction
            ..Default::default()
        }
    }

    #[test]
    fn read_your_writes_from_memtable() {
        let mut t = Table::with_defaults();
        t.put(pk(1), Cell::synthetic(10, 2));
        let (cells, receipt) = t.get(&pk(1));
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].kind, 2);
        assert!(receipt.memtable_hit);
        assert_eq!(receipt.sstables_read, 0);
    }

    #[test]
    fn read_after_flush_hits_sstable() {
        let mut t = Table::with_defaults();
        for c in 0..50u64 {
            t.put(pk(1), Cell::synthetic(c, 0));
        }
        t.flush();
        assert_eq!(t.sstable_count(), 1);
        assert_eq!(t.memtable_cells(), 0);
        let (cells, receipt) = t.get(&pk(1));
        assert_eq!(cells.len(), 50);
        assert!(!receipt.memtable_hit);
        assert_eq!(receipt.sstables_read, 1);
    }

    #[test]
    fn newest_write_wins_across_runs() {
        let mut t = Table::new(small_opts());
        t.put(pk(1), Cell::new(7, 1, vec![1]));
        t.flush();
        t.put(pk(1), Cell::new(7, 2, vec![2]));
        t.flush();
        t.put(pk(1), Cell::new(7, 3, vec![3])); // memtable, newest
        let (cells, _) = t.get(&pk(1));
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].kind, 3);
        // And after dropping the memtable version, the newest SSTable wins.
        let mut t2 = Table::new(small_opts());
        t2.put(pk(1), Cell::new(7, 1, vec![1]));
        t2.flush();
        t2.put(pk(1), Cell::new(7, 2, vec![2]));
        t2.flush();
        let (cells2, _) = t2.get(&pk(1));
        assert_eq!(cells2[0].kind, 2);
    }

    #[test]
    fn automatic_flush_on_threshold() {
        let mut t = Table::new(small_opts());
        for c in 0..250u64 {
            t.put(pk(c % 5), Cell::synthetic(c, 0));
        }
        assert!(t.metrics().flushes >= 2, "flushes: {}", t.metrics().flushes);
        // All data still readable.
        let total: usize = (0..5u64).map(|p| t.get(&pk(p)).0.len()).sum();
        assert_eq!(total, 250);
    }

    #[test]
    fn automatic_compaction_on_threshold() {
        let mut t = Table::new(TableOptions {
            memtable_flush_bytes: 46 * 10,
            compaction_threshold: 3,
            ..Default::default()
        });
        for c in 0..200u64 {
            t.put(pk(c % 4), Cell::synthetic(c, 0));
        }
        t.flush();
        assert!(t.metrics().compactions >= 1);
        assert!(t.sstable_count() < 3);
        let total: usize = (0..4u64).map(|p| t.get(&pk(p)).0.len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn merged_reads_span_memtable_and_sstables() {
        let mut t = Table::new(small_opts());
        for c in 0..10u64 {
            t.put(pk(1), Cell::synthetic(c, 0));
        }
        t.flush();
        for c in 10..20u64 {
            t.put(pk(1), Cell::synthetic(c, 1));
        }
        let (cells, receipt) = t.get(&pk(1));
        assert_eq!(cells.len(), 20);
        assert!(receipt.memtable_hit);
        assert_eq!(receipt.sstables_read, 1);
        assert!(cells.windows(2).all(|w| w[0].clustering < w[1].clustering));
    }

    #[test]
    fn range_reads_merge_correctly() {
        let mut t = Table::new(small_opts());
        for c in (0..100u64).step_by(2) {
            t.put(pk(1), Cell::synthetic(c, 0));
        }
        t.flush();
        for c in (1..100u64).step_by(2) {
            t.put(pk(1), Cell::synthetic(c, 1));
        }
        let (cells, _) = t.get_range(&pk(1), 10..=19);
        let keys: Vec<u64> = cells.iter().map(|c| c.clustering).collect();
        assert_eq!(keys, (10..=19).collect::<Vec<u64>>());
    }

    #[test]
    fn row_cache_serves_repeat_reads() {
        let mut t = Table::new(TableOptions {
            row_cache_partitions: 8,
            ..small_opts()
        });
        for c in 0..30u64 {
            t.put(pk(1), Cell::synthetic(c, 0));
        }
        t.flush();
        let (_, r1) = t.get(&pk(1));
        assert!(!r1.row_cache_hit);
        let (cells, r2) = t.get(&pk(1));
        assert!(r2.row_cache_hit);
        assert_eq!(cells.len(), 30);
        assert_eq!(t.metrics().row_cache_hits, 1);
    }

    #[test]
    fn writes_invalidate_row_cache() {
        let mut t = Table::new(TableOptions {
            row_cache_partitions: 8,
            ..small_opts()
        });
        t.put(pk(1), Cell::synthetic(0, 0));
        let _ = t.get(&pk(1));
        t.put(pk(1), Cell::synthetic(1, 0));
        let (cells, r) = t.get(&pk(1));
        assert!(!r.row_cache_hit, "stale cache served");
        assert_eq!(cells.len(), 2);
    }

    #[test]
    fn missing_partition_reads_empty() {
        let mut t = Table::with_defaults();
        t.put(pk(1), Cell::synthetic(0, 0));
        t.flush();
        let (cells, receipt) = t.get(&pk(99));
        assert!(cells.is_empty());
        assert_eq!(receipt.cells_returned, 0);
        let (cells2, _) = t.get_range(&pk(99), 0..=10);
        assert!(cells2.is_empty());
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let mut t = Table::new(small_opts());
        for c in 0..150u64 {
            t.put(pk(c % 3), Cell::synthetic(c, (c % 4) as u8));
        }
        t.flush();
        // Overwrite one cell in a later run so generation order matters.
        t.put(pk(0), Cell::new(0, 99, vec![1]));
        let images = t.snapshot();
        assert!(!images.is_empty());
        let mut restored = Table::restore(small_opts(), &images).expect("restore");
        for p in 0..3u64 {
            let (orig, _) = t.get(&pk(p));
            let (back, _) = restored.get(&pk(p));
            assert_eq!(orig, back, "partition {p}");
        }
        // Newest-wins must survive the roundtrip.
        let (cells, _) = restored.get(&pk(0));
        assert_eq!(cells[0].kind, 99);
        // And the restored table keeps accepting writes with a fresh
        // generation counter.
        restored.put(pk(9), Cell::synthetic(1, 1));
        restored.flush();
        assert_eq!(restored.get(&pk(9)).0.len(), 1);
    }

    #[test]
    fn restore_rejects_corruption() {
        let mut t = Table::new(small_opts());
        t.put(pk(1), Cell::synthetic(0, 0));
        let mut images: Vec<Vec<u8>> = t.snapshot().iter().map(|b| b.to_vec()).collect();
        images[0][2] ^= 0xFF;
        assert!(Table::restore(small_opts(), &images).is_none());
    }

    #[test]
    fn export_partitions_merges_newest_wins() {
        let mut t = Table::new(small_opts());
        t.put(pk(1), Cell::new(7, 1, vec![1]));
        t.flush();
        t.put(pk(1), Cell::new(7, 2, vec![2]));
        t.flush();
        t.put(pk(0), Cell::synthetic(0, 0)); // stays in the memtable
        t.put(pk(1), Cell::new(7, 3, vec![3]));
        let parts = t.export_partitions();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, pk(0));
        assert_eq!(parts[1].0, pk(1));
        assert_eq!(parts[1].1.len(), 1);
        assert_eq!(parts[1].1[0].kind, 3, "memtable version must win");
        // Export is non-destructive and matches reads.
        assert_eq!(t.get(&pk(1)).0, parts[1].1);
    }

    #[test]
    fn metrics_count_operations() {
        let mut t = Table::new(small_opts());
        for c in 0..10u64 {
            t.put(pk(0), Cell::synthetic(c, 0));
        }
        let _ = t.get(&pk(0));
        let _ = t.get_range(&pk(0), 0..=3);
        let m = t.metrics();
        assert_eq!(m.writes, 10);
        assert_eq!(m.reads, 2);
    }
}
