//! Compaction: merging sorted runs, newest generation wins.
//!
//! The table uses a simple size-tiered "major" compaction — merge every
//! live run into one — which is all the experiments need: the paper's
//! datasets are bulk-loaded once and then read-only.

use crate::schema::{Cell, ClusteringKey, PartitionKey};
use crate::sstable::{SsTable, SsTableOptions};
use std::collections::BTreeMap;

/// Merges all `runs` into a single SSTable with generation `generation`.
/// On clustering-key conflicts the cell from the highest-generation run
/// wins (runs are sorted by generation internally, so callers may pass them
/// in any order).
pub fn merge_all(mut runs: Vec<SsTable>, opts: SsTableOptions, generation: u64) -> SsTable {
    runs.sort_by_key(|s| s.generation());
    let mut merged: BTreeMap<PartitionKey, BTreeMap<ClusteringKey, Cell>> = BTreeMap::new();
    for run in &runs {
        for (pk, cells) in run.partitions() {
            let slot = merged.entry(pk).or_default();
            for cell in cells {
                // Later (newer-generation) runs overwrite earlier ones.
                slot.insert(cell.clustering, cell);
            }
        }
    }
    let input: Vec<(PartitionKey, Vec<Cell>)> = merged
        .into_iter()
        .map(|(pk, cells)| (pk, cells.into_values().collect()))
        .collect();
    SsTable::build(input, opts, generation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receipt::ReadReceipt;

    fn pk(i: u64) -> PartitionKey {
        PartitionKey::from_id(i)
    }

    fn run(generation: u64, parts: Vec<(u64, Vec<Cell>)>) -> SsTable {
        let input = parts.into_iter().map(|(p, cells)| (pk(p), cells)).collect();
        SsTable::build(input, SsTableOptions::default(), generation)
    }

    #[test]
    fn merge_unions_partitions() {
        let a = run(1, vec![(1, vec![Cell::synthetic(0, 0)])]);
        let b = run(2, vec![(2, vec![Cell::synthetic(0, 0)])]);
        let merged = merge_all(vec![a, b], SsTableOptions::default(), 3);
        assert_eq!(merged.partition_count(), 2);
        assert_eq!(merged.generation(), 3);
    }

    #[test]
    fn newer_generation_wins_conflicts() {
        let old = run(1, vec![(1, vec![Cell::new(5, 1, vec![1])])]);
        let new = run(2, vec![(1, vec![Cell::new(5, 2, vec![2])])]);
        // Pass out of order to check the internal sort.
        let merged = merge_all(vec![new, old], SsTableOptions::default(), 3);
        let mut r = ReadReceipt::default();
        let cells = merged.read(&pk(1), &mut r).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].kind, 2);
    }

    #[test]
    fn merge_interleaves_clustering_keys() {
        let a = run(
            1,
            vec![(
                1,
                (0..10).step_by(2).map(|c| Cell::synthetic(c, 0)).collect(),
            )],
        );
        let b = run(
            2,
            vec![(
                1,
                (1..10).step_by(2).map(|c| Cell::synthetic(c, 1)).collect(),
            )],
        );
        let merged = merge_all(vec![a, b], SsTableOptions::default(), 3);
        let mut r = ReadReceipt::default();
        let cells = merged.read(&pk(1), &mut r).unwrap();
        let keys: Vec<u64> = cells.iter().map(|c| c.clustering).collect();
        assert_eq!(keys, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn merging_one_or_zero_runs() {
        let single = merge_all(
            vec![run(1, vec![(1, vec![Cell::synthetic(0, 0)])])],
            SsTableOptions::default(),
            2,
        );
        assert_eq!(single.partition_count(), 1);
        let empty = merge_all(Vec::new(), SsTableOptions::default(), 1);
        assert_eq!(empty.partition_count(), 0);
    }
}
