//! A classic Bloom filter, used per SSTable to skip runs that cannot
//! contain a partition key.
//!
//! Cassandra keeps one bloom filter per SSTable for exactly this purpose;
//! the paper's database model (§VI-a) names bloom-filter false positives as
//! one source of the latency variance the mixture distributions capture.

/// A fixed-size Bloom filter with `k` double-hashed probe positions.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of bits (`m`).
    m: u64,
    /// Number of probes per key (`k`).
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Sizes the filter for `expected_items` at the given target false
    /// positive rate, using the standard `m = −n·ln p / ln² 2`,
    /// `k = (m/n)·ln 2` formulas.
    pub fn with_rate(expected_items: usize, fp_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = fp_rate.clamp(1e-9, 0.5);
        let m = (-(n * p.ln()) / (2f64.ln() * 2f64.ln())).ceil().max(8.0) as u64;
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 30.0) as u32;
        BloomFilter {
            bits: vec![0u64; (m as usize).div_ceil(64)],
            m,
            k,
            inserted: 0,
        }
    }

    /// Number of probe positions per key.
    pub fn probes(&self) -> u32 {
        self.k
    }

    /// Number of keys inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Filter size in bits.
    pub fn bits(&self) -> u64 {
        self.m
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hashes(key);
        for i in 0..self.k {
            let bit = probe(h1, h2, i, self.m);
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Returns `false` when the key is definitely absent; `true` when it
    /// may be present (false positives possible at the configured rate).
    pub fn maybe_contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = hashes(key);
        (0..self.k).all(|i| {
            let bit = probe(h1, h2, i, self.m);
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Appends the filter's binary image: `m` (u64) ⋅ `k` (u32) ⋅
    /// `inserted` (u64) ⋅ word count (u32) ⋅ the bit words (u64 each).
    /// Used by the durable SSTable format so a loaded run keeps the exact
    /// filter it was built with (bit-identical false positives).
    pub fn serialize(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u64(self.m);
        buf.put_u32(self.k);
        buf.put_u64(self.inserted);
        buf.put_u32(self.bits.len() as u32);
        for w in &self.bits {
            buf.put_u64(*w);
        }
    }

    /// Rebuilds a filter from [`BloomFilter::serialize`] output. `None` on
    /// truncation or an inconsistent word count.
    pub fn deserialize(buf: &mut bytes::Bytes) -> Option<BloomFilter> {
        use bytes::Buf;
        if buf.len() < 8 + 4 + 8 + 4 {
            return None;
        }
        let m = buf.get_u64();
        let k = buf.get_u32();
        let inserted = buf.get_u64();
        let words = buf.get_u32() as usize;
        if words != (m as usize).div_ceil(64) || buf.len() < words * 8 {
            return None;
        }
        let bits = (0..words).map(|_| buf.get_u64()).collect();
        Some(BloomFilter {
            bits,
            m,
            k,
            inserted,
        })
    }

    /// Measures the empirical false-positive rate against a sample of keys
    /// known to be absent (testing/diagnostics helper).
    pub fn empirical_fp_rate<'a>(&self, absent_keys: impl Iterator<Item = &'a [u8]>) -> f64 {
        let mut total = 0u64;
        let mut fp = 0u64;
        for key in absent_keys {
            total += 1;
            if self.maybe_contains(key) {
                fp += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            fp as f64 / total as f64
        }
    }
}

/// Two independent 64-bit hashes (FNV-1a and an xorshift-multiplied
/// variant) combined via Kirsch–Mitzenmacher double hashing.
fn hashes(key: &[u8]) -> (u64, u64) {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h1 ^= b as u64;
        h1 = h1.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut h2 = h1 ^ 0x9E37_79B9_7F4A_7C15;
    h2 ^= h2 >> 33;
    h2 = h2.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h2 ^= h2 >> 33;
    (h1, h2 | 1) // force h2 odd so probe strides cover the table
}

fn probe(h1: u64, h2: u64, i: u32, m: u64) -> u64 {
    h1.wrapping_add(h2.wrapping_mul(i as u64)) % m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_rate(1000, 0.01);
        let keys: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| format!("key-{i}").into_bytes())
            .collect();
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            assert!(bf.maybe_contains(k), "false negative for {k:?}");
        }
        assert_eq!(bf.inserted(), 1000);
    }

    #[test]
    fn false_positive_rate_is_near_target() {
        let mut bf = BloomFilter::with_rate(10_000, 0.01);
        for i in 0..10_000u32 {
            bf.insert(format!("present-{i}").as_bytes());
        }
        let absent: Vec<Vec<u8>> = (0..10_000u32)
            .map(|i| format!("absent-{i}").into_bytes())
            .collect();
        let rate = bf.empirical_fp_rate(absent.iter().map(|k| k.as_slice()));
        assert!(rate < 0.03, "fp rate {rate} too far above the 1 % target");
    }

    #[test]
    fn lower_target_rate_uses_more_bits() {
        let loose = BloomFilter::with_rate(1000, 0.1);
        let tight = BloomFilter::with_rate(1000, 0.001);
        assert!(tight.bits() > loose.bits());
        assert!(tight.probes() > loose.probes());
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = BloomFilter::with_rate(100, 0.01);
        assert!(!bf.maybe_contains(b"anything"));
        assert_eq!(bf.empirical_fp_rate([b"x".as_slice()].into_iter()), 0.0);
    }

    #[test]
    fn serialize_roundtrips_bit_identical() {
        let mut bf = BloomFilter::with_rate(500, 0.01);
        for i in 0..500u32 {
            bf.insert(format!("k{i}").as_bytes());
        }
        let mut buf = bytes::BytesMut::new();
        bf.serialize(&mut buf);
        let mut bytes = buf.freeze();
        let back = BloomFilter::deserialize(&mut bytes).expect("roundtrip");
        assert!(bytes.is_empty());
        assert_eq!(back.bits, bf.bits);
        assert_eq!(back.m, bf.m);
        assert_eq!(back.k, bf.k);
        assert_eq!(back.inserted(), 500);
        // Truncations rejected.
        let mut buf2 = bytes::BytesMut::new();
        bf.serialize(&mut buf2);
        let full = buf2.freeze();
        for cut in [0usize, 10, full.len() - 1] {
            let mut partial = full.slice(..cut);
            assert!(
                BloomFilter::deserialize(&mut partial).is_none(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let mut bf = BloomFilter::with_rate(0, 0.01);
        bf.insert(b"a");
        assert!(bf.maybe_contains(b"a"));
        let bf2 = BloomFilter::with_rate(10, 0.0); // rate clamped
        assert!(bf2.bits() > 0);
    }
}
