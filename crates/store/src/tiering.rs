//! Hierarchical storage tiers — the paper's §IX future work, implemented.
//!
//! "As a future work, we aim to extend our model to consider hierarchical
//! storage architectures such as the recently presented KNL Intel CPU …
//! multiple levels of storage, with an hierarchy between two kinds of ram
//! memory, NVM, and SSD and rotational disks. We aim to extend the model to
//! predict the time of serving requests out of each of these devices."
//!
//! [`StorageHierarchy`] models an ordered stack of devices; a dataset fills
//! them waterfall-style (hottest data in the fastest tier), and a read of a
//! row whose placement is uniform over the dataset pays each tier's seek +
//! transfer cost in proportion to the residency split. This produces the
//! device-capacity "steps" in response time as the working set grows — the
//! design signal the paper wanted the extended model to expose.

/// One storage device class.
#[derive(Debug, Clone, PartialEq)]
pub struct Tier {
    /// Human-readable device name.
    pub name: &'static str,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Fixed per-request cost of touching this device, µs (seek/queue).
    pub access_latency_us: f64,
    /// Streaming bandwidth in bytes per millisecond.
    pub bandwidth_bytes_per_ms: f64,
}

/// An ordered storage stack, fastest first.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageHierarchy {
    tiers: Vec<Tier>,
}

impl StorageHierarchy {
    /// Builds a hierarchy from tiers ordered fastest → slowest.
    ///
    /// # Panics
    /// If `tiers` is empty or any capacity/bandwidth is zero.
    pub fn new(tiers: Vec<Tier>) -> Self {
        assert!(!tiers.is_empty(), "need at least one tier");
        for t in &tiers {
            assert!(t.capacity_bytes > 0, "{}: zero capacity", t.name);
            assert!(t.bandwidth_bytes_per_ms > 0.0, "{}: zero bandwidth", t.name);
        }
        StorageHierarchy { tiers }
    }

    /// A Knights-Landing-era hierarchy: on-package MCDRAM, DDR4, NVM, SATA
    /// SSD and a rotational disk (§IX's example).
    pub fn knl_like() -> Self {
        StorageHierarchy::new(vec![
            Tier {
                name: "MCDRAM",
                capacity_bytes: 16 << 30,
                access_latency_us: 0.15,
                bandwidth_bytes_per_ms: 400e6,
            },
            Tier {
                name: "DDR4",
                capacity_bytes: 96 << 30,
                access_latency_us: 0.3,
                bandwidth_bytes_per_ms: 90e6,
            },
            Tier {
                name: "NVM",
                capacity_bytes: 512 << 30,
                access_latency_us: 10.0,
                bandwidth_bytes_per_ms: 20e6,
            },
            Tier {
                name: "SSD",
                capacity_bytes: 2 << 40,
                access_latency_us: 90.0,
                bandwidth_bytes_per_ms: 5e6,
            },
            Tier {
                name: "HDD",
                capacity_bytes: 8 << 40,
                access_latency_us: 8_000.0,
                bandwidth_bytes_per_ms: 1.5e6,
            },
        ])
    }

    /// The tiers, fastest first.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Total capacity of the stack.
    pub fn total_capacity(&self) -> u64 {
        self.tiers.iter().map(|t| t.capacity_bytes).sum()
    }

    /// Waterfall residency of a `working_set` bytes dataset: the fraction
    /// living on each tier, filling fastest tiers first. Data beyond the
    /// stack's total capacity is attributed to the slowest tier (an
    /// overflowing deployment still has to read it from somewhere).
    pub fn residency(&self, working_set: u64) -> Vec<f64> {
        if working_set == 0 {
            let mut r = vec![0.0; self.tiers.len()];
            r[0] = 1.0;
            return r;
        }
        let mut remaining = working_set;
        let mut split = Vec::with_capacity(self.tiers.len());
        for (i, tier) in self.tiers.iter().enumerate() {
            let here = if i + 1 == self.tiers.len() {
                remaining // slowest tier absorbs any overflow
            } else {
                remaining.min(tier.capacity_bytes)
            };
            split.push(here as f64 / working_set as f64);
            remaining -= here;
        }
        split
    }

    /// Expected time to read `bytes` of row data out of a `working_set`
    /// dataset whose rows are uniformly spread over the residency split,
    /// in ms.
    pub fn read_ms(&self, bytes: u64, working_set: u64) -> f64 {
        self.residency(working_set)
            .iter()
            .zip(&self.tiers)
            .filter(|(frac, _)| **frac > 0.0)
            .map(|(frac, tier)| {
                frac * (tier.access_latency_us / 1_000.0
                    + bytes as f64 / tier.bandwidth_bytes_per_ms)
            })
            .sum()
    }

    /// The working-set sizes where the expected read cost jumps — the
    /// cumulative tier capacities (design-relevant "cliff" points).
    pub fn capacity_cliffs(&self) -> Vec<(&'static str, u64)> {
        let mut acc = 0u64;
        self.tiers
            .iter()
            .take(self.tiers.len() - 1)
            .map(|t| {
                acc += t.capacity_bytes;
                (t.name, acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> StorageHierarchy {
        StorageHierarchy::new(vec![
            Tier {
                name: "ram",
                capacity_bytes: 1_000,
                access_latency_us: 1.0,
                bandwidth_bytes_per_ms: 1_000.0,
            },
            Tier {
                name: "disk",
                capacity_bytes: 9_000,
                access_latency_us: 1_000.0,
                bandwidth_bytes_per_ms: 100.0,
            },
        ])
    }

    #[test]
    fn residency_waterfalls() {
        let h = two_tier();
        assert_eq!(h.residency(500), vec![1.0, 0.0]);
        assert_eq!(h.residency(2_000), vec![0.5, 0.5]);
        assert_eq!(h.residency(10_000), vec![0.1, 0.9]);
        // Overflow goes to the slowest tier.
        let over = h.residency(100_000);
        assert!((over[0] - 0.01).abs() < 1e-12);
        assert!((over[1] - 0.99).abs() < 1e-12);
        let sum: f64 = over.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_working_set_is_fast_tier() {
        let h = two_tier();
        assert_eq!(h.residency(0), vec![1.0, 0.0]);
    }

    #[test]
    fn read_cost_grows_with_working_set() {
        let h = two_tier();
        let in_ram = h.read_ms(100, 500);
        let half = h.read_ms(100, 2_000);
        let mostly_disk = h.read_ms(100, 10_000);
        assert!(in_ram < half && half < mostly_disk);
        // Fully-in-RAM read: 1 µs + 100/1000 ms = 0.101 ms.
        assert!((in_ram - 0.101).abs() < 1e-9);
    }

    #[test]
    fn cliffs_are_cumulative_capacities() {
        let h = StorageHierarchy::knl_like();
        let cliffs = h.capacity_cliffs();
        assert_eq!(cliffs.len(), 4);
        assert_eq!(cliffs[0].0, "MCDRAM");
        assert_eq!(cliffs[0].1, 16 << 30);
        assert_eq!(cliffs[1].1, (16 << 30) + (96 << 30));
        // Cliffs strictly increase.
        assert!(cliffs.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn knl_tiers_are_ordered_fast_to_slow() {
        let h = StorageHierarchy::knl_like();
        let lat: Vec<f64> = h.tiers().iter().map(|t| t.access_latency_us).collect();
        assert!(lat.windows(2).all(|w| w[0] <= w[1]), "{lat:?}");
        let bw: Vec<f64> = h.tiers().iter().map(|t| t.bandwidth_bytes_per_ms).collect();
        assert!(bw.windows(2).all(|w| w[0] >= w[1]), "{bw:?}");
    }

    #[test]
    fn read_cost_steps_at_cliffs() {
        let h = StorageHierarchy::knl_like();
        let row = 65_536u64; // one 64 KiB row
        let before = h.read_ms(row, (16u64 << 30) - (1 << 20));
        let after = h.read_ms(row, 20u64 << 30);
        assert!(
            after > before * 1.2,
            "no step at the MCDRAM cliff: {before} → {after}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_hierarchy_rejected() {
        let _ = StorageHierarchy::new(Vec::new());
    }
}
