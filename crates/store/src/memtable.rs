//! The in-memory write buffer: a sorted map of sorted maps.
//!
//! Exactly Cassandra's shape (§II of the paper): partition key → sorted
//! (clustering key → cell). Newest write wins on a clustering-key conflict.

use crate::schema::{Cell, ClusteringKey, PartitionKey};
use std::collections::BTreeMap;
use std::ops::RangeInclusive;

/// A mutable, sorted write buffer.
#[derive(Debug, Default)]
pub struct Memtable {
    partitions: BTreeMap<PartitionKey, BTreeMap<ClusteringKey, Cell>>,
    bytes: usize,
    cells: usize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or overwrites) a cell. Returns `true` when the cell
    /// replaced an existing clustering key.
    pub fn insert(&mut self, pk: PartitionKey, cell: Cell) -> bool {
        let size = cell.encoded_len();
        let slot = self.partitions.entry(pk).or_default();
        match slot.insert(cell.clustering, cell) {
            Some(old) => {
                self.bytes = self.bytes - old.encoded_len() + size;
                true
            }
            None => {
                self.bytes += size;
                self.cells += 1;
                false
            }
        }
    }

    /// All cells of a partition, in clustering order.
    pub fn get(&self, pk: &PartitionKey) -> Option<Vec<Cell>> {
        self.partitions
            .get(pk)
            .map(|m| m.values().cloned().collect())
    }

    /// Cells of a partition within a clustering range, in order.
    pub fn get_range(&self, pk: &PartitionKey, range: RangeInclusive<ClusteringKey>) -> Vec<Cell> {
        self.partitions
            .get(pk)
            .map(|m| m.range(range).map(|(_, c)| c.clone()).collect())
            .unwrap_or_default()
    }

    /// True when the partition has at least one cell.
    pub fn contains_partition(&self, pk: &PartitionKey) -> bool {
        self.partitions.contains_key(pk)
    }

    /// Approximate encoded size of the buffered data.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of buffered cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of distinct partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Clones the contents into `(partition, cells)` pairs in partition
    /// order *without* draining. The durable flush builds its SSTable from
    /// this and only clears the memtable after the manifest commit, so a
    /// crash mid-flush loses nothing.
    pub fn snapshot_sorted(&self) -> Vec<(PartitionKey, Vec<Cell>)> {
        self.partitions
            .iter()
            .map(|(pk, cells)| (pk.clone(), cells.values().cloned().collect()))
            .collect()
    }

    /// Drains the memtable into `(partition, cells)` pairs in partition
    /// order — the input an SSTable build wants.
    pub fn drain_sorted(&mut self) -> Vec<(PartitionKey, Vec<Cell>)> {
        self.bytes = 0;
        self.cells = 0;
        std::mem::take(&mut self.partitions)
            .into_iter()
            .map(|(pk, cells)| (pk, cells.into_values().collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(i: u64) -> PartitionKey {
        PartitionKey::from_id(i)
    }

    #[test]
    fn insert_and_get_sorted() {
        let mut mt = Memtable::new();
        for c in [5u64, 1, 3] {
            mt.insert(pk(1), Cell::synthetic(c, 0));
        }
        let cells = mt.get(&pk(1)).unwrap();
        let keys: Vec<u64> = cells.iter().map(|c| c.clustering).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert!(mt.get(&pk(2)).is_none());
    }

    #[test]
    fn overwrite_keeps_newest_and_accounts_bytes() {
        let mut mt = Memtable::new();
        assert!(!mt.insert(pk(1), Cell::new(7, 0, vec![0u8; 10])));
        let bytes_before = mt.bytes();
        assert!(mt.insert(pk(1), Cell::new(7, 9, vec![0u8; 20])));
        assert_eq!(mt.cells(), 1);
        assert_eq!(mt.bytes(), bytes_before + 10);
        assert_eq!(mt.get(&pk(1)).unwrap()[0].kind, 9);
    }

    #[test]
    fn range_reads() {
        let mut mt = Memtable::new();
        for c in 0..10u64 {
            mt.insert(pk(1), Cell::synthetic(c, 0));
        }
        let cells = mt.get_range(&pk(1), 3..=6);
        let keys: Vec<u64> = cells.iter().map(|c| c.clustering).collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
        assert!(mt.get_range(&pk(2), 0..=100).is_empty());
    }

    #[test]
    fn drain_returns_partition_order_and_empties() {
        let mut mt = Memtable::new();
        mt.insert(pk(2), Cell::synthetic(1, 0));
        mt.insert(pk(1), Cell::synthetic(2, 0));
        mt.insert(pk(1), Cell::synthetic(1, 0));
        let drained = mt.drain_sorted();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, pk(1));
        assert_eq!(drained[0].1.len(), 2);
        assert_eq!(drained[1].0, pk(2));
        assert!(mt.is_empty());
        assert_eq!(mt.bytes(), 0);
        assert_eq!(mt.cells(), 0);
    }

    #[test]
    fn snapshot_matches_drain_but_keeps_contents() {
        let mut mt = Memtable::new();
        mt.insert(pk(2), Cell::synthetic(1, 0));
        mt.insert(pk(1), Cell::synthetic(2, 0));
        let snap = mt.snapshot_sorted();
        assert_eq!(mt.cells(), 2, "snapshot must not drain");
        assert_eq!(snap, mt.drain_sorted());
        assert!(mt.is_empty());
    }

    #[test]
    fn counters_track_inserts() {
        let mut mt = Memtable::new();
        for p in 0..3u64 {
            for c in 0..4u64 {
                mt.insert(pk(p), Cell::synthetic(c, 0));
            }
        }
        assert_eq!(mt.cells(), 12);
        assert_eq!(mt.partition_count(), 3);
        assert_eq!(mt.bytes(), 12 * 46);
        assert!(mt.contains_partition(&pk(0)));
        assert!(!mt.contains_partition(&pk(9)));
    }
}
