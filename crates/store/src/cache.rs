//! A small O(log n) LRU cache, used as the table's row cache.
//!
//! The paper's database model calls out caches as a variance source:
//! "a miss in a cache … can arbitrarily make a request orders of magnitude
//! slower than average" (§VI-a), and its related-work discussion notes that
//! replica-spreading defeats caching. The row cache here lets the cost
//! model and the ablation benches quantify both effects.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// An LRU cache over hashable keys.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    /// recency tick → key; the smallest tick is the eviction victim.
    order: BTreeMap<u64, K>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates a cache holding up to `capacity` entries. Capacity 0 is a
    /// legal "always miss" cache.
    pub fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((_, last)) => {
                self.order.remove(last);
                *last = tick;
                self.order.insert(tick, key.clone());
                self.hits += 1;
                // Reborrow immutably for the return value.
                self.map.get(key).map(|(v, _)| v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or replaces an entry, evicting the least recently used entry
    /// if the cache is over capacity.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((_, old_tick)) = self.map.insert(key.clone(), (value, self.tick)) {
            self.order.remove(&old_tick);
        }
        self.order.insert(self.tick, key);
        while self.map.len() > self.capacity {
            let (_, victim) = self.order.pop_first().expect("order tracks map");
            self.map.remove(&victim);
        }
    }

    /// Removes an entry (used on writes to keep the cache coherent).
    pub fn invalidate(&mut self, key: &K) {
        if let Some((_, tick)) = self.map.remove(key) {
            self.order.remove(&tick);
        }
    }

    /// Drops everything (used after compaction rewrites the data).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime (hits, misses).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put() {
        let mut c = Lru::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"z"), None);
        assert_eq!(c.hit_stats(), (2, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = Lru::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.get(&"a"); // refresh a → b is LRU
        c.put("c", 3);
        assert_eq!(c.get(&"b"), None, "b should have been evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_recency() {
        let mut c = Lru::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10); // a refreshed → b is LRU
        c.put("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = Lru::new(4);
        c.put(1, "x");
        c.put(2, "y");
        c.invalidate(&1);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        // Internal order map must not leak stale entries.
        c.put(3, "z");
        assert_eq!(c.get(&3), Some(&"z"));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = Lru::new(0);
        c.put("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let mut c = Lru::new(16);
        for i in 0..10_000u32 {
            c.put(i, i * 2);
        }
        assert_eq!(c.len(), 16);
        // The 16 newest keys survive.
        for i in 10_000 - 16..10_000 {
            assert_eq!(c.get(&i), Some(&(i * 2)), "key {i} missing");
        }
    }
}
