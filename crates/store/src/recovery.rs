//! Crash recovery: rebuild a durable table from whatever a crash left on
//! disk.
//!
//! The recovery contract follows from the flush/compaction ordering in
//! [`crate::durable`] (SSTable write → WAL rotate → manifest commit →
//! garbage collection):
//!
//! 1. **The manifest is the truth.** Load it ([`crate::manifest`]); a
//!    fresh directory gets the default. A corrupt manifest is a hard
//!    error — guessing the live SSTable set can resurrect deleted data.
//! 2. **Open the live SSTables** in generation order. A missing or
//!    corrupt live SSTable is a hard error (it was committed; its data
//!    cannot be recreated).
//! 3. **Delete orphans**: SSTable files whose generation is not live
//!    (flush/compaction completed the write but crashed before the
//!    manifest commit), `*.tmp` leftovers, and WAL segments below
//!    `wal_seq` (their data is in a committed SSTable).
//! 4. **Replay the WAL**: every segment with `seq >= wal_seq`, ascending,
//!    records applied in append order (newest wins). A torn or corrupt
//!    tail stops replay of that segment cleanly — everything before it is
//!    intact — and is reported in the [`RecoveryReport`].
//!
//! The rebuilt memtable is *not* re-flushed and the manifest is *not*
//! rewritten: recovery is read-only apart from garbage collection, so a
//! second crash during recovery is harmless.

use crate::manifest::{Manifest, MANIFEST_TMP_FILE};
use crate::memtable::Memtable;
use crate::sst_file::{parse_sst_generation, sst_file_name, SstFile};
use crate::wal::{self, WalTail};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What recovery found and did — surfaced through
/// [`crate::durable::DurableTable::open`] so tests (and operators) can
/// assert that a restart really replayed the WAL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Live SSTable files opened from the manifest.
    pub sstables_loaded: usize,
    /// WAL segments replayed (seq ≥ the manifest's `wal_seq`).
    pub wal_segments_replayed: usize,
    /// Put records applied to the rebuilt memtable.
    pub wal_records_replayed: u64,
    /// Cells resident in the rebuilt memtable (≤ records replayed when
    /// replays overwrote the same clustering key).
    pub cells_recovered: u64,
    /// A segment ended mid-record — the classic crash-during-append.
    pub wal_torn_tail: bool,
    /// A segment had a checksum mismatch or undecodable record.
    pub wal_corrupt_tail: bool,
    /// Orphan files removed (uncommitted SSTables, tmp files, stale WAL
    /// segments).
    pub orphan_files_removed: usize,
}

/// Everything [`recover`] hands back to [`crate::durable::DurableTable`].
#[derive(Debug)]
pub struct Recovered {
    /// The manifest that was on disk (or the default for a fresh dir).
    pub manifest: Manifest,
    /// Live SSTables, ascending generation.
    pub ssts: Vec<SstFile>,
    /// The memtable rebuilt from WAL replay.
    pub memtable: Memtable,
    /// The record seq the next WAL append must use: strictly above every
    /// replayed record and the manifest's own high-water mark.
    pub next_record_seq: u64,
    /// The segment seq the next WAL segment must use: strictly above
    /// every segment file seen on disk and the manifest's `wal_seq`.
    pub next_segment_seq: u64,
    /// The report, for observability.
    pub report: RecoveryReport,
}

/// Recovers a durable table directory. `dir` must exist.
pub fn recover(dir: &Path) -> io::Result<Recovered> {
    let manifest = Manifest::load(dir)?.unwrap_or_default();
    let mut report = RecoveryReport::default();

    // Inventory the directory once.
    let mut sst_files: BTreeMap<u64, PathBuf> = BTreeMap::new();
    let mut tmp_files: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(generation) = parse_sst_generation(name) {
            sst_files.insert(generation, entry.path());
        } else if name.ends_with(".tmp") && name != MANIFEST_TMP_FILE {
            // MANIFEST.tmp is cleaned below with the rest; any other tmp
            // file is an interrupted SSTable write.
            tmp_files.push(entry.path());
        }
    }

    // 2. Open the committed SSTable set; each one must be present and intact.
    let mut ssts = Vec::with_capacity(manifest.live.len());
    for &generation in &manifest.live {
        let path = sst_files.remove(&generation).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "manifest lists generation {generation} but {} is missing",
                    dir.join(sst_file_name(generation)).display()
                ),
            )
        })?;
        ssts.push(SstFile::open(&path)?);
    }
    report.sstables_loaded = ssts.len();

    // 3. Garbage-collect: uncommitted SSTables, tmp leftovers, stale WAL
    // segments, and a stray MANIFEST.tmp.
    for (_, path) in sst_files {
        fs::remove_file(&path)?;
        report.orphan_files_removed += 1;
    }
    for path in tmp_files {
        fs::remove_file(&path)?;
        report.orphan_files_removed += 1;
    }
    let manifest_tmp = dir.join(MANIFEST_TMP_FILE);
    if manifest_tmp.exists() {
        fs::remove_file(&manifest_tmp)?;
        report.orphan_files_removed += 1;
    }

    let mut max_segment_seq: u64 = 0;
    let mut max_record_seq: Option<u64> = None;
    let mut memtable = Memtable::new();

    // 4. Replay live segments ascending; drop stale ones.
    for (seq, path) in wal::list_segments(dir)? {
        max_segment_seq = max_segment_seq.max(seq);
        if seq < manifest.wal_seq {
            fs::remove_file(&path)?;
            report.orphan_files_removed += 1;
            continue;
        }
        let replay = wal::replay_segment(&path)?;
        if replay.header_seq.is_some_and(|h| h != seq) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: header seq {:?} does not match file name",
                    path.display(),
                    replay.header_seq
                ),
            ));
        }
        report.wal_segments_replayed += 1;
        for rec in replay.records {
            max_record_seq = Some(max_record_seq.map_or(rec.seq, |m| m.max(rec.seq)));
            memtable.insert(rec.key, rec.cell);
            report.wal_records_replayed += 1;
        }
        match replay.tail {
            WalTail::Clean => {}
            WalTail::Torn { .. } => report.wal_torn_tail = true,
            WalTail::Corrupt { .. } => report.wal_corrupt_tail = true,
        }
    }
    report.cells_recovered = memtable.cells() as u64;

    let next_record_seq = manifest
        .next_record_seq
        .max(max_record_seq.map_or(0, |m| m + 1));
    // Strictly above every segment seen (replayed segments stay on disk —
    // their records must survive a second crash — so the fresh segment
    // must not collide), and at least `wal_seq` so the fresh segment
    // itself is replayed next time.
    let next_segment_seq = (max_segment_seq + 1).max(manifest.wal_seq);
    Ok(Recovered {
        manifest,
        ssts,
        memtable,
        next_record_seq,
        next_segment_seq,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::TempDir;
    use crate::schema::{Cell, PartitionKey};
    use crate::sst_file::write_sst;
    use crate::sstable::SsTableOptions;
    use crate::wal::{FsyncPolicy, WalWriter};

    fn pk(i: u64) -> PartitionKey {
        PartitionKey::from_id(i)
    }

    #[test]
    fn fresh_directory_recovers_to_empty() {
        let tmp = TempDir::new("rec-fresh");
        let r = recover(tmp.path()).expect("recover");
        assert_eq!(r.manifest, Manifest::default());
        assert!(r.ssts.is_empty());
        assert!(r.memtable.is_empty());
        assert_eq!(r.next_record_seq, 0);
        assert_eq!(r.next_segment_seq, 1);
        assert_eq!(r.report, RecoveryReport::default());
    }

    #[test]
    fn wal_records_rebuild_the_memtable() {
        let tmp = TempDir::new("rec-replay");
        let mut w = WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::Always).expect("wal");
        for i in 0..25u64 {
            w.append(&pk(i % 4), &Cell::synthetic(i, 0))
                .expect("append");
        }
        drop(w);
        let r = recover(tmp.path()).expect("recover");
        assert_eq!(r.report.wal_segments_replayed, 1);
        assert_eq!(r.report.wal_records_replayed, 25);
        assert_eq!(r.report.cells_recovered, 25);
        assert_eq!(r.memtable.cells(), 25);
        assert_eq!(r.next_record_seq, 25);
        assert_eq!(r.next_segment_seq, 2);
        assert!(!r.report.wal_torn_tail && !r.report.wal_corrupt_tail);
    }

    #[test]
    fn replay_order_lets_newest_win() {
        let tmp = TempDir::new("rec-newest");
        let mut w = WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::Always).expect("wal");
        w.append(&pk(1), &Cell::new(7, 1, vec![1u8; 4])).expect("a");
        w.append(&pk(1), &Cell::new(7, 2, vec![2u8; 4])).expect("b");
        drop(w);
        let r = recover(tmp.path()).expect("recover");
        assert_eq!(r.memtable.cells(), 1);
        assert_eq!(r.memtable.get(&pk(1)).expect("partition")[0].kind, 2);
        assert_eq!(r.report.wal_records_replayed, 2);
        assert_eq!(r.report.cells_recovered, 1);
    }

    #[test]
    fn torn_tail_is_reported_and_prefix_survives() {
        let tmp = TempDir::new("rec-torn");
        let mut w = WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::Always).expect("wal");
        for i in 0..10u64 {
            w.append(&pk(0), &Cell::synthetic(i, 0)).expect("append");
        }
        let path = w.path().to_path_buf();
        drop(w);
        let full = fs::read(&path).expect("read");
        fs::write(&path, &full[..full.len() - 3]).expect("truncate");
        let r = recover(tmp.path()).expect("recover");
        assert!(r.report.wal_torn_tail);
        assert_eq!(r.report.wal_records_replayed, 9);
        assert_eq!(r.next_record_seq, 9, "torn record 10 never acked");
    }

    #[test]
    fn stale_segments_are_dropped_live_ones_replayed() {
        let tmp = TempDir::new("rec-stale");
        // Segment 1 is below wal_seq (its data "already flushed"); 2 and 3
        // are live.
        for (seg, base) in [(1u64, 0u64), (2, 100), (3, 200)] {
            let mut w = WalWriter::create(tmp.path(), seg, base, FsyncPolicy::Always).expect("wal");
            for i in 0..5u64 {
                w.append(&pk(seg), &Cell::synthetic(base + i, 0))
                    .expect("append");
            }
        }
        let manifest = Manifest {
            wal_seq: 2,
            ..Manifest::default()
        };
        manifest.commit(tmp.path()).expect("commit");
        let r = recover(tmp.path()).expect("recover");
        assert_eq!(r.report.wal_segments_replayed, 2);
        assert_eq!(r.report.wal_records_replayed, 10);
        assert_eq!(r.report.orphan_files_removed, 1);
        assert!(!tmp.path().join(wal::segment_file_name(1)).exists());
        assert!(
            r.memtable.get(&pk(1)).is_none(),
            "stale data must not replay"
        );
        assert_eq!(r.next_segment_seq, 4);
        assert_eq!(r.next_record_seq, 205);
    }

    #[test]
    fn committed_ssts_load_and_orphans_are_deleted() {
        let tmp = TempDir::new("rec-orphan");
        let input = vec![(pk(0), vec![Cell::synthetic(1, 0)])];
        let opts = SsTableOptions::default();
        write_sst(&tmp.path().join(sst_file_name(1)), &input, &opts, 1).expect("sst 1");
        write_sst(&tmp.path().join(sst_file_name(2)), &input, &opts, 2).expect("sst 2");
        fs::write(tmp.path().join("sst-0000000003.sst.tmp"), b"junk").expect("tmp");
        let manifest = Manifest {
            next_generation: 3,
            live: vec![1],
            ..Manifest::default()
        };
        manifest.commit(tmp.path()).expect("commit");
        let r = recover(tmp.path()).expect("recover");
        assert_eq!(r.report.sstables_loaded, 1);
        assert_eq!(r.ssts.len(), 1);
        assert_eq!(r.ssts[0].generation(), 1);
        // Generation 2 (uncommitted) and the tmp file are gone.
        assert_eq!(r.report.orphan_files_removed, 2);
        assert!(!tmp.path().join(sst_file_name(2)).exists());
        assert!(!tmp.path().join("sst-0000000003.sst.tmp").exists());
    }

    #[test]
    fn missing_committed_sst_is_a_hard_error() {
        let tmp = TempDir::new("rec-missing");
        let manifest = Manifest {
            next_generation: 2,
            live: vec![1],
            ..Manifest::default()
        };
        manifest.commit(tmp.path()).expect("commit");
        let err = recover(tmp.path()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn record_seq_continues_from_manifest_after_clean_flush() {
        // After a clean flush the WAL is empty but the manifest remembers
        // the global record counter; a restart must not reuse seqs.
        let tmp = TempDir::new("rec-seq");
        let manifest = Manifest {
            wal_seq: 5,
            next_record_seq: 1000,
            ..Manifest::default()
        };
        manifest.commit(tmp.path()).expect("commit");
        let r = recover(tmp.path()).expect("recover");
        assert_eq!(r.next_record_seq, 1000);
        assert_eq!(r.next_segment_seq, 5, "at least wal_seq so it replays");
    }

    #[test]
    fn segment_header_mismatching_its_name_is_rejected() {
        let tmp = TempDir::new("rec-rename");
        let w = WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::Always).expect("wal");
        let from = w.path().to_path_buf();
        drop(w);
        fs::rename(&from, tmp.path().join(wal::segment_file_name(9))).expect("rename");
        let err = recover(tmp.path()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
