//! The write-ahead log: checksummed, length-prefixed put records.
//!
//! Every durable write lands here *before* it touches the memtable, so a
//! crash can lose at most writes that were never acknowledged. The log is
//! a sequence of segment files (`wal-<seq>.log`, one per memtable
//! incarnation): a flush writes the memtable to an SSTable, starts a new
//! segment, commits the manifest, and only then deletes the old
//! segments — see [`crate::durable`] for the ordering protocol.
//!
//! ## Segment layout
//!
//! 16-byte header, then records back to back:
//!
//! ```text
//! offset size field        notes
//!      0    4 magic        0x4B57414C ("KWAL")
//!      4    1 version      1
//!      5    3 reserved     zero
//!      8    8 segment_seq  must match the file name
//! ```
//!
//! Each record is `len (u32) ⋅ seq (u64) ⋅ body (len bytes) ⋅ crc (u64)`,
//! all big-endian, where the body is `kind (u8 = 1, put) ⋅ key_len (u16) ⋅
//! key ⋅ cell` ([`Cell::encode`]) and the crc is [`fnv64`] over the
//! len+seq prefix chained with the body. Replay stops at the first
//! truncated record (a torn tail — the crash interrupted a write) or the
//! first checksum mismatch (bit rot), and reports which; everything
//! before the stop point is intact by construction.

use crate::block::{fnv64, fnv64_extend};
use crate::schema::{Cell, PartitionKey};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Segment header magic: `"KWAL"`.
pub const WAL_MAGIC: u32 = 0x4B57_414C;
/// Current segment format version.
pub const WAL_VERSION: u8 = 1;
/// Encoded segment header size in bytes.
pub const WAL_HEADER_LEN: usize = 16;
/// Record kind byte: a put of one cell.
pub const WAL_RECORD_PUT: u8 = 1;
/// Upper bound on a record body; a parsed length beyond this is treated
/// as corruption, not as an instruction to allocate.
pub const WAL_MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// How eagerly appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record — nothing acknowledged is ever lost.
    Always,
    /// `fdatasync` every N records (Cassandra's periodic commitlog mode);
    /// a crash can lose up to N-1 acknowledged records.
    EveryN(u32),
    /// Never sync explicitly; the OS flushes when it pleases. Fastest,
    /// weakest — fine for tests and for workloads that re-ingest.
    Never,
}

/// File name of segment `seq` (zero-padded so lexicographic order is
/// replay order).
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:010}.log")
}

/// Parses a segment sequence number back out of a file name produced by
/// [`segment_file_name`]. `None` for anything else.
pub fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// An open, appendable WAL segment.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    segment_seq: u64,
    next_record_seq: u64,
    policy: FsyncPolicy,
    unsynced: u32,
    records: u64,
    bytes: u64,
}

impl WalWriter {
    /// Creates segment `segment_seq` in `dir`, with record sequence
    /// numbers continuing from `first_record_seq`. Fails if the segment
    /// file already exists (a seq collision means the lifecycle protocol
    /// was violated).
    pub fn create(
        dir: &Path,
        segment_seq: u64,
        first_record_seq: u64,
        policy: FsyncPolicy,
    ) -> io::Result<WalWriter> {
        let path = dir.join(segment_file_name(segment_seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        let mut header = BytesMut::with_capacity(WAL_HEADER_LEN);
        header.put_u32(WAL_MAGIC);
        header.put_u8(WAL_VERSION);
        header.put_slice(&[0u8; 3]);
        header.put_u64(segment_seq);
        file.write_all(&header)?;
        if policy != FsyncPolicy::Never {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            path,
            segment_seq,
            next_record_seq: first_record_seq,
            policy,
            unsynced: 0,
            records: 0,
            bytes: WAL_HEADER_LEN as u64,
        })
    }

    /// Appends one put record and applies the fsync policy. Returns the
    /// record's sequence number; once this returns `Ok` the write is
    /// recoverable (modulo the policy's window).
    pub fn append(&mut self, pk: &PartitionKey, cell: &Cell) -> io::Result<u64> {
        let seq = self.next_record_seq;
        let mut body = BytesMut::with_capacity(3 + pk.len() + cell.encoded_len());
        body.put_u8(WAL_RECORD_PUT);
        body.put_u16(pk.len() as u16);
        body.put_slice(pk.as_bytes());
        cell.encode(&mut body);
        let mut rec = BytesMut::with_capacity(4 + 8 + body.len() + 8);
        rec.put_u32(body.len() as u32);
        rec.put_u64(seq);
        rec.put_slice(&body);
        let crc = fnv64_extend(fnv64(&rec[..12]), &body);
        rec.put_u64(crc);
        // One write_all per record: a torn write is then (almost always) a
        // clean prefix, which replay detects as a torn tail.
        self.file.write_all(&rec)?;
        self.bytes += rec.len() as u64;
        self.records += 1;
        self.next_record_seq = seq + 1;
        match self.policy {
            FsyncPolicy::Always => self.file.sync_data()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.file.sync_data()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.unsynced = 0;
        self.file.sync_data()
    }

    /// This segment's sequence number.
    pub fn segment_seq(&self) -> u64 {
        self.segment_seq
    }

    /// The sequence number the next appended record will get.
    pub fn next_record_seq(&self) -> u64 {
        self.next_record_seq
    }

    /// Records appended to this segment.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes written to this segment, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One replayed put record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's global sequence number.
    pub seq: u64,
    /// Partition written.
    pub key: PartitionKey,
    /// The cell written.
    pub cell: Cell,
}

/// How a segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The segment ended exactly after its last complete record.
    Clean,
    /// The segment ended mid-record — the classic crash-during-append
    /// torn tail. Everything before `valid_bytes` replayed fine.
    Torn {
        /// File offset of the first byte past the last valid record.
        valid_bytes: u64,
    },
    /// A structurally complete record failed its checksum (or the header
    /// was damaged) — bit rot rather than a torn write. Replay stops at
    /// the last valid record.
    Corrupt {
        /// File offset of the first byte past the last valid record.
        valid_bytes: u64,
    },
}

/// The result of replaying one segment file.
#[derive(Debug)]
pub struct SegmentReplay {
    /// The segment seq from the header, when the header was readable.
    pub header_seq: Option<u64>,
    /// Every record up to the first damage, in append order.
    pub records: Vec<WalRecord>,
    /// How the segment ended.
    pub tail: WalTail,
}

/// Replays one segment file. I/O errors are returned; *damage* (torn
/// tails, checksum mismatches) is not an error — it is reported in
/// [`SegmentReplay::tail`] with every record before the damage intact.
pub fn replay_segment(path: &Path) -> io::Result<SegmentReplay> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < WAL_HEADER_LEN {
        return Ok(SegmentReplay {
            header_seq: None,
            records: Vec::new(),
            tail: WalTail::Torn { valid_bytes: 0 },
        });
    }
    let mut header = Bytes::copy_from_slice(&raw[..WAL_HEADER_LEN]);
    let magic = header.get_u32();
    let version = header.get_u8();
    header.advance(3);
    let header_seq = header.get_u64();
    if magic != WAL_MAGIC || version != WAL_VERSION {
        return Ok(SegmentReplay {
            header_seq: None,
            records: Vec::new(),
            tail: WalTail::Corrupt { valid_bytes: 0 },
        });
    }
    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    let tail = loop {
        let remaining = raw.len() - offset;
        if remaining == 0 {
            break WalTail::Clean;
        }
        if remaining < 4 + 8 {
            break WalTail::Torn {
                valid_bytes: offset as u64,
            };
        }
        let mut prefix = Bytes::copy_from_slice(&raw[offset..offset + 12]);
        let len = prefix.get_u32();
        let seq = prefix.get_u64();
        if len > WAL_MAX_RECORD_BYTES {
            // A length this absurd is damage, not data.
            break WalTail::Corrupt {
                valid_bytes: offset as u64,
            };
        }
        let total = 12 + len as usize + 8;
        if remaining < total {
            break WalTail::Torn {
                valid_bytes: offset as u64,
            };
        }
        let body = &raw[offset + 12..offset + 12 + len as usize];
        let mut crc_bytes = Bytes::copy_from_slice(&raw[offset + total - 8..offset + total]);
        let stored_crc = crc_bytes.get_u64();
        let crc = fnv64_extend(fnv64(&raw[offset..offset + 12]), body);
        if crc != stored_crc {
            break WalTail::Corrupt {
                valid_bytes: offset as u64,
            };
        }
        match decode_body(body) {
            Some((key, cell)) => records.push(WalRecord { seq, key, cell }),
            // Checksum fine but body undecodable: a writer bug or an
            // unknown record kind from the future — stop, don't guess.
            None => {
                break WalTail::Corrupt {
                    valid_bytes: offset as u64,
                }
            }
        }
        offset += total;
    };
    Ok(SegmentReplay {
        header_seq: Some(header_seq),
        records,
        tail,
    })
}

fn decode_body(body: &[u8]) -> Option<(PartitionKey, Cell)> {
    let mut buf = Bytes::copy_from_slice(body);
    if buf.len() < 3 || buf.get_u8() != WAL_RECORD_PUT {
        return None;
    }
    let key_len = buf.get_u16() as usize;
    if buf.len() < key_len {
        return None;
    }
    let key = PartitionKey::new(buf.split_to(key_len).to_vec());
    let cell = Cell::decode(&mut buf)?;
    if !buf.is_empty() {
        return None; // trailing garbage inside a checksummed body
    }
    Some((key, cell))
}

/// Lists the WAL segment files in `dir`, as `(seq, path)` sorted by seq.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_segment_seq(name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::TempDir;

    fn pk(i: u64) -> PartitionKey {
        PartitionKey::from_id(i)
    }

    fn write_records(dir: &Path, n: u64) -> PathBuf {
        let mut w = WalWriter::create(dir, 1, 100, FsyncPolicy::Always).expect("create");
        for i in 0..n {
            let seq = w
                .append(&pk(i % 3), &Cell::synthetic(i, 0))
                .expect("append");
            assert_eq!(seq, 100 + i);
        }
        assert_eq!(w.records(), n);
        w.path().to_path_buf()
    }

    #[test]
    fn roundtrip_replays_everything() {
        let tmp = TempDir::new("wal-roundtrip");
        let path = write_records(tmp.path(), 20);
        let replay = replay_segment(&path).expect("replay");
        assert_eq!(replay.header_seq, Some(1));
        assert_eq!(replay.tail, WalTail::Clean);
        assert_eq!(replay.records.len(), 20);
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.seq, 100 + i as u64);
            assert_eq!(rec.key, pk(i as u64 % 3));
            assert_eq!(rec.cell, Cell::synthetic(i as u64, 0));
        }
    }

    #[test]
    fn empty_segment_is_clean() {
        let tmp = TempDir::new("wal-empty");
        let w = WalWriter::create(tmp.path(), 7, 0, FsyncPolicy::Never).expect("create");
        let replay = replay_segment(w.path()).expect("replay");
        assert_eq!(replay.header_seq, Some(7));
        assert!(replay.records.is_empty());
        assert_eq!(replay.tail, WalTail::Clean);
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let tmp = TempDir::new("wal-torn");
        let path = write_records(tmp.path(), 10);
        let full = std::fs::read(&path).expect("read");
        // Truncate mid-way through the last record.
        let cut = full.len() - 5;
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let replay = replay_segment(&path).expect("replay");
        assert_eq!(replay.records.len(), 9, "all but the torn record");
        match replay.tail {
            WalTail::Torn { valid_bytes } => {
                // The valid prefix ends exactly where record 10 started.
                let rec_len = (full.len() - WAL_HEADER_LEN) / 10;
                assert_eq!(valid_bytes as usize, WAL_HEADER_LEN + 9 * rec_len);
            }
            other => panic!("expected torn tail, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_is_detected_as_corruption() {
        let tmp = TempDir::new("wal-flip");
        let path = write_records(tmp.path(), 10);
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a bit inside the 6th record's body.
        let rec_len = (bytes.len() - WAL_HEADER_LEN) / 10;
        let target = WAL_HEADER_LEN + 5 * rec_len + 20;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write");
        let replay = replay_segment(&path).expect("replay");
        assert_eq!(replay.records.len(), 5, "stops at last valid record");
        assert!(matches!(replay.tail, WalTail::Corrupt { .. }));
    }

    #[test]
    fn header_damage_yields_zero_records() {
        let tmp = TempDir::new("wal-header");
        let path = write_records(tmp.path(), 3);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let replay = replay_segment(&path).expect("replay");
        assert!(replay.records.is_empty());
        assert_eq!(replay.header_seq, None);
        assert_eq!(replay.tail, WalTail::Corrupt { valid_bytes: 0 });
        // And a header shorter than 16 bytes is a torn tail.
        std::fs::write(&path, &bytes[..7]).expect("write");
        let replay = replay_segment(&path).expect("replay");
        assert_eq!(replay.tail, WalTail::Torn { valid_bytes: 0 });
    }

    #[test]
    fn segment_names_roundtrip_and_sort() {
        assert_eq!(segment_file_name(42), "wal-0000000042.log");
        assert_eq!(parse_segment_seq("wal-0000000042.log"), Some(42));
        assert_eq!(parse_segment_seq("sst-0000000042.sst"), None);
        assert_eq!(parse_segment_seq("wal-x.log"), None);
        let tmp = TempDir::new("wal-list");
        for seq in [3u64, 1, 2] {
            drop(WalWriter::create(tmp.path(), seq, 0, FsyncPolicy::Never).expect("create"));
        }
        let listed = list_segments(tmp.path()).expect("list");
        let seqs: Vec<u64> = listed.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn create_refuses_to_clobber() {
        let tmp = TempDir::new("wal-clobber");
        drop(WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::Never).expect("first"));
        assert!(WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::Never).is_err());
    }

    #[test]
    fn every_n_policy_appends_fine() {
        let tmp = TempDir::new("wal-everyn");
        let mut w = WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::EveryN(3)).expect("create");
        for i in 0..10u64 {
            w.append(&pk(0), &Cell::synthetic(i, 0)).expect("append");
        }
        w.sync().expect("sync");
        let replay = replay_segment(w.path()).expect("replay");
        assert_eq!(replay.records.len(), 10);
        assert_eq!(replay.tail, WalTail::Clean);
    }
}
