//! The manifest: the durable tier's single source of truth for which
//! SSTable generations are live and which WAL segments still matter.
//!
//! Commits are atomic: the new image is written to `MANIFEST.tmp`,
//! fsynced, renamed over `MANIFEST`, and the directory is fsynced — a
//! crash leaves either the old manifest or the new one, never a torn
//! mix. Recovery's contract ([`crate::recovery`]): SSTable files whose
//! generation is not in [`Manifest::live`] are orphans (deleted), and
//! every WAL segment with `seq >= wal_seq` replays in ascending order.
//!
//! ## Layout
//!
//! ```text
//! offset size field            notes
//!      0    4 magic            0x4B4D414E ("KMAN")
//!      4    1 version          1
//!      5    3 reserved         zero
//!      8    8 next_generation  next SSTable generation to allocate
//!     16    8 wal_seq          lowest live WAL segment seq
//!     24    8 next_record_seq  next WAL record seq (continuity across
//!                              clean flushes)
//!     32    4 sst_count        number of live generations
//!     36   8n live generations, ascending
//!   36+8n  8 crc              fnv64 over bytes 0..36+8n
//! ```

use crate::block::fnv64;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// The manifest's file name inside a durable table directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Temporary file the atomic-replace protocol writes first.
pub const MANIFEST_TMP_FILE: &str = "MANIFEST.tmp";
/// Manifest magic: `"KMAN"`.
pub const MANIFEST_MAGIC: u32 = 0x4B4D_414E;
/// Current manifest format version.
pub const MANIFEST_VERSION: u8 = 1;

/// The durable tier's commit point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The next SSTable generation to allocate (strictly above every
    /// generation ever committed).
    pub next_generation: u64,
    /// The lowest WAL segment seq that still holds unflushed data; every
    /// segment `>= wal_seq` replays on recovery, everything below is
    /// garbage.
    pub wal_seq: u64,
    /// The next WAL record sequence number (so the global write counter
    /// survives a restart even when all segments were flushed away).
    pub next_record_seq: u64,
    /// Live SSTable generations, ascending (newer wins merges).
    pub live: Vec<u64>,
}

impl Default for Manifest {
    fn default() -> Self {
        Manifest {
            next_generation: 1,
            wal_seq: 1,
            next_record_seq: 0,
            live: Vec::new(),
        }
    }
}

impl Manifest {
    /// Serializes the manifest, checksum included.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(36 + 8 * self.live.len() + 8);
        buf.put_u32(MANIFEST_MAGIC);
        buf.put_u8(MANIFEST_VERSION);
        buf.put_slice(&[0u8; 3]);
        buf.put_u64(self.next_generation);
        buf.put_u64(self.wal_seq);
        buf.put_u64(self.next_record_seq);
        buf.put_u32(self.live.len() as u32);
        for generation in &self.live {
            buf.put_u64(*generation);
        }
        let crc = fnv64(&buf);
        buf.put_u64(crc);
        buf.freeze()
    }

    /// Parses an encoded manifest. `None` on truncation, bad magic /
    /// version, a checksum mismatch, or out-of-order generations — a
    /// damaged manifest must never half-load.
    pub fn decode(bytes: &[u8]) -> Option<Manifest> {
        if bytes.len() < 36 + 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_be_bytes(tail.try_into().ok()?);
        if fnv64(body) != stored {
            return None;
        }
        let mut buf = Bytes::copy_from_slice(body);
        if buf.get_u32() != MANIFEST_MAGIC || buf.get_u8() != MANIFEST_VERSION {
            return None;
        }
        buf.advance(3);
        let next_generation = buf.get_u64();
        let wal_seq = buf.get_u64();
        let next_record_seq = buf.get_u64();
        let count = buf.get_u32() as usize;
        if buf.len() != count * 8 {
            return None;
        }
        let live: Vec<u64> = (0..count).map(|_| buf.get_u64()).collect();
        if live.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        if live.last().is_some_and(|&g| g >= next_generation) {
            return None;
        }
        Some(Manifest {
            next_generation,
            wal_seq,
            next_record_seq,
            live,
        })
    }

    /// Atomically replaces the manifest in `dir`: tmp write → fsync →
    /// rename → directory fsync. After this returns, a crash at any point
    /// sees exactly this manifest.
    pub fn commit(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join(MANIFEST_TMP_FILE);
        let dst = dir.join(MANIFEST_FILE);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &dst)?;
        // The rename itself must reach the disk before we report success;
        // on Linux that means fsyncing the containing directory.
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Loads the manifest from `dir`. `Ok(None)` when no manifest exists
    /// (a fresh directory); `InvalidData` when one exists but is corrupt —
    /// the live SSTable set is unknowable, so recovery must not guess.
    pub fn load(dir: &Path) -> io::Result<Option<Manifest>> {
        let path = dir.join(MANIFEST_FILE);
        let mut raw = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        match Manifest::decode(&raw) {
            Some(m) => Ok(Some(m)),
            None => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt manifest at {}", path.display()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::TempDir;

    fn sample() -> Manifest {
        Manifest {
            next_generation: 9,
            wal_seq: 4,
            next_record_seq: 1234,
            live: vec![2, 5, 8],
        }
    }

    #[test]
    fn encode_decode_roundtrips() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()), Some(m));
        let empty = Manifest::default();
        assert_eq!(Manifest::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn corruption_and_truncation_rejected() {
        let bytes = sample().encode().to_vec();
        for idx in [0usize, 5, 12, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x01;
            assert!(Manifest::decode(&bad).is_none(), "flip at {idx} accepted");
        }
        for cut in [0usize, 10, bytes.len() - 1] {
            assert!(Manifest::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn unsorted_or_future_generations_rejected() {
        let mut m = sample();
        m.live = vec![5, 2];
        assert!(Manifest::decode(&m.encode()).is_none());
        m.live = vec![2, 9]; // 9 >= next_generation
        assert!(Manifest::decode(&m.encode()).is_none());
    }

    #[test]
    fn commit_load_roundtrips_and_replaces() {
        let tmp = TempDir::new("manifest");
        assert_eq!(Manifest::load(tmp.path()).expect("load"), None);
        let m1 = sample();
        m1.commit(tmp.path()).expect("commit");
        assert_eq!(Manifest::load(tmp.path()).expect("load"), Some(m1.clone()));
        let mut m2 = m1;
        m2.next_generation = 10;
        m2.live.push(9);
        m2.commit(tmp.path()).expect("commit 2");
        assert_eq!(Manifest::load(tmp.path()).expect("load"), Some(m2));
        // No tmp file left behind.
        assert!(!tmp.path().join(MANIFEST_TMP_FILE).exists());
    }

    #[test]
    fn corrupt_manifest_is_a_hard_error() {
        let tmp = TempDir::new("manifest-corrupt");
        sample().commit(tmp.path()).expect("commit");
        let path = tmp.path().join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[20] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let err = Manifest::load(tmp.path()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
