//! Read receipts: an itemized bill of the work a read performed.
//!
//! The paper's methodology hinges on knowing *where time goes*. Inside the
//! database that means counting the mechanical steps of the read path; the
//! [`crate::CostModel`] then converts a receipt into simulated service time,
//! and the live executor uses receipts to validate that the store did what
//! the experiment intended (e.g. that a Figure 6 run really did cross the
//! column-index threshold).

/// Work accounting for one logical read (possibly merging several runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadReceipt {
    /// Bloom filters probed (one per SSTable consulted).
    pub bloom_probes: u64,
    /// Bloom probes that returned "definitely absent" (run skipped).
    pub bloom_negatives: u64,
    /// Bloom probes that said "maybe" but the partition index then missed —
    /// the false positives the paper blames for latency variance.
    pub bloom_false_positives: u64,
    /// Binary searches in SSTable partition indexes.
    pub partition_index_seeks: u64,
    /// Column-index blocks read (0 when the partition is below the 64 KiB
    /// threshold and has no column index).
    pub column_index_blocks: u64,
    /// Whether any consulted partition carried a column index.
    pub used_column_index: bool,
    /// Cells decoded (scanned), including ones a range filter discarded.
    pub cells_scanned: u64,
    /// Cells actually returned to the caller.
    pub cells_returned: u64,
    /// Data bytes decoded.
    pub bytes_read: u64,
    /// Whether the memtable contributed cells.
    pub memtable_hit: bool,
    /// Whether the row cache served the read outright.
    pub row_cache_hit: bool,
    /// SSTables whose data pages were actually read.
    pub sstables_read: u64,
    /// Data blocks fetched from disk (durable tier; 0 on the in-memory
    /// path). Each one was read, checksummed and decoded.
    pub disk_blocks_read: u64,
    /// Data blocks served from the block cache instead of disk.
    pub disk_block_cache_hits: u64,
    /// Bytes fetched from disk (block payloads only, not index/footer).
    pub disk_bytes_read: u64,
}

impl ReadReceipt {
    /// Merges the accounting of a sub-read into this receipt.
    pub fn absorb(&mut self, other: &ReadReceipt) {
        self.bloom_probes += other.bloom_probes;
        self.bloom_negatives += other.bloom_negatives;
        self.bloom_false_positives += other.bloom_false_positives;
        self.partition_index_seeks += other.partition_index_seeks;
        self.column_index_blocks += other.column_index_blocks;
        self.used_column_index |= other.used_column_index;
        self.cells_scanned += other.cells_scanned;
        self.cells_returned += other.cells_returned;
        self.bytes_read += other.bytes_read;
        self.memtable_hit |= other.memtable_hit;
        self.row_cache_hit |= other.row_cache_hit;
        self.sstables_read += other.sstables_read;
        self.disk_blocks_read += other.disk_blocks_read;
        self.disk_block_cache_hits += other.disk_block_cache_hits;
        self.disk_bytes_read += other.disk_bytes_read;
    }

    /// Scan efficiency: returned / scanned (1.0 for point reads that waste
    /// nothing, lower when a range filter discards cells).
    pub fn scan_efficiency(&self) -> f64 {
        if self.cells_scanned == 0 {
            1.0
        } else {
            self.cells_returned as f64 / self.cells_scanned as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_ors_flags() {
        let mut a = ReadReceipt {
            bloom_probes: 2,
            cells_scanned: 10,
            cells_returned: 10,
            bytes_read: 460,
            ..Default::default()
        };
        let b = ReadReceipt {
            bloom_probes: 1,
            bloom_negatives: 1,
            used_column_index: true,
            memtable_hit: true,
            cells_scanned: 5,
            cells_returned: 2,
            bytes_read: 230,
            sstables_read: 1,
            disk_blocks_read: 3,
            disk_block_cache_hits: 2,
            disk_bytes_read: 4096,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.bloom_probes, 3);
        assert_eq!(a.bloom_negatives, 1);
        assert_eq!(a.cells_scanned, 15);
        assert_eq!(a.cells_returned, 12);
        assert_eq!(a.bytes_read, 690);
        assert!(a.used_column_index);
        assert!(a.memtable_hit);
        assert!(!a.row_cache_hit);
        assert_eq!(a.sstables_read, 1);
        assert_eq!(a.disk_blocks_read, 3);
        assert_eq!(a.disk_block_cache_hits, 2);
        assert_eq!(a.disk_bytes_read, 4096);
    }

    #[test]
    fn scan_efficiency() {
        let r = ReadReceipt {
            cells_scanned: 100,
            cells_returned: 25,
            ..Default::default()
        };
        assert_eq!(r.scan_efficiency(), 0.25);
        assert_eq!(ReadReceipt::default().scan_efficiency(), 1.0);
    }
}
