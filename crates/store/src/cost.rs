//! The database cost model: converting a [`ReadReceipt`] into service time.
//!
//! Our store is an in-memory reimplementation; timing it directly would say
//! nothing about the 2010-era Cassandra-on-SATA nodes the paper measured.
//! Instead, [`CostModel::paper_cassandra`] charges simulated milliseconds
//! per receipt using the regression the paper published (Formula 6):
//!
//! ```text
//! query_time(s) = 1.163 + 0.0387·s        s ≤ 1425 cells (no column index)
//!               = 0.773 + 0.0439·s        s > 1425 cells (column-indexed)
//! ```
//!
//! The branch is chosen *mechanistically* — by whether the read actually
//! touched a column index — so experiments that change
//! `column_index_size` (an ablation the paper suggests via the
//! `column_index_size_in_kb` parameter) shift the discontinuity exactly as
//! the real system would.

use crate::receipt::ReadReceipt;

/// Converts read receipts to milliseconds of database service time.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of a read that did not use a column index, ms.
    pub base_ms: f64,
    /// Per-cell cost without a column index, ms.
    pub per_cell_ms: f64,
    /// Fixed cost of a column-indexed read, ms.
    pub indexed_base_ms: f64,
    /// Per-cell cost with a column index, ms.
    pub indexed_per_cell_ms: f64,
    /// Extra cost per SSTable consulted beyond the first (more runs = more
    /// seeks), ms.
    pub per_extra_sstable_ms: f64,
    /// Cost of a read served from the row cache, ms.
    pub cache_hit_ms: f64,
    /// Cost per data block fetched from disk on the durable tier, ms.
    /// Block-cache hits are free (their decode cost is inside the
    /// per-cell slope); only [`ReadReceipt::disk_blocks_read`] is
    /// charged, which is how the durable path's receipts stay
    /// distinguishable from RAM-path receipts in fitted figures.
    pub disk_block_read_ms: f64,
    /// Relative standard deviation (coefficient of variation) of service
    /// time around the mean — the paper's observed variance.
    pub service_cv: f64,
    /// Probability that a read pays a slow-path penalty (cache miss /
    /// bloom false positive cascading to extra work).
    pub tail_probability: f64,
    /// Multiplier applied to the mean on the slow path.
    pub tail_multiplier: f64,
}

/// Formula 6 constants — see module docs.
pub const PAPER_BASE_MS: f64 = 1.163;
/// Formula 6: per-cell slope below the column-index threshold (ms/cell).
pub const PAPER_PER_CELL_MS: f64 = 0.0387;
/// Formula 6: intercept above the threshold (ms).
pub const PAPER_INDEXED_BASE_MS: f64 = 0.773;
/// Formula 6: per-cell slope above the threshold (ms/cell).
pub const PAPER_INDEXED_PER_CELL_MS: f64 = 0.0439;
/// The cell count where the paper observed the discontinuity.
pub const PAPER_INDEX_THRESHOLD_CELLS: u64 = 1425;

impl CostModel {
    /// The calibration the paper measured on its Xeon L5630 + SATA cluster.
    pub fn paper_cassandra() -> Self {
        CostModel {
            base_ms: PAPER_BASE_MS,
            per_cell_ms: PAPER_PER_CELL_MS,
            indexed_base_ms: PAPER_INDEXED_BASE_MS,
            indexed_per_cell_ms: PAPER_INDEXED_PER_CELL_MS,
            per_extra_sstable_ms: 0.35,
            cache_hit_ms: 0.15,
            // One 4 KiB block off a 2010-era SATA array amortized across
            // the command queue: well under a seek, well over RAM.
            disk_block_read_ms: 0.08,
            // Noise split per the paper's narrative: a modest log-normal
            // spread (Figure 6's close-up shows a crisp discontinuity, so
            // local noise must be small) plus a rare heavy tail ("a miss in
            // a cache or a false positive in a bloom filter can arbitrarily
            // make a request orders of magnitude slower", §VI-a).
            service_cv: 0.06,
            tail_probability: 0.02,
            tail_multiplier: 5.0,
        }
    }

    /// A noise-free variant (unit tests, model validation).
    pub fn deterministic(mut self) -> Self {
        self.service_cv = 0.0;
        self.tail_probability = 0.0;
        self
    }

    /// Mean service time (ms) for a read described by `receipt`.
    pub fn service_ms(&self, receipt: &ReadReceipt) -> f64 {
        if receipt.row_cache_hit {
            return self.cache_hit_ms;
        }
        // Work scales with the cells the engine *decoded*, not only the
        // ones the caller kept — an unindexed range scan pays for its whole
        // partition (point reads: scanned == returned).
        let cells = receipt.cells_scanned.max(receipt.cells_returned) as f64;
        let mut ms = if receipt.used_column_index {
            self.indexed_base_ms + self.indexed_per_cell_ms * cells
        } else {
            self.base_ms + self.per_cell_ms * cells
        };
        ms += self.per_extra_sstable_ms * receipt.sstables_read.saturating_sub(1) as f64;
        ms += self.disk_block_read_ms * receipt.disk_blocks_read as f64;
        ms
    }

    /// Mean service time (ms) for a hypothetical clean read of `cells`
    /// cells from one run — Formula 6 itself, used by planners that have no
    /// receipt yet.
    pub fn service_ms_for_cells(&self, cells: u64) -> f64 {
        if cells > PAPER_INDEX_THRESHOLD_CELLS {
            self.indexed_base_ms + self.indexed_per_cell_ms * cells as f64
        } else {
            self.base_ms + self.per_cell_ms * cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_receipt(cells: u64, indexed: bool) -> ReadReceipt {
        ReadReceipt {
            cells_returned: cells,
            cells_scanned: cells,
            used_column_index: indexed,
            sstables_read: 1,
            ..Default::default()
        }
    }

    #[test]
    fn formula6_small_row() {
        let m = CostModel::paper_cassandra();
        // 250-cell row: 1.163 + 0.0387·250 ≈ 10.84 ms — the paper's §VII
        // "single request takes 11 milliseconds" example.
        let ms = m.service_ms(&clean_receipt(250, false));
        assert!((ms - 10.84).abs() < 0.02, "{ms}");
    }

    #[test]
    fn formula6_large_row() {
        let m = CostModel::paper_cassandra();
        // 10 000-cell row: 0.773 + 0.0439·10000 ≈ 439.8 ms.
        let ms = m.service_ms(&clean_receipt(10_000, true));
        assert!((ms - 439.77).abs() < 0.1, "{ms}");
    }

    #[test]
    fn discontinuity_at_threshold() {
        let m = CostModel::paper_cassandra();
        let below = m.service_ms_for_cells(PAPER_INDEX_THRESHOLD_CELLS);
        let above = m.service_ms_for_cells(PAPER_INDEX_THRESHOLD_CELLS + 1);
        // The jump the paper saw: ≈ 7 ms up when the index kicks in.
        assert!(above - below > 6.0, "jump {} too small", above - below);
        assert!(above - below < 9.0, "jump {} too large", above - below);
    }

    #[test]
    fn cache_hit_is_flat_and_cheap() {
        let m = CostModel::paper_cassandra();
        let mut r = clean_receipt(5_000, true);
        r.row_cache_hit = true;
        assert_eq!(m.service_ms(&r), m.cache_hit_ms);
        assert!(m.service_ms(&r) < 1.0);
    }

    #[test]
    fn extra_sstables_cost_extra() {
        let m = CostModel::paper_cassandra();
        let mut r = clean_receipt(100, false);
        let one = m.service_ms(&r);
        r.sstables_read = 4;
        let four = m.service_ms(&r);
        assert!((four - one - 3.0 * m.per_extra_sstable_ms).abs() < 1e-9);
    }

    #[test]
    fn deterministic_strips_noise() {
        let m = CostModel::paper_cassandra().deterministic();
        assert_eq!(m.service_cv, 0.0);
        assert_eq!(m.tail_probability, 0.0);
        // Mean costs unchanged.
        assert_eq!(
            m.service_ms(&clean_receipt(100, false)),
            CostModel::paper_cassandra().service_ms(&clean_receipt(100, false))
        );
    }

    #[test]
    fn range_scans_pay_for_scanned_cells() {
        // An unindexed range read that decoded 1 000 cells to return 10
        // costs like a 1 000-cell read, not a 10-cell one.
        let m = CostModel::paper_cassandra();
        let mut r = clean_receipt(10, false);
        r.cells_scanned = 1_000;
        let wide_scan = m.service_ms(&r);
        let point = m.service_ms(&clean_receipt(10, false));
        assert!(wide_scan > point * 5.0, "{wide_scan} vs {point}");
        assert!((wide_scan - m.service_ms(&clean_receipt(1_000, false))).abs() < 1e-9);
    }

    #[test]
    fn disk_blocks_cost_extra_but_cache_hits_do_not() {
        let m = CostModel::paper_cassandra();
        let mut r = clean_receipt(100, false);
        let ram = m.service_ms(&r);
        r.disk_blocks_read = 10;
        r.disk_block_cache_hits = 50;
        let disk = m.service_ms(&r);
        assert!((disk - ram - 10.0 * m.disk_block_read_ms).abs() < 1e-9);
    }

    #[test]
    fn zero_cell_read_still_costs_base() {
        let m = CostModel::paper_cassandra();
        assert!((m.service_ms(&clean_receipt(0, false)) - m.base_ms - 0.0).abs() < 1e-9);
    }
}
