//! Block-based on-disk SSTables.
//!
//! Unlike [`crate::sstable::SsTable`] (the in-RAM run), an [`SstFile`]
//! keeps only its *metadata* resident — partition index, per-block
//! [`BlockMeta`] lists and the bloom filter — and fetches 4 KiB data
//! blocks ([`crate::block::BLOCK_TARGET_BYTES`]) from disk on demand,
//! verifying each block's checksum and charging the read to the
//! [`ReadReceipt`] (`disk_blocks_read` vs `disk_block_cache_hits`).
//!
//! The column-index mechanics survive on disk: a partition whose encoded
//! size exceeds `column_index_size` is *column-indexed* — its block list
//! doubles as the column index, so range reads seek to overlapping
//! blocks only, and receipts report `used_column_index` exactly as the
//! in-RAM store does. The Formula 6 discontinuity therefore appears at
//! the same ≈ 1425-cell threshold on the durable path.
//!
//! ## File layout
//!
//! ```text
//! [data blocks][partition index][bloom filter][footer]
//! ```
//!
//! The fixed-size footer sits at the end of the file:
//!
//! ```text
//! offset size field              notes
//!      0    4 magic              0x4B535354 ("KSST")
//!      4    1 version            1
//!      5    3 reserved           zero
//!      8    8 generation         newer wins merges
//!     16    8 column_index_size  threshold the run was built with
//!     24    8 index_off          partition index file offset
//!     32    8 index_len          partition index length
//!     40    8 bloom_off          bloom filter file offset
//!     48    8 bloom_len          bloom filter length
//!     56    8 meta_crc           fnv64 over index bytes ⋅ bloom bytes
//!     64    8 footer_crc         fnv64 over footer bytes 0..64
//! ```
//!
//! The partition index is `count (u32)` then, per partition: `key_len
//! (u16) ⋅ key ⋅ cell_count (u32) ⋅ block_count (u32) ⋅ block_count ×`
//! [`BlockMeta`] entries (absolute file offsets). Every data block
//! carries its own checksum in its `BlockMeta`, so point corruption is
//! caught at read time without rescanning the file.

use crate::block::{build_blocks, fnv64, fnv64_extend, BlockMeta, BLOCK_META_BYTES};
use crate::bloom::BloomFilter;
use crate::cache::Lru;
use crate::receipt::ReadReceipt;
use crate::schema::{Cell, ClusteringKey, PartitionKey};
use crate::sstable::SsTableOptions;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io;
use std::ops::RangeInclusive;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Footer magic: `"KSST"`.
pub const SST_MAGIC: u32 = 0x4B53_5354;
/// Current file format version.
pub const SST_VERSION: u8 = 1;
/// Encoded footer size in bytes.
pub const SST_FOOTER_LEN: usize = 72;

/// The block cache shared across a durable table's runs, keyed by
/// `(generation, block offset)`.
pub type BlockCache = Lru<(u64, u64), Bytes>;

/// File name of generation `generation` (zero-padded so lexicographic
/// order is generation order).
pub fn sst_file_name(generation: u64) -> String {
    format!("sst-{generation:010}.sst")
}

/// Parses a generation back out of a file name produced by
/// [`sst_file_name`]. `None` for anything else.
pub fn parse_sst_generation(name: &str) -> Option<u64> {
    name.strip_prefix("sst-")?
        .strip_suffix(".sst")?
        .parse()
        .ok()
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Totals reported by [`write_sst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SstWriteStats {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Data-block payload bytes.
    pub data_bytes: u64,
    /// Number of data blocks written.
    pub blocks: u64,
    /// Number of partitions.
    pub partitions: u64,
    /// Total cells.
    pub cells: u64,
}

/// Writes one SSTable file: data blocks, partition index, bloom, footer,
/// then `fdatasync`. The file must not already exist (generations are
/// never reused).
///
/// # Panics
/// If partitions are not strictly ascending by key or cells are not
/// strictly ascending by clustering key — the memtable snapshot and the
/// compaction merge both guarantee this, so a violation is a bug.
pub fn write_sst(
    path: &Path,
    input: &[(PartitionKey, Vec<Cell>)],
    opts: &SsTableOptions,
    generation: u64,
) -> io::Result<SstWriteStats> {
    let mut bloom = BloomFilter::with_rate(input.len(), opts.bloom_fp_rate);
    let mut data = BytesMut::new();
    let mut index = BytesMut::new();
    let mut total_blocks = 0u64;
    let mut total_cells = 0u64;
    index.put_u32(input.len() as u32);
    let mut prev_key: Option<&PartitionKey> = None;
    for (pk, cells) in input {
        if let Some(prev) = prev_key {
            assert!(prev < pk, "partitions must be strictly ascending");
        }
        prev_key = Some(pk);
        assert!(
            cells.windows(2).all(|w| w[0].clustering < w[1].clustering),
            "cells must be strictly ascending"
        );
        bloom.insert(pk.as_bytes());
        let blocks = build_blocks(cells, data.len() as u64);
        index.put_u16(pk.len() as u16);
        index.put_slice(pk.as_bytes());
        index.put_u32(cells.len() as u32);
        index.put_u32(blocks.len() as u32);
        for (meta, bytes) in &blocks {
            meta.encode(&mut index);
            data.put_slice(bytes);
        }
        total_blocks += blocks.len() as u64;
        total_cells += cells.len() as u64;
    }
    let mut bloom_bytes = BytesMut::new();
    bloom.serialize(&mut bloom_bytes);

    let data_bytes = data.len() as u64;
    let index_off = data_bytes;
    let index_len = index.len() as u64;
    let bloom_off = index_off + index_len;
    let bloom_len = bloom_bytes.len() as u64;
    let meta_crc = fnv64_extend(fnv64(&index), &bloom_bytes);

    let mut footer = BytesMut::with_capacity(SST_FOOTER_LEN);
    footer.put_u32(SST_MAGIC);
    footer.put_u8(SST_VERSION);
    footer.put_slice(&[0u8; 3]);
    footer.put_u64(generation);
    footer.put_u64(opts.column_index_size as u64);
    footer.put_u64(index_off);
    footer.put_u64(index_len);
    footer.put_u64(bloom_off);
    footer.put_u64(bloom_len);
    footer.put_u64(meta_crc);
    let footer_crc = fnv64(&footer);
    footer.put_u64(footer_crc);

    let mut file = OpenOptions::new().write(true).create_new(true).open(path)?;
    use std::io::Write;
    file.write_all(&data)?;
    file.write_all(&index)?;
    file.write_all(&bloom_bytes)?;
    file.write_all(&footer)?;
    file.sync_data()?;
    Ok(SstWriteStats {
        file_bytes: data_bytes + index_len + bloom_len + SST_FOOTER_LEN as u64,
        data_bytes,
        blocks: total_blocks,
        partitions: input.len() as u64,
        cells: total_cells,
    })
}

/// One partition's resident metadata.
#[derive(Debug)]
struct DiskPartition {
    key: PartitionKey,
    cell_count: u32,
    /// Encoded size of the partition (sum of its block lengths).
    bytes: u64,
    blocks: Vec<BlockMeta>,
}

/// An open on-disk SSTable: metadata in RAM, data blocks on disk.
#[derive(Debug)]
pub struct SstFile {
    file: File,
    path: PathBuf,
    generation: u64,
    column_index_size: usize,
    partitions: Vec<DiskPartition>,
    bloom: BloomFilter,
    data_bytes: u64,
}

impl SstFile {
    /// Opens an SSTable file, verifying the footer and metadata checksums
    /// and loading the partition index and bloom filter. Data blocks stay
    /// on disk; their checksums are verified lazily at read time.
    pub fn open(path: &Path) -> io::Result<SstFile> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < SST_FOOTER_LEN as u64 {
            return Err(bad_data(format!(
                "{}: too short for a footer",
                path.display()
            )));
        }
        let mut footer_raw = vec![0u8; SST_FOOTER_LEN];
        file.read_exact_at(&mut footer_raw, file_len - SST_FOOTER_LEN as u64)?;
        let (covered, tail) = footer_raw.split_at(SST_FOOTER_LEN - 8);
        let stored = u64::from_be_bytes(
            tail.try_into()
                .map_err(|_| bad_data(format!("{}: unreadable footer crc", path.display())))?,
        );
        if fnv64(covered) != stored {
            return Err(bad_data(format!("{}: footer crc mismatch", path.display())));
        }
        let mut footer = Bytes::copy_from_slice(covered);
        if footer.get_u32() != SST_MAGIC {
            return Err(bad_data(format!("{}: bad magic", path.display())));
        }
        let version = footer.get_u8();
        if version != SST_VERSION {
            return Err(bad_data(format!(
                "{}: unsupported version {version}",
                path.display()
            )));
        }
        footer.advance(3);
        let generation = footer.get_u64();
        let column_index_size = footer.get_u64() as usize;
        let index_off = footer.get_u64();
        let index_len = footer.get_u64();
        let bloom_off = footer.get_u64();
        let bloom_len = footer.get_u64();
        let meta_crc = footer.get_u64();
        let meta_end = bloom_off.checked_add(bloom_len);
        if index_off
            .checked_add(index_len)
            .is_none_or(|end| end != bloom_off)
            || meta_end.is_none_or(|end| end != file_len - SST_FOOTER_LEN as u64)
        {
            return Err(bad_data(format!(
                "{}: metadata extents inconsistent with file size",
                path.display()
            )));
        }
        let mut index_raw = vec![0u8; index_len as usize];
        file.read_exact_at(&mut index_raw, index_off)?;
        let mut bloom_raw = vec![0u8; bloom_len as usize];
        file.read_exact_at(&mut bloom_raw, bloom_off)?;
        if fnv64_extend(fnv64(&index_raw), &bloom_raw) != meta_crc {
            return Err(bad_data(format!(
                "{}: metadata crc mismatch",
                path.display()
            )));
        }
        let partitions = parse_index(&index_raw, index_off)
            .ok_or_else(|| bad_data(format!("{}: malformed partition index", path.display())))?;
        let mut bloom_buf = Bytes::copy_from_slice(&bloom_raw);
        let bloom = BloomFilter::deserialize(&mut bloom_buf)
            .filter(|_| bloom_buf.is_empty())
            .ok_or_else(|| bad_data(format!("{}: malformed bloom filter", path.display())))?;
        Ok(SstFile {
            file,
            path: path.to_path_buf(),
            generation,
            column_index_size,
            partitions,
            bloom,
            data_bytes: index_off,
        })
    }

    /// The run's generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of partitions in the run.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Data-block payload bytes on disk.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// The column-index threshold the run was built with.
    pub fn column_index_size(&self) -> usize {
        self.column_index_size
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether this partition is column-indexed (encoded size above the
    /// threshold) — the on-disk continuation of the Figure 6 mechanism.
    pub fn has_column_index(&self, pk: &PartitionKey) -> bool {
        self.find(pk)
            .map(|p| p.bytes > self.column_index_size as u64)
            .unwrap_or(false)
    }

    fn find(&self, pk: &PartitionKey) -> Option<&DiskPartition> {
        self.partitions
            .binary_search_by(|p| p.key.cmp(pk))
            .ok()
            .map(|i| &self.partitions[i])
    }

    /// Fetches one block, via the cache when possible, verifying its
    /// checksum on a disk read.
    fn load_block(
        &self,
        meta: &BlockMeta,
        cache: &mut BlockCache,
        receipt: &mut ReadReceipt,
    ) -> io::Result<Bytes> {
        let key = (self.generation, meta.offset);
        if let Some(block) = cache.get(&key) {
            receipt.disk_block_cache_hits += 1;
            return Ok(block.clone());
        }
        let mut raw = vec![0u8; meta.len as usize];
        self.file.read_exact_at(&mut raw, meta.offset)?;
        // Charge before the checksum verdict: the read moved the bytes
        // whether or not they verify, and a corrupt block that escaped
        // the accounting would skew every cost model built on receipts
        // (KVS-L019 checks this must-reach property on all paths).
        receipt.disk_blocks_read += 1;
        receipt.disk_bytes_read += meta.len as u64;
        if fnv64(&raw) != meta.crc {
            return Err(bad_data(format!(
                "{}: block at offset {} failed its checksum",
                self.path.display(),
                meta.offset
            )));
        }
        let block = Bytes::from(raw);
        cache.put(key, block.clone());
        Ok(block)
    }

    /// Reads a whole partition. `Ok(None)` (with receipt counters
    /// updated) when this run does not contain it; `Err` only on I/O
    /// failure or detected corruption.
    pub fn read(
        &self,
        pk: &PartitionKey,
        cache: &mut BlockCache,
        receipt: &mut ReadReceipt,
    ) -> io::Result<Option<Vec<Cell>>> {
        receipt.bloom_probes += 1;
        if !self.bloom.maybe_contains(pk.as_bytes()) {
            receipt.bloom_negatives += 1;
            return Ok(None);
        }
        receipt.partition_index_seeks += 1;
        let Some(entry) = self.find(pk) else {
            receipt.bloom_false_positives += 1;
            return Ok(None);
        };
        receipt.sstables_read += 1;
        if entry.bytes > self.column_index_size as u64 {
            receipt.used_column_index = true;
            receipt.column_index_blocks += entry.blocks.len() as u64;
        }
        let mut out = Vec::with_capacity(entry.cell_count as usize);
        for meta in &entry.blocks {
            let mut block = self.load_block(meta, cache, receipt)?;
            let mut in_block = 0u32;
            while let Some(cell) = Cell::decode(&mut block) {
                receipt.cells_scanned += 1;
                receipt.bytes_read += cell.encoded_len() as u64;
                out.push(cell);
                in_block += 1;
            }
            if in_block != meta.cells || !block.is_empty() {
                return Err(bad_data(format!(
                    "{}: block at offset {} decoded {} cells, index says {}",
                    self.path.display(),
                    meta.offset,
                    in_block,
                    meta.cells
                )));
            }
        }
        receipt.cells_returned += out.len() as u64;
        Ok(Some(out))
    }

    /// Reads the cells of a partition within a clustering range. A
    /// column-indexed partition seeks to overlapping blocks only; a small
    /// partition decodes every block up to the range end — exactly the
    /// in-RAM [`crate::sstable::SsTable::read_range`] mechanics, with
    /// disk charges.
    pub fn read_range(
        &self,
        pk: &PartitionKey,
        range: RangeInclusive<ClusteringKey>,
        cache: &mut BlockCache,
        receipt: &mut ReadReceipt,
    ) -> io::Result<Vec<Cell>> {
        receipt.bloom_probes += 1;
        if !self.bloom.maybe_contains(pk.as_bytes()) {
            receipt.bloom_negatives += 1;
            return Ok(Vec::new());
        }
        receipt.partition_index_seeks += 1;
        let Some(entry) = self.find(pk) else {
            receipt.bloom_false_positives += 1;
            return Ok(Vec::new());
        };
        receipt.sstables_read += 1;
        let (from, to) = (*range.start(), *range.end());
        let indexed = entry.bytes > self.column_index_size as u64;
        let blocks: Vec<&BlockMeta> = if indexed {
            receipt.used_column_index = true;
            let overlapping: Vec<&BlockMeta> = entry
                .blocks
                .iter()
                .filter(|b| b.overlaps(from, to))
                .collect();
            receipt.column_index_blocks += overlapping.len() as u64;
            overlapping
        } else {
            entry.blocks.iter().collect()
        };
        let mut out = Vec::new();
        'blocks: for meta in blocks {
            let mut block = self.load_block(meta, cache, receipt)?;
            while let Some(cell) = Cell::decode(&mut block) {
                receipt.cells_scanned += 1;
                receipt.bytes_read += cell.encoded_len() as u64;
                if cell.clustering > to {
                    break 'blocks;
                }
                if cell.clustering >= from {
                    out.push(cell);
                }
            }
        }
        receipt.cells_returned += out.len() as u64;
        Ok(out)
    }

    /// Reads every partition back, verifying all block checksums — the
    /// compaction input path. Bypasses the block cache (compaction reads
    /// each block once; caching them would only evict hot read blocks).
    pub fn scan(&self) -> io::Result<Vec<(PartitionKey, Vec<Cell>)>> {
        let mut out = Vec::with_capacity(self.partitions.len());
        for entry in &self.partitions {
            let mut cells = Vec::with_capacity(entry.cell_count as usize);
            for meta in &entry.blocks {
                let mut raw = vec![0u8; meta.len as usize];
                self.file.read_exact_at(&mut raw, meta.offset)?;
                if fnv64(&raw) != meta.crc {
                    return Err(bad_data(format!(
                        "{}: block at offset {} failed its checksum",
                        self.path.display(),
                        meta.offset
                    )));
                }
                let mut block = Bytes::from(raw);
                while let Some(cell) = Cell::decode(&mut block) {
                    cells.push(cell);
                }
            }
            if cells.len() != entry.cell_count as usize {
                return Err(bad_data(format!(
                    "{}: partition {:?} decoded {} cells, index says {}",
                    self.path.display(),
                    entry.key,
                    cells.len(),
                    entry.cell_count
                )));
            }
            out.push((entry.key.clone(), cells));
        }
        Ok(out)
    }
}

/// Parses the partition index region. `data_len` is the size of the data
/// region (which starts at file offset 0), so every block extent can be
/// bounds-checked; structural damage yields `None`.
fn parse_index(raw: &[u8], data_len: u64) -> Option<Vec<DiskPartition>> {
    let mut buf = Bytes::copy_from_slice(raw);
    if buf.len() < 4 {
        return None;
    }
    let count = buf.get_u32() as usize;
    let mut out = Vec::with_capacity(count);
    let mut prev_key: Option<PartitionKey> = None;
    for _ in 0..count {
        if buf.len() < 2 {
            return None;
        }
        let key_len = buf.get_u16() as usize;
        if buf.len() < key_len + 8 {
            return None;
        }
        let key = PartitionKey::new(buf.split_to(key_len).to_vec());
        if let Some(prev) = &prev_key {
            if prev >= &key {
                return None;
            }
        }
        let cell_count = buf.get_u32();
        let block_count = buf.get_u32() as usize;
        if buf.len() < block_count * BLOCK_META_BYTES {
            return None;
        }
        let mut blocks = Vec::with_capacity(block_count);
        let mut bytes = 0u64;
        for _ in 0..block_count {
            let meta = BlockMeta::decode(&mut buf)?;
            if meta.offset.checked_add(meta.len as u64)? > data_len {
                return None;
            }
            bytes += meta.len as u64;
            blocks.push(meta);
        }
        prev_key = Some(key.clone());
        out.push(DiskPartition {
            key,
            cell_count,
            bytes,
            blocks,
        });
    }
    if !buf.is_empty() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::TempDir;

    fn pk(i: u64) -> PartitionKey {
        PartitionKey::from_id(i)
    }

    fn build_input(partition_sizes: &[usize]) -> Vec<(PartitionKey, Vec<Cell>)> {
        partition_sizes
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                let cells = (0..n as u64)
                    .map(|c| Cell::synthetic(c, (c % 4) as u8))
                    .collect();
                (pk(p as u64), cells)
            })
            .collect()
    }

    fn write_open(dir: &Path, sizes: &[usize], generation: u64) -> (SstFile, SstWriteStats) {
        let path = dir.join(sst_file_name(generation));
        let stats = write_sst(
            &path,
            &build_input(sizes),
            &SsTableOptions::default(),
            generation,
        )
        .expect("write");
        (SstFile::open(&path).expect("open"), stats)
    }

    #[test]
    fn roundtrip_reads_every_partition() {
        let tmp = TempDir::new("sst-roundtrip");
        let (sst, stats) = write_open(tmp.path(), &[10, 2000, 1], 3);
        assert_eq!(sst.generation(), 3);
        assert_eq!(sst.partition_count(), 3);
        assert_eq!(stats.cells, 2011);
        assert_eq!(stats.data_bytes, 2011 * 46);
        let mut cache = BlockCache::new(64);
        for (pk_in, cells_in) in build_input(&[10, 2000, 1]) {
            let mut r = ReadReceipt::default();
            let cells = sst
                .read(&pk_in, &mut cache, &mut r)
                .expect("io")
                .expect("hit");
            assert_eq!(cells, cells_in);
        }
        let mut r = ReadReceipt::default();
        assert!(sst.read(&pk(99), &mut cache, &mut r).expect("io").is_none());
        assert_eq!(r.bloom_negatives + r.bloom_false_positives, 1);
    }

    #[test]
    fn disk_reads_then_cache_hits() {
        let tmp = TempDir::new("sst-cache");
        let (sst, stats) = write_open(tmp.path(), &[500], 1);
        let mut cache = BlockCache::new(64);
        let mut r1 = ReadReceipt::default();
        sst.read(&pk(0), &mut cache, &mut r1)
            .expect("io")
            .expect("hit");
        assert_eq!(r1.disk_blocks_read, stats.blocks);
        assert_eq!(r1.disk_block_cache_hits, 0);
        assert_eq!(r1.disk_bytes_read, stats.data_bytes);
        let mut r2 = ReadReceipt::default();
        sst.read(&pk(0), &mut cache, &mut r2)
            .expect("io")
            .expect("hit");
        assert_eq!(r2.disk_blocks_read, 0);
        assert_eq!(r2.disk_block_cache_hits, stats.blocks);
        assert_eq!(r2.disk_bytes_read, 0);
    }

    #[test]
    fn column_index_threshold_survives_on_disk() {
        // 1424 cells = 65504 B ≤ 64 KiB (not indexed), 1425 > (indexed):
        // the same Figure 6 boundary as the in-RAM store.
        let tmp = TempDir::new("sst-threshold");
        let (sst, _) = write_open(tmp.path(), &[1424, 1425], 1);
        assert!(!sst.has_column_index(&pk(0)));
        assert!(sst.has_column_index(&pk(1)));
        let mut cache = BlockCache::new(256);
        let mut r = ReadReceipt::default();
        sst.read(&pk(0), &mut cache, &mut r)
            .expect("io")
            .expect("hit");
        assert!(!r.used_column_index);
        let mut r = ReadReceipt::default();
        sst.read(&pk(1), &mut cache, &mut r)
            .expect("io")
            .expect("hit");
        assert!(r.used_column_index);
        assert!(r.column_index_blocks > 0);
    }

    #[test]
    fn range_reads_seek_on_indexed_partitions() {
        let tmp = TempDir::new("sst-range");
        let (sst, stats) = write_open(tmp.path(), &[10_000], 1);
        let mut cache = BlockCache::new(0); // no cache: count real reads
        let mut r = ReadReceipt::default();
        let cells = sst
            .read_range(&pk(0), 5_000..=5_099, &mut cache, &mut r)
            .expect("io");
        assert_eq!(cells.len(), 100);
        assert_eq!(cells[0].clustering, 5_000);
        assert!(r.used_column_index);
        assert!(
            r.disk_blocks_read < stats.blocks / 10,
            "read {} of {} blocks — seek failed",
            r.disk_blocks_read,
            stats.blocks
        );
        // Full-span range equals the point read.
        let mut r2 = ReadReceipt::default();
        let all = sst
            .read(&pk(0), &mut cache, &mut r2)
            .expect("io")
            .expect("hit");
        let mut r3 = ReadReceipt::default();
        let ranged = sst
            .read_range(&pk(0), 0..=u64::MAX, &mut cache, &mut r3)
            .expect("io");
        assert_eq!(all, ranged);
    }

    #[test]
    fn small_partition_range_scans_without_index() {
        let tmp = TempDir::new("sst-range-small");
        let (sst, _) = write_open(tmp.path(), &[100], 1);
        let mut cache = BlockCache::new(8);
        let mut r = ReadReceipt::default();
        let cells = sst
            .read_range(&pk(0), 10..=19, &mut cache, &mut r)
            .expect("io");
        assert_eq!(cells.len(), 10);
        assert!(!r.used_column_index);
    }

    #[test]
    fn oversized_cells_roundtrip() {
        // A >64 KiB single cell: bigger than both the block target and the
        // column-index threshold.
        let tmp = TempDir::new("sst-bigcell");
        let big = Cell::new(5, 1, vec![0x5A; 100_000]);
        let input = vec![(pk(0), vec![Cell::synthetic(1, 0), big.clone()])];
        let path = tmp.path().join(sst_file_name(1));
        write_sst(&path, &input, &SsTableOptions::default(), 1).expect("write");
        let sst = SstFile::open(&path).expect("open");
        assert!(sst.has_column_index(&pk(0)));
        let mut cache = BlockCache::new(4);
        let mut r = ReadReceipt::default();
        let cells = sst
            .read(&pk(0), &mut cache, &mut r)
            .expect("io")
            .expect("hit");
        assert_eq!(cells, input[0].1);
    }

    #[test]
    fn scan_returns_everything_in_order() {
        let tmp = TempDir::new("sst-scan");
        let (sst, _) = write_open(tmp.path(), &[7, 3, 90], 2);
        let scanned = sst.scan().expect("scan");
        assert_eq!(scanned, build_input(&[7, 3, 90]));
    }

    #[test]
    fn empty_sst_roundtrips() {
        let tmp = TempDir::new("sst-empty");
        let path = tmp.path().join(sst_file_name(5));
        write_sst(&path, &[], &SsTableOptions::default(), 5).expect("write");
        let sst = SstFile::open(&path).expect("open");
        assert_eq!(sst.partition_count(), 0);
        assert_eq!(sst.generation(), 5);
        let mut cache = BlockCache::new(4);
        let mut r = ReadReceipt::default();
        assert!(sst.read(&pk(0), &mut cache, &mut r).expect("io").is_none());
    }

    #[test]
    fn footer_and_metadata_corruption_rejected_at_open() {
        let tmp = TempDir::new("sst-corrupt-meta");
        let path = tmp.path().join(sst_file_name(1));
        write_sst(&path, &build_input(&[200]), &SsTableOptions::default(), 1).expect("write");
        let pristine = std::fs::read(&path).expect("read");
        // Footer corruption (last 72 bytes) and index corruption (just
        // past the data region) must both fail open().
        let data_len = 200 * 46;
        for idx in [
            pristine.len() - 1,
            pristine.len() - SST_FOOTER_LEN,
            data_len + 2,
        ] {
            let mut bad = pristine.clone();
            bad[idx] ^= 0x08;
            std::fs::write(&path, &bad).expect("write");
            assert!(
                SstFile::open(&path).is_err(),
                "corruption at {idx} accepted"
            );
        }
        // Truncation too.
        std::fs::write(&path, &pristine[..30]).expect("write");
        assert!(SstFile::open(&path).is_err());
        std::fs::write(&path, &pristine).expect("write");
        assert!(SstFile::open(&path).is_ok());
    }

    #[test]
    fn data_block_corruption_rejected_at_read() {
        let tmp = TempDir::new("sst-corrupt-block");
        let path = tmp.path().join(sst_file_name(1));
        write_sst(&path, &build_input(&[200]), &SsTableOptions::default(), 1).expect("write");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[100] ^= 0x01; // inside the first data block
        std::fs::write(&path, &bytes).expect("write");
        let sst = SstFile::open(&path).expect("open still fine");
        let mut cache = BlockCache::new(4);
        let mut r = ReadReceipt::default();
        let err = sst.read(&pk(0), &mut cache, &mut r).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(sst.scan().is_err());
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(sst_file_name(7), "sst-0000000007.sst");
        assert_eq!(parse_sst_generation("sst-0000000007.sst"), Some(7));
        assert_eq!(parse_sst_generation("wal-0000000007.log"), None);
    }

    #[test]
    fn write_refuses_to_clobber() {
        let tmp = TempDir::new("sst-clobber");
        let path = tmp.path().join(sst_file_name(1));
        write_sst(&path, &[], &SsTableOptions::default(), 1).expect("first");
        assert!(write_sst(&path, &[], &SsTableOptions::default(), 1).is_err());
    }
}
