//! Immutable sorted runs with Cassandra's two-level indexing.
//!
//! An [`SsTable`] holds every cell of its partitions in one contiguous
//! encoded buffer. Lookups go through:
//!
//! 1. the **bloom filter** — skip the run if the key is definitely absent;
//! 2. the **partition index** — binary search for the partition's byte
//!    extent;
//! 3. the **column index** — present *only* for partitions whose encoded
//!    size exceeds [`SsTableOptions::column_index_size`] (Cassandra's
//!    `column_index_size_in_kb`, 64 KiB by default). It subdivides the
//!    partition into blocks and lets range reads seek instead of scanning.
//!
//! The paper traced Figure 6's latency discontinuity at ≈ 1425 cells to
//! exactly this threshold; with the workspace's 46-byte cells the column
//! index appears at 1425 cells here too.

use crate::block::fnv64;
use crate::bloom::BloomFilter;
use crate::receipt::ReadReceipt;
use crate::schema::{Cell, ClusteringKey, PartitionKey};
use bytes::{Bytes, BytesMut};
use std::ops::RangeInclusive;

/// Build-time options for an SSTable.
#[derive(Debug, Clone)]
pub struct SsTableOptions {
    /// Partitions whose encoded size exceeds this many bytes get a column
    /// index (Cassandra default: 64 KiB).
    pub column_index_size: usize,
    /// Target bloom-filter false-positive rate.
    pub bloom_fp_rate: f64,
}

impl Default for SsTableOptions {
    fn default() -> Self {
        SsTableOptions {
            column_index_size: 64 * 1024,
            bloom_fp_rate: 0.01,
        }
    }
}

/// One column-index entry: the clustering key starting a block and the
/// block's byte extent within the partition's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ColumnIndexEntry {
    first_clustering: ClusteringKey,
    last_clustering: ClusteringKey,
    start: usize,
    end: usize,
}

/// Partition-index entry: key → byte extent (+ optional column index).
#[derive(Debug, Clone)]
struct PartitionEntry {
    key: PartitionKey,
    start: usize,
    end: usize,
    cell_count: usize,
    column_index: Option<Vec<ColumnIndexEntry>>,
}

/// An immutable sorted run.
#[derive(Debug)]
pub struct SsTable {
    data: Bytes,
    partitions: Vec<PartitionEntry>,
    bloom: BloomFilter,
    opts: SsTableOptions,
    generation: u64,
}

impl SsTable {
    /// Builds a run from `(partition, cells)` pairs.
    ///
    /// # Panics
    /// If partitions are not strictly ascending by key or cells are not
    /// strictly ascending by clustering key — the upstream memtable drain
    /// and compaction merge both guarantee this, so a violation is a bug.
    pub fn build(
        input: Vec<(PartitionKey, Vec<Cell>)>,
        opts: SsTableOptions,
        generation: u64,
    ) -> Self {
        let mut bloom = BloomFilter::with_rate(input.len(), opts.bloom_fp_rate);
        let mut data = BytesMut::new();
        let mut partitions = Vec::with_capacity(input.len());
        for (pk, cells) in input {
            if let Some(prev) = partitions.last() {
                let prev: &PartitionEntry = prev;
                assert!(prev.key < pk, "partitions must be strictly ascending");
            }
            bloom.insert(pk.as_bytes());
            let start = data.len();
            let mut column_index: Vec<ColumnIndexEntry> = Vec::new();
            let mut block_start = start;
            let mut block_first: Option<ClusteringKey> = None;
            let mut prev_clustering: Option<ClusteringKey> = None;
            for cell in &cells {
                if let Some(prev) = prev_clustering {
                    assert!(prev < cell.clustering, "cells must be strictly ascending");
                }
                prev_clustering = Some(cell.clustering);
                if block_first.is_none() {
                    block_first = Some(cell.clustering);
                    block_start = data.len();
                }
                cell.encode(&mut data);
                // Close the block once it crosses the configured size.
                if data.len() - block_start >= opts.column_index_size {
                    column_index.push(ColumnIndexEntry {
                        first_clustering: block_first.expect("block has a first cell"),
                        last_clustering: cell.clustering,
                        start: block_start,
                        end: data.len(),
                    });
                    block_first = None;
                }
            }
            if let (Some(first), Some(last)) = (block_first, prev_clustering) {
                column_index.push(ColumnIndexEntry {
                    first_clustering: first,
                    last_clustering: last,
                    start: block_start,
                    end: data.len(),
                });
            }
            let end = data.len();
            // Cassandra only keeps a column index for partitions larger
            // than the threshold: small rows are read whole anyway.
            let column_index = if end - start > opts.column_index_size {
                Some(column_index)
            } else {
                None
            };
            partitions.push(PartitionEntry {
                key: pk,
                start,
                end,
                cell_count: cells.len(),
                column_index,
            });
        }
        SsTable {
            data: data.freeze(),
            partitions,
            bloom,
            opts,
            generation,
        }
    }

    /// The run's generation number (monotonically increasing at flush /
    /// compaction time; higher = newer data wins merges).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of partitions in the run.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total encoded data bytes.
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// The build options (used by compaction to rebuild alike).
    pub fn options(&self) -> &SsTableOptions {
        &self.opts
    }

    /// Whether this partition carries a column index.
    pub fn has_column_index(&self, pk: &PartitionKey) -> bool {
        self.find(pk)
            .map(|e| e.column_index.is_some())
            .unwrap_or(false)
    }

    fn find(&self, pk: &PartitionKey) -> Option<&PartitionEntry> {
        self.partitions
            .binary_search_by(|e| e.key.cmp(pk))
            .ok()
            .map(|i| &self.partitions[i])
    }

    /// Reads a whole partition; `None` (with receipt counters updated) when
    /// this run does not contain it.
    pub fn read(&self, pk: &PartitionKey, receipt: &mut ReadReceipt) -> Option<Vec<Cell>> {
        receipt.bloom_probes += 1;
        if !self.bloom.maybe_contains(pk.as_bytes()) {
            receipt.bloom_negatives += 1;
            return None;
        }
        receipt.partition_index_seeks += 1;
        let entry = match self.find(pk) {
            Some(e) => e,
            None => {
                receipt.bloom_false_positives += 1;
                return None;
            }
        };
        receipt.sstables_read += 1;
        if let Some(ci) = &entry.column_index {
            receipt.used_column_index = true;
            receipt.column_index_blocks += ci.len() as u64;
        }
        let mut buf = self.data.slice(entry.start..entry.end);
        let mut out = Vec::with_capacity(entry.cell_count);
        while let Some(cell) = Cell::decode(&mut buf) {
            receipt.cells_scanned += 1;
            receipt.bytes_read += cell.encoded_len() as u64;
            out.push(cell);
        }
        receipt.cells_returned += out.len() as u64;
        Some(out)
    }

    /// Reads the cells of a partition within a clustering range, seeking
    /// via the column index when one exists.
    pub fn read_range(
        &self,
        pk: &PartitionKey,
        range: RangeInclusive<ClusteringKey>,
        receipt: &mut ReadReceipt,
    ) -> Vec<Cell> {
        receipt.bloom_probes += 1;
        if !self.bloom.maybe_contains(pk.as_bytes()) {
            receipt.bloom_negatives += 1;
            return Vec::new();
        }
        receipt.partition_index_seeks += 1;
        let entry = match self.find(pk) {
            Some(e) => e,
            None => {
                receipt.bloom_false_positives += 1;
                return Vec::new();
            }
        };
        receipt.sstables_read += 1;
        let (from, to) = (*range.start(), *range.end());
        let extents: Vec<(usize, usize)> = match &entry.column_index {
            Some(ci) => {
                receipt.used_column_index = true;
                let blocks: Vec<&ColumnIndexEntry> = ci
                    .iter()
                    .filter(|b| b.last_clustering >= from && b.first_clustering <= to)
                    .collect();
                receipt.column_index_blocks += blocks.len() as u64;
                blocks.iter().map(|b| (b.start, b.end)).collect()
            }
            None => vec![(entry.start, entry.end)],
        };
        let mut out = Vec::new();
        for (start, end) in extents {
            let mut buf = self.data.slice(start..end);
            while let Some(cell) = Cell::decode(&mut buf) {
                receipt.cells_scanned += 1;
                receipt.bytes_read += cell.encoded_len() as u64;
                if cell.clustering > to {
                    break;
                }
                if cell.clustering >= from {
                    out.push(cell);
                }
            }
        }
        receipt.cells_returned += out.len() as u64;
        out
    }

    /// Serializes the whole run (data + indexes are rebuilt on load) into a
    /// self-describing byte image with a checksum — the on-disk format.
    ///
    /// Layout: magic (4) ⋅ version (1) ⋅ generation (8) ⋅ column-index
    /// size (8) ⋅ partition count (4) ⋅ per partition: key len (2) + key +
    /// cell count (4) ⋅ data length (8) ⋅ data ⋅ FNV checksum (8).
    pub fn serialize(&self) -> Bytes {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"KVS1");
        buf.put_u8(1);
        buf.put_u64(self.generation);
        buf.put_u64(self.opts.column_index_size as u64);
        buf.put_u32(self.partitions.len() as u32);
        for entry in &self.partitions {
            buf.put_u16(entry.key.len() as u16);
            buf.put_slice(entry.key.as_bytes());
            buf.put_u32(entry.cell_count as u32);
        }
        buf.put_u64(self.data.len() as u64);
        buf.put_slice(&self.data);
        let checksum = fnv64(&buf);
        buf.put_u64(checksum);
        buf.freeze()
    }

    /// Reconstructs a run from [`SsTable::serialize`] output. Returns
    /// `None` on any structural damage or checksum mismatch (a corrupted
    /// run must never be half-loaded).
    pub fn deserialize(bytes: &[u8]) -> Option<SsTable> {
        use bytes::Buf;
        if bytes.len() < 12 + 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_be_bytes(tail.try_into().ok()?);
        if fnv64(body) != stored {
            return None;
        }
        let mut buf = body;
        let mut magic = [0u8; 4];
        if buf.remaining() < 4 {
            return None;
        }
        buf.copy_to_slice(&mut magic);
        if &magic != b"KVS1" || buf.remaining() < 1 || buf.get_u8() != 1 {
            return None;
        }
        if buf.remaining() < 8 + 8 + 4 {
            return None;
        }
        let generation = buf.get_u64();
        let column_index_size = buf.get_u64() as usize;
        let n_partitions = buf.get_u32() as usize;
        let mut headers = Vec::with_capacity(n_partitions);
        for _ in 0..n_partitions {
            if buf.remaining() < 2 {
                return None;
            }
            let key_len = buf.get_u16() as usize;
            if buf.remaining() < key_len + 4 {
                return None;
            }
            let key = PartitionKey::new(buf.copy_to_bytes(key_len).to_vec());
            let cells = buf.get_u32() as usize;
            headers.push((key, cells));
        }
        if buf.remaining() < 8 {
            return None;
        }
        let data_len = buf.get_u64() as usize;
        if buf.remaining() != data_len {
            return None;
        }
        let mut data = Bytes::copy_from_slice(buf);
        // Re-decode the data stream into (key, cells) and rebuild through
        // `build` so every index and bloom filter is reconstructed
        // consistently with the current implementation.
        let mut input = Vec::with_capacity(n_partitions);
        for (key, cell_count) in headers {
            let mut cells = Vec::with_capacity(cell_count);
            for _ in 0..cell_count {
                cells.push(Cell::decode(&mut data)?);
            }
            input.push((key, cells));
        }
        if !data.is_empty() {
            return None;
        }
        Some(SsTable::build(
            input,
            SsTableOptions {
                column_index_size,
                bloom_fp_rate: 0.01,
            },
            generation,
        ))
    }

    /// Iterates all partitions (for compaction).
    pub fn partitions(&self) -> impl Iterator<Item = (PartitionKey, Vec<Cell>)> + '_ {
        self.partitions.iter().map(move |entry| {
            let mut buf = self.data.slice(entry.start..entry.end);
            let mut cells = Vec::with_capacity(entry.cell_count);
            while let Some(cell) = Cell::decode(&mut buf) {
                cells.push(cell);
            }
            (entry.key.clone(), cells)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(i: u64) -> PartitionKey {
        PartitionKey::from_id(i)
    }

    fn build_one(partition_sizes: &[usize]) -> SsTable {
        let input: Vec<(PartitionKey, Vec<Cell>)> = partition_sizes
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                let cells = (0..n as u64)
                    .map(|c| Cell::synthetic(c, (c % 4) as u8))
                    .collect();
                (pk(p as u64), cells)
            })
            .collect();
        SsTable::build(input, SsTableOptions::default(), 1)
    }

    #[test]
    fn read_returns_all_cells_in_order() {
        let sst = build_one(&[10, 20]);
        let mut r = ReadReceipt::default();
        let cells = sst.read(&pk(1), &mut r).unwrap();
        assert_eq!(cells.len(), 20);
        assert!(cells.windows(2).all(|w| w[0].clustering < w[1].clustering));
        assert_eq!(r.cells_returned, 20);
        assert_eq!(r.bytes_read, 20 * 46);
        assert_eq!(r.sstables_read, 1);
        assert!(!r.used_column_index);
    }

    #[test]
    fn missing_partition_updates_receipt() {
        let sst = build_one(&[5]);
        let mut r = ReadReceipt::default();
        assert!(sst.read(&pk(42), &mut r).is_none());
        assert_eq!(r.bloom_probes, 1);
        // Either the bloom filter rejected it or it was a false positive
        // caught by the partition index.
        assert_eq!(r.bloom_negatives + r.bloom_false_positives, 1);
        assert_eq!(r.cells_returned, 0);
    }

    #[test]
    fn column_index_appears_exactly_above_threshold() {
        // 46-byte cells: 1424 cells = 65504 B ≤ 64 KiB (no index),
        // 1425 cells = 65550 B > 64 KiB (indexed) — the paper's Figure 6
        // discontinuity point.
        let sst = build_one(&[1424, 1425]);
        assert!(!sst.has_column_index(&pk(0)));
        assert!(sst.has_column_index(&pk(1)));
    }

    #[test]
    fn column_index_blocks_are_counted() {
        let sst = build_one(&[5000]);
        let mut r = ReadReceipt::default();
        sst.read(&pk(0), &mut r).unwrap();
        assert!(r.used_column_index);
        // 5000 × 46 B = 230 000 B → 4 blocks of ≥ 64 KiB.
        assert_eq!(r.column_index_blocks, 4);
    }

    #[test]
    fn range_read_small_partition_scans_everything() {
        let sst = build_one(&[100]);
        let mut r = ReadReceipt::default();
        let cells = sst.read_range(&pk(0), 10..=19, &mut r);
        assert_eq!(cells.len(), 10);
        assert_eq!(cells[0].clustering, 10);
        // No column index: the whole partition is decoded up to the range
        // end (cells 0..=20 scanned before the break).
        assert!(r.cells_scanned >= 20);
        assert!(!r.used_column_index);
    }

    #[test]
    fn range_read_large_partition_seeks() {
        let sst = build_one(&[10_000]);
        let mut r = ReadReceipt::default();
        let cells = sst.read_range(&pk(0), 5_000..=5_099, &mut r);
        assert_eq!(cells.len(), 100);
        assert!(r.used_column_index);
        // It must NOT scan all 10 000 cells — only the overlapping block(s).
        assert!(
            r.cells_scanned < 3_000,
            "scanned {} cells, seek failed",
            r.cells_scanned
        );
        assert!(r.column_index_blocks >= 1);
    }

    #[test]
    fn range_read_full_span_equals_point_read() {
        let sst = build_one(&[2000]);
        let mut r1 = ReadReceipt::default();
        let all = sst.read(&pk(0), &mut r1).unwrap();
        let mut r2 = ReadReceipt::default();
        let ranged = sst.read_range(&pk(0), 0..=u64::MAX, &mut r2);
        assert_eq!(all, ranged);
    }

    #[test]
    fn empty_range_returns_nothing() {
        let sst = build_one(&[100]);
        let mut r = ReadReceipt::default();
        let cells = sst.read_range(&pk(0), 500..=600, &mut r);
        assert!(cells.is_empty());
        assert_eq!(r.cells_returned, 0);
    }

    #[test]
    fn partitions_iterator_roundtrips() {
        let sst = build_one(&[3, 7, 1]);
        let collected: Vec<(PartitionKey, Vec<Cell>)> = sst.partitions().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0].1.len(), 3);
        assert_eq!(collected[1].1.len(), 7);
        assert_eq!(collected[2].1.len(), 1);
        assert_eq!(sst.partition_count(), 3);
        assert_eq!(sst.data_bytes(), (3 + 7 + 1) * 46);
    }

    #[test]
    fn empty_sstable_is_valid() {
        let sst = SsTable::build(Vec::new(), SsTableOptions::default(), 0);
        let mut r = ReadReceipt::default();
        assert!(sst.read(&pk(0), &mut r).is_none());
        assert_eq!(sst.partition_count(), 0);
    }

    #[test]
    fn serialize_roundtrips() {
        let sst = build_one(&[10, 2_000, 1]);
        let bytes = sst.serialize();
        let back = SsTable::deserialize(&bytes).expect("roundtrip");
        assert_eq!(back.generation(), sst.generation());
        assert_eq!(back.partition_count(), sst.partition_count());
        assert_eq!(back.data_bytes(), sst.data_bytes());
        for (pk, cells) in sst.partitions() {
            let mut r = ReadReceipt::default();
            assert_eq!(back.read(&pk, &mut r).expect("partition"), cells);
        }
        // The column index survives (2 000 cells > threshold).
        assert_eq!(back.has_column_index(&pk(1)), sst.has_column_index(&pk(1)));
    }

    #[test]
    fn roundtrip_preserves_column_index_threshold() {
        let input = vec![(
            pk(0),
            (0..3_000u64).map(|c| Cell::synthetic(c, 0)).collect(),
        )];
        let sst = SsTable::build(
            input,
            SsTableOptions {
                column_index_size: 32 * 1024,
                bloom_fp_rate: 0.01,
            },
            9,
        );
        let back = SsTable::deserialize(&sst.serialize()).unwrap();
        assert_eq!(back.options().column_index_size, 32 * 1024);
        assert!(back.has_column_index(&pk(0)));
    }

    #[test]
    fn corruption_is_detected() {
        let sst = build_one(&[50, 3]);
        let bytes = sst.serialize().to_vec();
        // Flip one bit anywhere — the checksum must catch it.
        for idx in [0usize, 4, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupted = bytes.clone();
            corrupted[idx] ^= 0x40;
            assert!(
                SsTable::deserialize(&corrupted).is_none(),
                "corruption at byte {idx} went unnoticed"
            );
        }
        // Truncations too.
        for cut in [0usize, 10, bytes.len() - 1] {
            assert!(SsTable::deserialize(&bytes[..cut]).is_none());
        }
        // And the pristine image still loads.
        assert!(SsTable::deserialize(&bytes).is_some());
    }

    #[test]
    fn empty_sstable_roundtrips() {
        let sst = SsTable::build(Vec::new(), SsTableOptions::default(), 3);
        let back = SsTable::deserialize(&sst.serialize()).unwrap();
        assert_eq!(back.partition_count(), 0);
        assert_eq!(back.generation(), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_partitions_rejected() {
        let input = vec![
            (pk(2), vec![Cell::synthetic(0, 0)]),
            (pk(1), vec![Cell::synthetic(0, 0)]),
        ];
        let _ = SsTable::build(input, SsTableOptions::default(), 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_cells_rejected() {
        let input = vec![(pk(1), vec![Cell::synthetic(5, 0), Cell::synthetic(3, 0)])];
        let _ = SsTable::build(input, SsTableOptions::default(), 0);
    }
}
