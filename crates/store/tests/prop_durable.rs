//! Property tests for the durable tier: WAL damage handling, on-disk
//! SSTable round-trips (including >64 KiB rows), and crash/restart
//! schedules checked against a fault-free oracle.

#![cfg(feature = "durable")]

use kvs_store::sst_file::{sst_file_name, write_sst, BlockCache, SstFile};
use kvs_store::sstable::SsTableOptions;
use kvs_store::wal::{replay_segment, FsyncPolicy, WalTail, WalWriter};
use kvs_store::{
    Cell, CrashPoint, DurableOptions, DurableTable, PartitionKey, ReadReceipt, TempDir,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn small_opts(flush_every_cells: usize) -> DurableOptions {
    DurableOptions {
        memtable_flush_bytes: 46 * flush_every_cells.max(1),
        compaction_threshold: 3,
        fsync: FsyncPolicy::Never, // durability windows don't matter here
        ..Default::default()
    }
}

/// Raw generated partition data: `(key bytes, [(clustering, kind, payload len)])`.
type RawPartitions = Vec<(Vec<u8>, Vec<(u64, u8, usize)>)>;

/// Sorts and deduplicates raw generated data into the ascending
/// `(partition, cells)` shape `write_sst` requires (newest clustering
/// entry wins on duplicates, matching memtable semantics).
fn build_partitions(raw: RawPartitions) -> Vec<(PartitionKey, Vec<Cell>)> {
    let mut merged: BTreeMap<Vec<u8>, BTreeMap<u64, Cell>> = BTreeMap::new();
    for (key, cells) in raw {
        let row = merged.entry(key).or_default();
        for (clustering, kind, payload_len) in cells {
            row.insert(
                clustering,
                Cell::new(clustering, kind, vec![kind; payload_len]),
            );
        }
    }
    merged
        .into_iter()
        .map(|(key, row)| (PartitionKey::new(key), row.into_values().collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a WAL segment at ANY byte offset replays exactly the
    /// records whose bytes fully survived, and reports a torn tail unless
    /// the cut landed on a record boundary.
    #[test]
    fn wal_truncation_replays_exact_prefix(
        n in 1u64..30,
        cut_back in 1usize..200,
    ) {
        let tmp = TempDir::new("prop-wal-torn");
        let mut w = WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::Never).expect("create");
        let mut boundaries = vec![w.bytes()];
        for i in 0..n {
            w.append(&PartitionKey::from_id(i % 4), &Cell::synthetic(i, (i % 3) as u8))
                .expect("append");
            boundaries.push(w.bytes());
        }
        let path = w.path().to_path_buf();
        drop(w);
        let full = std::fs::read(&path).expect("read");
        let cut = full.len().saturating_sub(cut_back % full.len().max(1));
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let replay = replay_segment(&path).expect("replay");
        // Exactly the records wholly below the cut survive.
        let expect = boundaries
            .iter()
            .filter(|&&b| b <= cut as u64)
            .count()
            .saturating_sub(1);
        prop_assert_eq!(replay.records.len(), expect.min(n as usize));
        for (i, rec) in replay.records.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(&rec.cell, &Cell::synthetic(i as u64, (i % 3) as u8));
        }
        if cut < 16 {
            prop_assert!(matches!(replay.tail, WalTail::Torn { .. }));
        } else if boundaries.contains(&(cut as u64)) {
            prop_assert_eq!(replay.tail, WalTail::Clean);
        } else {
            prop_assert!(matches!(replay.tail, WalTail::Torn { .. }));
        }
    }

    /// Flipping ANY bit anywhere in a WAL segment never yields a wrong
    /// record: replay returns a clean prefix of what was written and
    /// reports the damage.
    #[test]
    fn wal_bit_flip_never_fabricates_records(
        n in 1u64..20,
        byte_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let tmp = TempDir::new("prop-wal-flip");
        let mut w = WalWriter::create(tmp.path(), 1, 0, FsyncPolicy::Never).expect("create");
        for i in 0..n {
            w.append(&PartitionKey::from_id(i), &Cell::synthetic(i, 0)).expect("append");
        }
        let path = w.path().to_path_buf();
        drop(w);
        let mut bytes = std::fs::read(&path).expect("read");
        let pos = (byte_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("write");
        let replay = replay_segment(&path).expect("replay");
        // Whatever replays is a verbatim prefix of what was written —
        // never a fabricated or altered record.
        for (i, rec) in replay.records.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(&rec.key, &PartitionKey::from_id(i as u64));
            prop_assert_eq!(&rec.cell, &Cell::synthetic(i as u64, 0));
        }
        if pos < 5 {
            // Magic or version damage rejects the whole segment.
            prop_assert!(replay.records.is_empty());
            prop_assert!(matches!(replay.tail, WalTail::Corrupt { valid_bytes: 0 }));
        } else if pos < 8 {
            // Reserved header bytes carry no data; the record stream is
            // untouched and replays in full.
            prop_assert_eq!(replay.records.len(), n as usize);
            prop_assert_eq!(replay.tail, WalTail::Clean);
        } else if pos < 16 {
            // A damaged segment seq replays cleanly here but is caught by
            // recovery's header-vs-filename check.
            prop_assert_eq!(replay.records.len(), n as usize);
            prop_assert_ne!(replay.header_seq, Some(1));
        } else {
            // Damage inside the record stream: the checksum drops at
            // least one record and reports the damage.
            prop_assert!(replay.records.len() < n as usize);
            prop_assert!(replay.tail != WalTail::Clean);
        }
    }

    /// On-disk SSTables round-trip arbitrary keys and values, and range
    /// reads agree with filtered point reads.
    #[test]
    fn sst_file_roundtrips_arbitrary_data(
        raw in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..20),
                proptest::collection::vec((any::<u64>(), any::<u8>(), 0usize..120), 1..40),
            ),
            1..8,
        ),
        lo in any::<u64>(),
        span in 0u64..u64::MAX / 2,
    ) {
        let input = build_partitions(raw);
        let tmp = TempDir::new("prop-sst");
        let path = tmp.path().join(sst_file_name(1));
        write_sst(&path, &input, &SsTableOptions::default(), 1).expect("write");
        let sst = SstFile::open(&path).expect("open");
        let mut cache = BlockCache::new(32);
        let hi = lo.saturating_add(span);
        for (pk, cells) in &input {
            let mut r = ReadReceipt::default();
            let got = sst.read(pk, &mut cache, &mut r).expect("io").expect("present");
            prop_assert_eq!(&got, cells);
            prop_assert_eq!(r.cells_returned, cells.len() as u64);
            let mut r2 = ReadReceipt::default();
            let ranged = sst.read_range(pk, lo..=hi, &mut cache, &mut r2).expect("io");
            let filtered: Vec<Cell> = cells
                .iter()
                .filter(|c| c.clustering >= lo && c.clustering <= hi)
                .cloned()
                .collect();
            prop_assert_eq!(ranged, filtered);
        }
        prop_assert_eq!(sst.scan().expect("scan"), input);
    }

    /// Rows past the 64 KiB column-index threshold — including single
    /// cells bigger than a block — survive the disk round-trip.
    #[test]
    fn sst_file_roundtrips_oversized_rows(
        payloads in proptest::collection::vec(1usize..150_000, 1..5),
    ) {
        let tmp = TempDir::new("prop-sst-big");
        let cells: Vec<Cell> = payloads
            .iter()
            .enumerate()
            .map(|(i, &plen)| Cell::new(i as u64, (i % 7) as u8, vec![i as u8; plen]))
            .collect();
        let input = vec![(PartitionKey::from_id(1), cells)];
        let path = tmp.path().join(sst_file_name(1));
        write_sst(&path, &input, &SsTableOptions::default(), 1).expect("write");
        let sst = SstFile::open(&path).expect("open");
        let total: usize = input[0].1.iter().map(Cell::encoded_len).sum();
        prop_assert_eq!(
            sst.has_column_index(&PartitionKey::from_id(1)),
            total > 64 * 1024
        );
        let mut cache = BlockCache::new(8);
        let mut r = ReadReceipt::default();
        let got = sst
            .read(&PartitionKey::from_id(1), &mut cache, &mut r)
            .expect("io")
            .expect("present");
        prop_assert_eq!(&got, &input[0].1);
    }

    /// Arbitrary write schedules with interleaved flushes survive a
    /// restart bit-for-bit (WAL replay + manifest load vs a fault-free
    /// oracle).
    #[test]
    fn restart_recovers_every_acknowledged_write(
        writes in proptest::collection::vec((0u64..6, 0u64..50, any::<u8>()), 1..120),
        flush_every in 1usize..40,
    ) {
        let tmp = TempDir::new("prop-restart");
        let mut oracle: BTreeMap<PartitionKey, BTreeMap<u64, Cell>> = BTreeMap::new();
        {
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts(flush_every)).expect("open");
            for (i, &(p, c, kind)) in writes.iter().enumerate() {
                let pk = PartitionKey::from_id(p);
                let cell = Cell::new(c, kind, vec![kind; 8]);
                t.put(pk.clone(), cell.clone()).expect("put");
                oracle.entry(pk).or_default().insert(c, cell);
                if i % flush_every == 0 {
                    t.flush().expect("flush");
                }
            }
        }
        let (mut t, _) = DurableTable::open(tmp.path(), small_opts(flush_every)).expect("reopen");
        for (pk, cells) in &oracle {
            let expect: Vec<Cell> = cells.values().cloned().collect();
            let (got, _) = t.get(pk).expect("get");
            prop_assert_eq!(got, expect);
        }
    }

    /// A crash injected at ANY protocol step, during a flush or a
    /// compaction triggered at an arbitrary point in the write schedule,
    /// loses no acknowledged write and corrupts no value.
    #[test]
    fn any_crash_point_any_schedule_zero_loss(
        writes in proptest::collection::vec((0u64..5, 0u64..60, any::<u8>()), 10..100),
        crash_seed in any::<u64>(),
        point_idx in 0usize..5,
    ) {
        let points = [
            CrashPoint::AfterFlushSstWrite,
            CrashPoint::AfterFlushWalRotate,
            CrashPoint::AfterFlushManifest,
            CrashPoint::AfterCompactSstWrite,
            CrashPoint::AfterCompactManifest,
        ];
        let point = points[point_idx];
        let tmp = TempDir::new("prop-crash");
        let mut oracle: BTreeMap<PartitionKey, BTreeMap<u64, Cell>> = BTreeMap::new();
        // The write whose flush/compaction crashed: WAL-logged but never
        // acknowledged, so recovery may legitimately surface it.
        let mut inflight: Option<(PartitionKey, Cell)> = None;
        let crash_write = (crash_seed % writes.len() as u64) as usize;
        {
            let (mut t, _) = DurableTable::open(tmp.path(), small_opts(25)).expect("open");
            for (i, &(p, c, kind)) in writes.iter().enumerate() {
                let pk = PartitionKey::from_id(p);
                let cell = Cell::new(c, kind, vec![kind; 8]);
                if i == crash_write {
                    t.arm_crash_point(point);
                }
                match t.put(pk.clone(), cell.clone()) {
                    Ok(()) => {
                        oracle.entry(pk).or_default().insert(c, cell);
                    }
                    Err(_) => {
                        inflight = Some((pk, cell));
                        break;
                    }
                }
            }
            // Not every schedule trips the armed flush/compaction; either
            // way the directory must recover consistently.
        }
        let (mut t, _) = DurableTable::open(tmp.path(), small_opts(25)).expect("reopen");
        for (pk, cells) in &oracle {
            let (got, _) = t.get(pk).expect("get");
            let got_map: BTreeMap<u64, Cell> =
                got.into_iter().map(|c| (c.clustering, c)).collect();
            for (cl, cell) in cells {
                let found = got_map.get(cl);
                let acceptable = found == Some(cell)
                    || inflight
                        .as_ref()
                        .is_some_and(|(ipk, icell)| {
                            ipk == pk && icell.clustering == *cl && found == Some(icell)
                        });
                prop_assert!(
                    acceptable,
                    "acknowledged write lost or corrupted at {:?}/{}: got {:?}, want {:?}",
                    pk, cl, found, cell
                );
            }
        }
    }
}
