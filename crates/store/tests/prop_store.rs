//! Property tests for the store: round-trips, merge semantics, and the
//! range/point read equivalence that the experiments depend on.

use bytes::BytesMut;
use kvs_store::{BloomFilter, Cell, PartitionKey, Table, TableOptions};
use proptest::prelude::*;

fn small_table_opts(flush_every_cells: usize) -> TableOptions {
    TableOptions {
        memtable_flush_bytes: 46 * flush_every_cells.max(1),
        compaction_threshold: 3,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Cells round-trip through the wire encoding for arbitrary contents.
    #[test]
    fn cell_roundtrip(clustering in any::<u64>(), kind in any::<u8>(),
                      payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let cell = Cell::new(clustering, kind, payload);
        let mut buf = BytesMut::new();
        cell.encode(&mut buf);
        prop_assert_eq!(buf.len(), cell.encoded_len());
        let mut bytes = buf.freeze();
        let back = Cell::decode(&mut bytes).expect("roundtrip");
        prop_assert_eq!(back, cell);
        prop_assert!(bytes.is_empty());
    }

    /// Last-write-wins: for an arbitrary write sequence (with duplicate
    /// clustering keys and interleaved flushes), a read returns exactly the
    /// latest value per clustering key, sorted.
    #[test]
    fn table_is_last_write_wins(
        writes in proptest::collection::vec((0u64..40, any::<u8>()), 1..120),
        flush_every in 1usize..30,
    ) {
        let mut table = Table::new(small_table_opts(flush_every));
        let pk = PartitionKey::from_id(1);
        let mut expected = std::collections::BTreeMap::new();
        for (i, &(clustering, kind)) in writes.iter().enumerate() {
            table.put(pk.clone(), Cell::new(clustering, kind, vec![kind; 4]));
            expected.insert(clustering, kind);
            if i % flush_every == 0 {
                table.flush();
            }
        }
        let (cells, receipt) = table.get(&pk);
        prop_assert_eq!(cells.len(), expected.len());
        prop_assert_eq!(receipt.cells_returned as usize, expected.len());
        for (cell, (&clustering, &kind)) in cells.iter().zip(expected.iter()) {
            prop_assert_eq!(cell.clustering, clustering);
            prop_assert_eq!(cell.kind, kind);
        }
        // Sorted by clustering key.
        prop_assert!(cells.windows(2).all(|w| w[0].clustering < w[1].clustering));
    }

    /// Range reads agree with filtering a full read, across flush layouts
    /// and the column-index threshold.
    #[test]
    fn range_equals_filtered_point_read(
        cells in 1u64..3000,
        lo in 0u64..3000,
        span in 0u64..3000,
        flush_every in 100usize..2000,
    ) {
        let mut table = Table::new(small_table_opts(flush_every));
        let pk = PartitionKey::from_id(7);
        for c in 0..cells {
            table.put(pk.clone(), Cell::synthetic(c, (c % 5) as u8));
        }
        table.flush();
        let hi = lo.saturating_add(span);
        let (full, _) = table.get(&pk);
        let (ranged, _) = table.get_range(&pk, lo..=hi);
        let filtered: Vec<Cell> = full
            .into_iter()
            .filter(|c| c.clustering >= lo && c.clustering <= hi)
            .collect();
        prop_assert_eq!(ranged, filtered);
    }

    /// Compaction changes the physical layout but never the logical
    /// contents.
    #[test]
    fn compaction_preserves_contents(
        partitions in proptest::collection::vec(1u64..60, 1..8),
    ) {
        let mut table = Table::new(small_table_opts(10));
        for (p, &n) in partitions.iter().enumerate() {
            for c in 0..n {
                table.put(PartitionKey::from_id(p as u64), Cell::synthetic(c, (c % 3) as u8));
            }
            table.flush();
        }
        let before: Vec<Vec<Cell>> = (0..partitions.len())
            .map(|p| table.get(&PartitionKey::from_id(p as u64)).0)
            .collect();
        table.compact();
        prop_assert!(table.sstable_count() <= 1);
        for (p, expected) in before.iter().enumerate() {
            let (after, _) = table.get(&PartitionKey::from_id(p as u64));
            prop_assert_eq!(&after, expected);
        }
    }

    /// Bloom filters never produce false negatives, whatever the keys.
    #[test]
    fn bloom_has_no_false_negatives(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..24), 1..80),
        rate in 0.001f64..0.3,
    ) {
        let mut bf = BloomFilter::with_rate(keys.len(), rate);
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            prop_assert!(bf.maybe_contains(k));
        }
    }

    /// The receipt's byte accounting matches the data actually returned.
    #[test]
    fn receipt_bytes_match_reads(cells in 1u64..500) {
        let mut table = Table::new(TableOptions::default());
        let pk = PartitionKey::from_id(3);
        for c in 0..cells {
            table.put(pk.clone(), Cell::synthetic(c, 0));
        }
        table.flush();
        let (out, receipt) = table.get(&pk);
        let actual_bytes: u64 = out.iter().map(|c| c.encoded_len() as u64).sum();
        prop_assert_eq!(receipt.bytes_read, actual_bytes);
        prop_assert_eq!(receipt.cells_returned, cells);
        prop_assert!(!receipt.row_cache_hit);
    }
}
