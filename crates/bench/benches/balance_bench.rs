//! Criterion benches for the placement substrate: ring lookups and
//! balls-into-bins Monte Carlo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvs_balance::simulation::{max_load_once, Placement};
use kvs_balance::HashRing;
use kvs_simcore::RngHub;
use std::hint::black_box;

fn bench_ring_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("balance/ring_lookup");
    for (nodes, vnodes) in [(16u32, 128usize), (128, 256)] {
        let ring = HashRing::with_nodes(nodes, vnodes);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{vnodes}v")),
            &ring,
            |b, ring| {
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    black_box(ring.node_for_key(&i.to_le_bytes()))
                })
            },
        );
    }
    group.finish();
}

fn bench_replicas(c: &mut Criterion) {
    let ring = HashRing::with_nodes(32, 128);
    c.bench_function("balance/replicas_rf3", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(ring.replicas_for_key(&i.to_le_bytes(), 3).len())
        })
    });
}

fn bench_balls_into_bins(c: &mut Criterion) {
    let mut group = c.benchmark_group("balance/max_load_trial");
    let hub = RngHub::new(7);
    for placement in [Placement::SingleChoice, Placement::TWO_CHOICE] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{placement:?}")),
            &placement,
            |b, &placement| {
                let mut rng = hub.stream("bench");
                b.iter(|| black_box(max_load_once(10_000, 64, placement, &mut rng)))
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ring_lookup, bench_replicas, bench_balls_into_bins
}
criterion_main!(benches);
