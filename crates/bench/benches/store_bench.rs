//! Criterion benches for the store's read path: point reads and
//! column-index-assisted range reads across row sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvs_store::{Cell, PartitionKey, Table, TableOptions};
use std::hint::black_box;

fn loaded_table(rows: &[(u64, u64)]) -> Table {
    let mut table = Table::new(TableOptions::default());
    for &(pk, cells) in rows {
        for c in 0..cells {
            table.put(PartitionKey::from_id(pk), Cell::synthetic(c, (c % 4) as u8));
        }
    }
    table.flush();
    table
}

fn bench_point_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/point_read");
    for cells in [100u64, 1_000, 1_425, 1_426, 10_000] {
        let mut table = loaded_table(&[(1, cells)]);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| {
                let (out, receipt) = table.get(&PartitionKey::from_id(1));
                black_box((out.len(), receipt.cells_returned))
            })
        });
    }
    group.finish();
}

fn bench_range_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/range_read_100_of_n");
    // Reading 100 cells out of partitions of growing size: the column
    // index should keep this flat above 1425 cells.
    for cells in [1_000u64, 10_000, 50_000] {
        let mut table = loaded_table(&[(1, cells)]);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, &n| {
            let mid = n / 2;
            b.iter(|| {
                let (out, _) = table.get_range(&PartitionKey::from_id(1), mid..=mid + 99);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    c.bench_function("store/put_1k_cells", |b| {
        b.iter(|| {
            let mut table = Table::new(TableOptions::default());
            for i in 0..1_000u64 {
                table.put(PartitionKey::from_id(i % 10), Cell::synthetic(i, 0));
            }
            black_box(table.memtable_cells())
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_point_reads, bench_range_reads, bench_writes
}
criterion_main!(benches);
