//! Criterion benches for the cluster simulator itself: how fast the
//! discrete-event replay runs (simulator overhead, not simulated time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{run_query, ClusterConfig, ClusterData};
use kvs_store::{PartitionKey, TableOptions};
use std::hint::black_box;

fn bench_run_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/run_query");
    group.sample_size(10);
    for (partitions, cells) in [(200u64, 50u64), (1_000, 50)] {
        let parts = uniform_partitions(partitions, cells, 4);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{partitions}p_{cells}c")),
            &(parts, keys),
            |b, (parts, keys)| {
                b.iter_batched(
                    || ClusterData::load(8, 1, TableOptions::default(), parts.clone()),
                    |mut data| {
                        let cfg = ClusterConfig::paper_optimized_master(8);
                        black_box(run_query(&cfg, &mut data, keys).total_cells)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_data_load(c: &mut Criterion) {
    let parts = uniform_partitions(500, 100, 4);
    c.bench_function("sim/load_50k_cells", |b| {
        b.iter(|| {
            let data = ClusterData::load(8, 1, TableOptions::default(), parts.clone());
            black_box(data.partition_count())
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_run_query, bench_data_load
}
criterion_main!(benches);
