//! Criterion benches for the tracing/analysis layer — it must stay cheap
//! enough to leave on in every experiment (Aeneas's design constraint).

use criterion::{criterion_group, criterion_main, Criterion};
use kvs_simcore::SimTime;
use kvs_stages::gantt::{render, GanttOptions};
use kvs_stages::{analyze, RequestTrace, Stage, TraceRecorder};
use std::hint::black_box;

fn synthetic_traces(n: u64) -> Vec<RequestTrace> {
    let mut rec = TraceRecorder::new();
    for id in 0..n {
        let node = (id % 16) as u32;
        let base = id * 500_000; // 0.5 ms apart
        rec.begin(id, node, 100);
        rec.record(
            id,
            Stage::MasterToSlave,
            SimTime::from_nanos(0),
            SimTime::from_nanos(base + 100_000),
        );
        rec.record(
            id,
            Stage::InQueue,
            SimTime::from_nanos(base + 100_000),
            SimTime::from_nanos(base + 2_000_000),
        );
        rec.record(
            id,
            Stage::InDb,
            SimTime::from_nanos(base + 2_000_000),
            SimTime::from_nanos(base + 12_000_000),
        );
        rec.record(
            id,
            Stage::SlaveToMaster,
            SimTime::from_nanos(base + 12_000_000),
            SimTime::from_nanos(base + 12_100_000),
        );
    }
    rec.into_traces()
}

fn bench_record(c: &mut Criterion) {
    c.bench_function("stages/record_10k_requests", |b| {
        b.iter(|| black_box(synthetic_traces(10_000).len()))
    });
}

fn bench_analyze(c: &mut Criterion) {
    let traces = synthetic_traces(10_000);
    c.bench_function("stages/analyze_10k", |b| {
        b.iter(|| black_box(analyze(&traces).makespan))
    });
}

fn bench_gantt(c: &mut Criterion) {
    let traces = synthetic_traces(10_000);
    c.bench_function("stages/gantt_10k", |b| {
        b.iter(|| black_box(render(&traces, GanttOptions::default()).len()))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_record, bench_analyze, bench_gantt
}
criterion_main!(benches);
