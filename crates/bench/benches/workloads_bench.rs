//! Criterion benches for the workload generators: particle synthesis and
//! D8tree indexing (the preprocessing cost a user pays before querying).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvs_simcore::RngHub;
use kvs_workloads::alya::{generate, AlyaConfig};
use kvs_workloads::D8Tree;
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/alya_generate");
    for particles in [10_000usize, 50_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(particles),
            &particles,
            |b, &n| {
                let cfg = AlyaConfig {
                    particles: n,
                    tree_depth: 6,
                    ..Default::default()
                };
                b.iter(|| {
                    let mut rng = RngHub::new(1).stream("bench");
                    black_box(generate(&cfg, &mut rng).len())
                })
            },
        );
    }
    group.finish();
}

fn bench_d8tree_build(c: &mut Criterion) {
    let mut rng = RngHub::new(2).stream("bench");
    let particles = generate(
        &AlyaConfig {
            particles: 20_000,
            tree_depth: 6,
            ..Default::default()
        },
        &mut rng,
    );
    let mut group = c.benchmark_group("workloads/d8tree_build_20k");
    for depth in [4u8, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| black_box(D8Tree::build(&particles, d).cubes_at(d)))
        });
    }
    group.finish();
}

fn bench_query_region(c: &mut Criterion) {
    let mut rng = RngHub::new(3).stream("bench");
    let particles = generate(
        &AlyaConfig {
            particles: 20_000,
            tree_depth: 6,
            ..Default::default()
        },
        &mut rng,
    );
    let tree = D8Tree::build(&particles, 6);
    c.bench_function("workloads/query_region_level6", |b| {
        b.iter(|| black_box(tree.query_region(6, [0.3, 0.3, 0.3], [0.7, 0.7, 0.7]).len()))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generate, bench_d8tree_build, bench_query_region
}
criterion_main!(benches);
