//! Criterion benches for the analytical model: prediction, optimization
//! and regression fitting costs (the model must stay cheap enough to run
//! inside planners).

use criterion::{criterion_group, criterion_main, Criterion};
use kvs_model::regression::{fit_loglinear, fit_piecewise};
use kvs_model::{optimize_partitions, SystemModel};
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let model = SystemModel::paper_optimized();
    c.bench_function("model/predict", |b| {
        let mut keys = 100.0;
        b.iter(|| {
            keys += 1.0;
            black_box(model.predict(keys, 1_000_000.0 / keys, 16).total_ms())
        })
    });
}

fn bench_optimize(c: &mut Criterion) {
    let model = SystemModel::paper_optimized();
    c.bench_function("model/optimize_partitions", |b| {
        b.iter(|| black_box(optimize_partitions(&model, 1_000_000.0, 16).partitions))
    });
}

fn bench_fits(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=400).map(|i| i as f64 * 25.0).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&s| {
            if s > 1_425.0 {
                0.773 + 0.0439 * s
            } else {
                1.163 + 0.0387 * s
            }
        })
        .collect();
    c.bench_function("model/fit_piecewise_400pts", |b| {
        b.iter(|| black_box(fit_piecewise(&xs, &ys).expect("fit").breakpoint))
    });
    let sp: Vec<f64> = xs.iter().map(|&s| 12.562 - 1.084 * s.ln()).collect();
    c.bench_function("model/fit_loglinear_400pts", |b| {
        b.iter(|| black_box(fit_loglinear(&xs, &sp).expect("fit").b))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_predict, bench_optimize, bench_fits
}
criterion_main!(benches);
