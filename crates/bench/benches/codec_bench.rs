//! Criterion benches for message serialization — the Rust analogue of the
//! paper's §V-B measurement (the absolute numbers differ from a 2010 JVM;
//! the Verbose/Compact *ratio* is the interesting output).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvs_cluster::messages::{QueryRequest, QueryResponse};
use kvs_cluster::Codec;
use kvs_store::PartitionKey;
use std::hint::black_box;

fn bench_encode_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/encode_request");
    let req = QueryRequest {
        request_id: 123_456,
        partition: PartitionKey::from_id(42),
    };
    for codec in [Codec::verbose(), Codec::compact()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:?}", codec.kind)),
            &codec,
            |b, codec| b.iter(|| black_box(codec.encode_request(black_box(&req)).len())),
        );
    }
    group.finish();
}

fn bench_roundtrip_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/roundtrip_response");
    let resp = QueryResponse::from_kinds(7, (0..1_000u32).map(|i| (i % 4) as u8));
    for codec in [Codec::verbose(), Codec::compact()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:?}", codec.kind)),
            &codec,
            |b, codec| {
                b.iter(|| {
                    let bytes = codec.encode_response(&resp);
                    black_box(codec.decode_response(bytes).expect("roundtrip").cells)
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_encode_request, bench_roundtrip_response
}
criterion_main!(benches);
