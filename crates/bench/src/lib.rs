//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every figure of the paper has a `--bin figNN` binary in `src/bin/` that
//! prints the same rows/series the paper plots and writes a CSV to
//! `target/figures/`. Scale can be reduced for smoke tests with the
//! `KVSCALE_ELEMENTS` environment variable (default: the paper's one
//! million elements).

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

pub mod json;

/// The paper's dataset size.
pub const PAPER_ELEMENTS: u64 = 1_000_000;

/// Dataset size for the current run: `KVSCALE_ELEMENTS` env var or the
/// paper's one million.
pub fn elements_from_env() -> u64 {
    std::env::var("KVSCALE_ELEMENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PAPER_ELEMENTS)
}

/// The node counts of the paper's scaling experiments.
pub const PAPER_NODE_COUNTS: [u32; 5] = [1, 2, 4, 8, 16];

/// Where figure CSVs land.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env_target_dir()).join("figures");
    fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

fn env_target_dir() -> String {
    std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string())
}

/// A tiny CSV writer: header row + data rows, all stringly.
pub struct Csv {
    path: PathBuf,
    out: String,
    columns: usize,
}

impl Csv {
    /// Opens `target/figures/<name>.csv` with the given header.
    pub fn new(name: &str, header: &[&str]) -> Csv {
        let mut out = String::new();
        out.push_str(&header.join(","));
        out.push('\n');
        Csv {
            path: figures_dir().join(format!("{name}.csv")),
            out,
            columns: header.len(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// If the row width differs from the header width.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.columns, "ragged CSV row");
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.out.push_str(&rendered.join(","));
        self.out.push('\n');
    }

    /// Writes the file and reports the path on stdout.
    pub fn finish(self) {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir).expect("create figure directory");
        }
        let mut f = fs::File::create(&self.path).expect("create figure CSV");
        f.write_all(self.out.as_bytes()).expect("write figure CSV");
        println!("\n[csv] {}", self.path.display());
    }
}

/// Prints a figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!("================================================================");
    println!("{figure} — {caption}");
    println!("================================================================");
}

/// Formats milliseconds human-readably.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1_000.0 {
        format!("{:.2}s", ms / 1_000.0)
    } else if ms >= 1.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.0}µs", ms * 1_000.0)
    }
}

/// Formats a fraction as a signed percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:+.0}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parses() {
        // Not setting the variable here (process-global); just check the
        // default path.
        assert_eq!(PAPER_ELEMENTS, 1_000_000);
    }

    #[test]
    fn csv_accumulates_rows() {
        let mut csv = Csv::new("selftest", &["a", "b"]);
        csv.row(&[&1, &"x"]);
        csv.row(&[&2.5, &"y"]);
        assert!(csv.out.lines().count() == 3);
        csv.finish();
        let path = figures_dir().join("selftest.csv");
        let content = fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a,b\n1,x\n2.5,y\n"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut csv = Csv::new("selftest2", &["a", "b"]);
        csv.row(&[&1]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(1_500.0), "1.50s");
        assert_eq!(fmt_ms(12.34), "12.3ms");
        assert_eq!(fmt_ms(0.5), "500µs");
        assert_eq!(fmt_pct(0.62), "+62%");
        assert_eq!(fmt_pct(-0.1), "-10%");
    }
}
